//! Hand-rolled binary codec primitives: a growing [`Writer`], a
//! bounds-checked [`Reader`], and a table-driven [`crc32`].
//!
//! The encoding is deliberately boring — fixed-width little-endian
//! integers, `u64` length prefixes, `f64` via [`f64::to_bits`] — so it
//! is deterministic, bit-exact for floating point, and auditable with a
//! hex dump. Compactness comes from the structures themselves (interned
//! ids, dense vectors), not from varint cleverness.

use crate::{Result, StoreError};

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) lookup table,
/// computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` — the checksum guarding every snapshot
/// section and WAL frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (`0` / `1`).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` bit-exactly (via [`f64::to_bits`]), so scores
    /// and norms survive the round trip byte-for-byte.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked decode cursor over a byte slice. Every read returns
/// [`StoreError::Truncated`] instead of panicking when the buffer ends
/// early — corrupt input must surface as a typed error.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer was consumed — decoders check this at
    /// the end so trailing garbage is detected rather than ignored.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a bool; any byte other than `0` / `1` is corruption.
    pub fn bool(&mut self, context: &'static str) -> Result<bool> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Corrupt {
                context: format!("invalid bool byte {other} in {context}"),
            }),
        }
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, context: &'static str) -> Result<i64> {
        Ok(self.u64(context)? as i64)
    }

    /// Read a `u64` and convert to `usize`, rejecting values that do
    /// not fit (or that exceed the remaining buffer when used as a
    /// length — callers prefix length reads with [`Reader::len`]).
    pub fn usize(&mut self, context: &'static str) -> Result<usize> {
        usize::try_from(self.u64(context)?).map_err(|_| StoreError::Corrupt {
            context: format!("length does not fit in usize in {context}"),
        })
    }

    /// Read a length prefix that is about to gate `per_item`-byte reads,
    /// rejecting lengths the remaining buffer cannot possibly satisfy —
    /// a flipped byte in a length field must not trigger a huge
    /// allocation before the truncation is noticed.
    pub fn len(&mut self, per_item: usize, context: &'static str) -> Result<usize> {
        let n = self.usize(context)?;
        if n.saturating_mul(per_item.max(1)) > self.remaining() {
            return Err(StoreError::Truncated { context });
        }
        Ok(n)
    }

    /// Read an `f64` stored bit-exactly.
    pub fn f64(&mut self, context: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8]> {
        let n = self.len(1, context)?;
        self.take(n, context)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str> {
        std::str::from_utf8(self.bytes(context)?).map_err(|_| StoreError::Corrupt {
            context: format!("invalid utf-8 in {context}"),
        })
    }

    /// Require that the buffer was fully consumed.
    pub fn finish(self, context: &'static str) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(StoreError::Corrupt {
                context: format!("{} trailing bytes after {context}", self.remaining()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.1);
        w.str("hello κόσμος");
        w.bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert!(r.bool("t").unwrap());
        assert!(!r.bool("t").unwrap());
        assert_eq!(r.u16("t").unwrap(), 0xBEEF);
        assert_eq!(r.u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("t").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("t").unwrap(), -42);
        assert_eq!(r.f64("t").unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(r.str("t").unwrap(), "hello κόσμος");
        assert_eq!(r.bytes("t").unwrap(), &[1, 2, 3]);
        r.finish("t").unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let buf = [1u8, 2];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.u32("four bytes"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn bogus_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd length prefix
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(r.bytes("giant").is_err());
    }

    #[test]
    fn invalid_bool_is_corruption() {
        let buf = [3u8];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bool("flag"), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        r.u8("t").unwrap();
        assert!(r.finish("t").is_err());
    }
}
