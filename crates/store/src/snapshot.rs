//! The versioned snapshot container: `em-store-v1` magic, a format
//! version, and a catalog of named, CRC-guarded sections.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [magic  "em-store-v1\0"  12 bytes]
//! [format version          u32]
//! [section count           u32]
//! per section:
//!   [name   length-prefixed UTF-8]
//!   [crc32  u32   (over the payload)]
//!   [payload length-prefixed bytes]
//! ```
//!
//! Sections are opaque byte strings to the container; the domain
//! encoders in [`crate::codecs`] define their contents. Writing goes
//! through a temp file plus atomic rename so a crash mid-checkpoint
//! leaves the previous snapshot intact; every section's CRC is verified
//! on open so a flipped byte surfaces as [`StoreError::Corrupt`], and a
//! bumped format version as [`StoreError::VersionMismatch`] — never as
//! a silently half-restored session.

use crate::codec::{crc32, Reader, Writer};
use crate::{Result, StoreError};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

/// File magic: identifies an em-store snapshot (and doubles as the
/// format family name).
pub const MAGIC: &[u8; 12] = b"em-store-v1\0";

/// Format version this build writes and reads. Bump on any layout
/// change; readers reject other versions outright.
pub const FORMAT_VERSION: u32 = 1;

/// Builder for a snapshot file: accumulate named sections, then write
/// atomically.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named section. Names must be unique; the reader indexes by
    /// name.
    ///
    /// # Panics
    /// Panics on a duplicate section name — that is a programming error
    /// in the encoder, not a recoverable condition.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section {name:?}"
        );
        self.sections.push((name.to_owned(), payload));
    }

    /// Serialize the container to bytes (magic + version + catalog).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes_raw(MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            w.str(name);
            w.u32(crc32(payload));
            w.bytes(payload);
        }
        w.into_bytes()
    }

    /// Write the snapshot to `path` via temp file + atomic rename +
    /// fsync, returning the number of bytes written. A crash at any
    /// point leaves either the old snapshot or the new one, never a
    /// torn mix.
    pub fn write_to(&self, path: &Path) -> Result<u64> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Persist the rename itself (directory entry durability).
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(bytes.len() as u64)
    }
}

impl Writer {
    /// Append raw bytes with no length prefix (container internals:
    /// the fixed-width magic).
    fn bytes_raw(&mut self, v: &[u8]) {
        for &b in v {
            self.u8(b);
        }
    }
}

/// A parsed snapshot: section payloads indexed by name, each CRC
/// verified at open.
#[derive(Debug)]
pub struct SnapshotReader {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotReader {
    /// Parse a snapshot from bytes, verifying magic, version, and every
    /// section CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut r = Reader::new(&bytes[MAGIC.len()..]);
        let found = r.u32("snapshot version")?;
        if found != FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                found,
                expected: FORMAT_VERSION,
            });
        }
        let count = r.u32("snapshot section count")?;
        let mut sections = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = r.str("snapshot section name")?.to_owned();
            let crc = r.u32("snapshot section crc")?;
            let payload = r.bytes("snapshot section payload")?;
            if crc32(payload) != crc {
                return Err(StoreError::Corrupt {
                    context: format!("checksum mismatch in snapshot section {name:?}"),
                });
            }
            sections.push((name, payload.to_vec()));
        }
        r.finish("snapshot catalog")?;
        Ok(Self { sections })
    }

    /// Read and parse a snapshot file.
    pub fn open(path: &Path) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Payload of a named section, or [`StoreError::MissingSection`].
    pub fn section(&self, name: &'static str) -> Result<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .ok_or(StoreError::MissingSection { name })
    }

    /// Whether a named section exists (for optional sections).
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    /// Section names in file order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_sections() {
        let mut w = SnapshotWriter::new();
        w.section("alpha", vec![1, 2, 3]);
        w.section("beta", Vec::new());
        let r = SnapshotReader::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(r.section("alpha").unwrap(), &[1, 2, 3]);
        assert_eq!(r.section("beta").unwrap(), &[] as &[u8]);
        assert!(r.has_section("alpha"));
        assert!(!r.has_section("gamma"));
        assert!(matches!(
            r.section("gamma"),
            Err(StoreError::MissingSection { name: "gamma" })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn duplicate_section_names_panic() {
        let mut w = SnapshotWriter::new();
        w.section("alpha", vec![]);
        w.section("alpha", vec![]);
    }

    #[test]
    fn flipped_payload_byte_fails_the_section_crc() {
        let mut w = SnapshotWriter::new();
        w.section("alpha", vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let mut bytes = w.to_bytes();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn version_bump_is_rejected() {
        let w = SnapshotWriter::new();
        let mut bytes = w.to_bytes();
        bytes[MAGIC.len()] = FORMAT_VERSION as u8 + 1; // little-endian low byte
        assert!(matches!(
            SnapshotReader::from_bytes(&bytes),
            Err(StoreError::VersionMismatch { found, expected })
                if found == FORMAT_VERSION + 1 && expected == FORMAT_VERSION
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            SnapshotReader::from_bytes(b"not a snapshot at all"),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn writes_atomically_to_disk() {
        let dir = std::env::temp_dir().join(format!("em-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.ems");
        let mut w = SnapshotWriter::new();
        w.section("alpha", vec![9, 9, 9]);
        let bytes = w.write_to(&path).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let r = SnapshotReader::open(&path).unwrap();
        assert_eq!(r.section("alpha").unwrap(), &[9, 9, 9]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
