//! Fixed-width ASCII tables for experiment reports.

use std::fmt::Write as _;

/// A simple left-aligned-first-column, right-aligned-rest table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}", width = widths[i]);
                } else {
                    let _ = write!(out, "{cell:>width$}", width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Format a ratio as `0.xxx`.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2}s")
    } else {
        format!("{:.1}min", secs / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["scheme", "P", "R"]);
        t.push_row(["NO-MP", "0.99", "0.60"]);
        t.push_row(["MMP", "0.985", "0.91"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scheme"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right alignment of numeric columns.
        assert!(lines[2].ends_with("0.60"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_must_match() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(0.98765), "0.988");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
        assert_eq!(fmt_duration(Duration::from_secs(600)), "10.0min");
    }
}
