//! Soundness and completeness of a scheme's output relative to a
//! reference run (§2.2.1 of the paper).
//!
//! These are properties of the *framework*, not the matcher: soundness
//! is the fraction of produced matches also produced by the reference
//! (the full run, or UB when the full run is infeasible); completeness
//! is the fraction of the reference's matches recovered.

use em_core::PairSet;

/// Soundness/completeness report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoundnessReport {
    /// `|M ∩ ref| / |M|` (1.0 for empty `M`).
    pub soundness: f64,
    /// `|M ∩ ref| / |ref|` (1.0 for empty `ref`).
    pub completeness: f64,
    /// `|M ∩ ref|`.
    pub agreement: usize,
}

/// Compare a scheme's output against a reference match set.
pub fn soundness_completeness(output: &PairSet, reference: &PairSet) -> SoundnessReport {
    let agreement = output.intersection_len(reference);
    SoundnessReport {
        soundness: if output.is_empty() {
            1.0
        } else {
            agreement as f64 / output.len() as f64
        },
        completeness: if reference.is_empty() {
            1.0
        } else {
            agreement as f64 / reference.len() as f64
        },
        agreement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{EntityId, Pair};

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    #[test]
    fn perfect_agreement() {
        let s: PairSet = [p(0, 1), p(2, 3)].into_iter().collect();
        let r = soundness_completeness(&s, &s);
        assert_eq!(r.soundness, 1.0);
        assert_eq!(r.completeness, 1.0);
        assert_eq!(r.agreement, 2);
    }

    #[test]
    fn subset_is_sound_but_incomplete() {
        let reference: PairSet = [p(0, 1), p(2, 3), p(4, 5), p(6, 7)].into_iter().collect();
        let output: PairSet = [p(0, 1)].into_iter().collect();
        let r = soundness_completeness(&output, &reference);
        assert_eq!(r.soundness, 1.0);
        assert_eq!(r.completeness, 0.25);
    }

    #[test]
    fn unsound_extra_matches() {
        let reference: PairSet = [p(0, 1)].into_iter().collect();
        let output: PairSet = [p(0, 1), p(8, 9)].into_iter().collect();
        let r = soundness_completeness(&output, &reference);
        assert_eq!(r.soundness, 0.5);
        assert_eq!(r.completeness, 1.0);
    }

    #[test]
    fn empty_sets() {
        let empty = PairSet::new();
        let some: PairSet = [p(0, 1)].into_iter().collect();
        let r = soundness_completeness(&empty, &some);
        assert_eq!(r.soundness, 1.0);
        assert_eq!(r.completeness, 0.0);
        let r = soundness_completeness(&some, &empty);
        assert_eq!(r.soundness, 0.0);
        assert_eq!(r.completeness, 1.0);
    }
}
