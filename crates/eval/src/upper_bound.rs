//! The paper's **UB** scheme (§6.1): a ground-truth-conditioned upper
//! bound on the matches a supermodular matcher can produce.
//!
//! Running the matcher on the whole dataset is infeasible at scale, so
//! the paper bounds it: "for each entity pair, we give the MLN algorithm
//! the ground truth about all other entity pairs and run the matcher to
//! decide the given entity pair. Since our matcher satisfies the
//! supermodularity property, we can show that this is indeed an upper
//! bound on the set of matches that MLN can produce."
//!
//! With the global score oracle, deciding pair `p` given truth about all
//! others reduces to one delta query: match `p` iff
//! `score(GT_others ∪ {p}) ≥ score(GT_others)` (ties match, per the
//! largest-most-likely-set convention). Supermodularity makes this an
//! upper bound: the real run's evidence is never more favourable than
//! the full truth.

use em_core::{Dataset, GlobalScorer, Pair, PairSet, Score};

/// Compute the UB match set over all candidate pairs of `dataset`.
pub fn upper_bound(
    dataset: &Dataset,
    scorer: &dyn GlobalScorer,
    is_true_match: impl Fn(Pair) -> bool,
) -> PairSet {
    // Base: the true candidate pairs (the "ground truth about all other
    // entity pairs"). For each decision we momentarily remove the pair
    // itself from the base.
    let mut base: PairSet = dataset
        .candidate_pairs()
        .filter(|&(p, _)| is_true_match(p))
        .map(|(p, _)| p)
        .collect();

    let candidates: Vec<Pair> = dataset.candidate_pairs().map(|(p, _)| p).collect();
    let mut out = PairSet::with_capacity(base.len());
    for p in candidates {
        let was_in_base = base.remove(p);
        if scorer.delta(&base, &[p]) >= Score::ZERO {
            out.insert(p);
        }
        if was_in_base {
            base.insert(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::hash::FxHashMap;

    /// A toy scorer: explicit unary weights plus one synergy edge.
    struct ToyScorer {
        unary: FxHashMap<Pair, Score>,
        edge: (Pair, Pair, Score),
    }

    impl GlobalScorer for ToyScorer {
        fn delta(&self, base: &PairSet, added: &[Pair]) -> Score {
            let mut total = Score::ZERO;
            for &p in added {
                if !base.contains(p) {
                    total += self.unary.get(&p).copied().unwrap_or(Score::ZERO);
                }
            }
            let (a, b, w) = &self.edge;
            let holds = |p: Pair| base.contains(p) || added.contains(&p);
            let held_before = base.contains(*a) && base.contains(*b);
            if !held_before && holds(*a) && holds(*b) {
                total += *w;
            }
            total
        }

        fn score(&self, matches: &PairSet) -> Score {
            let mut total = Score::ZERO;
            for (p, w) in &self.unary {
                if matches.contains(*p) {
                    total += *w;
                }
            }
            let (a, b, w) = &self.edge;
            if matches.contains(*a) && matches.contains(*b) {
                total += *w;
            }
            total
        }

        fn affected_pairs(&self, pair: Pair) -> Vec<Pair> {
            let (a, b, _) = &self.edge;
            if pair == *a {
                vec![*b]
            } else if pair == *b {
                vec![*a]
            } else {
                Vec::new()
            }
        }
    }

    use em_core::{EntityId, SimLevel};

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    fn setup() -> (Dataset, ToyScorer) {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..6 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(p(0, 1), SimLevel(2));
        ds.set_similar(p(2, 3), SimLevel(2));
        ds.set_similar(p(4, 5), SimLevel(1));
        let mut unary = FxHashMap::default();
        unary.insert(p(0, 1), Score(-5));
        unary.insert(p(2, 3), Score(-5));
        unary.insert(p(4, 5), Score(-20));
        let scorer = ToyScorer {
            unary,
            edge: (p(0, 1), p(2, 3), Score(8)),
        };
        (ds, scorer)
    }

    #[test]
    fn ub_uses_truth_about_other_pairs() {
        let (ds, scorer) = setup();
        // Truth: (0,1) and (2,3) are matches, (4,5) is not.
        let truth = |q: Pair| q == p(0, 1) || q == p(2, 3);
        let ub = upper_bound(&ds, &scorer, truth);
        // Deciding (0,1) given (2,3) true: −5 + 8 ≥ 0 ⇒ match; symmetric
        // for (2,3). (4,5): −20 < 0 ⇒ no.
        assert!(ub.contains(p(0, 1)));
        assert!(ub.contains(p(2, 3)));
        assert!(!ub.contains(p(4, 5)));
    }

    #[test]
    fn ub_without_truth_support_drops_pairs() {
        let (ds, scorer) = setup();
        // Truth says nothing matches: each pair decided alone.
        let ub = upper_bound(&ds, &scorer, |_| false);
        // (0,1) alone: −5 < 0 ⇒ no match.
        assert!(ub.is_empty());
    }

    #[test]
    fn ub_decision_excludes_the_pair_itself_from_its_base() {
        let (ds, scorer) = setup();
        // Truth includes (4,5): deciding (4,5) must not count it as its
        // own evidence (its delta alone is −20 ⇒ excluded).
        let truth = |q: Pair| q == p(4, 5);
        let ub = upper_bound(&ds, &scorer, truth);
        assert!(!ub.contains(p(4, 5)));
    }
}
