//! # em-eval — evaluation metrics for the framework's experiments
//!
//! Implements the measurements of §6:
//!
//! * [`metrics`] — pairwise precision/recall/F1 (with transitive closure
//!   of predictions before scoring);
//! * [`soundness`] — the framework-level soundness and completeness of a
//!   scheme's output relative to a reference run (§2.2.1);
//! * [`upper_bound()`] — the paper's **UB** scheme: the ground-truth-
//!   conditioned upper bound on a supermodular matcher's full-run output,
//!   used when the full run is infeasible;
//! * [`report`] — fixed-width tables for the bench binaries' output.

#![warn(missing_docs)]

pub mod metrics;
pub mod report;
pub mod soundness;
pub mod upper_bound;

pub use metrics::{pairwise_metrics, transitive_closure, PrecisionRecall};
pub use report::{fmt_duration, fmt_ratio, Table};
pub use soundness::{soundness_completeness, SoundnessReport};
pub use upper_bound::upper_bound;
