//! Pairwise precision / recall / F1 against ground truth.
//!
//! The paper reports pairwise metrics over matching decisions. Because
//! matchers output pair sets that are not necessarily transitively
//! closed, the standard evaluation closes them first (two references
//! matched through a chain count as matched) and compares against the
//! full set of true co-referent pairs.

use em_core::hash::FxHashMap;
use em_core::{EntityId, Pair, PairSet};

/// Counts and derived rates for a prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl PrecisionRecall {
    /// `tp / (tp + fp)`; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 when there is nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Transitive closure of a pair set: all pairs within each connected
/// cluster (a compact union-find; clusters of size `n` emit `C(n, 2)`
/// pairs).
pub fn transitive_closure(pairs: &PairSet) -> PairSet {
    let mut parent: FxHashMap<EntityId, EntityId> = FxHashMap::default();
    fn find(parent: &mut FxHashMap<EntityId, EntityId>, x: EntityId) -> EntityId {
        let mut root = x;
        while let Some(&p) = parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        let mut cur = x;
        while let Some(&p) = parent.get(&cur) {
            if p == root {
                break;
            }
            parent.insert(cur, root);
            cur = p;
        }
        root
    }
    for p in pairs.iter() {
        for e in p.endpoints() {
            parent.entry(e).or_insert(e);
        }
        let (ra, rb) = (find(&mut parent, p.lo()), find(&mut parent, p.hi()));
        if ra != rb {
            parent.insert(ra, rb);
        }
    }
    let members: Vec<EntityId> = parent.keys().copied().collect();
    let mut clusters: FxHashMap<EntityId, Vec<EntityId>> = FxHashMap::default();
    for m in members {
        let root = find(&mut parent, m);
        clusters.entry(root).or_default().push(m);
    }
    let mut out = PairSet::new();
    for cluster in clusters.values() {
        for (i, &a) in cluster.iter().enumerate() {
            for &b in &cluster[i + 1..] {
                out.insert(Pair::new(a, b));
            }
        }
    }
    out
}

/// Pairwise metrics of `predicted` (closed transitively first) against a
/// truth oracle. `true_pair_count` is the total number of true pairs
/// (`Σ_cluster C(n, 2)` from the ground truth).
pub fn pairwise_metrics(
    predicted: &PairSet,
    is_true_match: impl Fn(Pair) -> bool,
    true_pair_count: usize,
) -> PrecisionRecall {
    let closed = transitive_closure(predicted);
    let tp = closed.iter().filter(|&p| is_true_match(p)).count();
    let fp = closed.len() - tp;
    let fn_ = true_pair_count.saturating_sub(tp);
    PrecisionRecall { tp, fp, fn_ }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    #[test]
    fn rates_and_edge_cases() {
        let pr = PrecisionRecall {
            tp: 3,
            fp: 1,
            fn_: 2,
        };
        assert!((pr.precision() - 0.75).abs() < 1e-12);
        assert!((pr.recall() - 0.6).abs() < 1e-12);
        assert!((pr.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
        let empty = PrecisionRecall {
            tp: 0,
            fp: 0,
            fn_: 0,
        };
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        let zero = PrecisionRecall {
            tp: 0,
            fp: 5,
            fn_: 5,
        };
        assert_eq!(zero.f1(), 0.0);
    }

    #[test]
    fn closure_completes_chains() {
        let pairs: PairSet = [p(0, 1), p(1, 2), p(3, 4)].into_iter().collect();
        let closed = transitive_closure(&pairs);
        assert!(closed.contains(p(0, 2)), "chain closed");
        assert!(!closed.contains(p(0, 3)), "separate clusters stay apart");
        assert_eq!(closed.len(), 4); // C(3,2) + C(2,2)
    }

    #[test]
    fn closure_of_closed_set_is_identity() {
        let pairs: PairSet = [p(0, 1), p(1, 2), p(0, 2)].into_iter().collect();
        assert_eq!(transitive_closure(&pairs), pairs);
        assert!(transitive_closure(&PairSet::new()).is_empty());
    }

    #[test]
    fn metrics_close_before_scoring() {
        // Truth: {0,1,2} one entity. Prediction: chain (0,1), (1,2).
        let truth = |q: Pair| q.hi().0 <= 2;
        let predicted: PairSet = [p(0, 1), p(1, 2)].into_iter().collect();
        let m = pairwise_metrics(&predicted, truth, 3);
        assert_eq!(m.tp, 3, "closure credits the implied (0,2)");
        assert_eq!(m.fp, 0);
        assert_eq!(m.fn_, 0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn metrics_penalize_wrong_merges() {
        // Truth: {0,1} and {2,3}. Prediction merges everything.
        let truth = |q: Pair| matches!((q.lo().0, q.hi().0), (0, 1) | (2, 3));
        let predicted: PairSet = [p(0, 1), p(1, 2), p(2, 3)].into_iter().collect();
        let m = pairwise_metrics(&predicted, truth, 2);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 4, "C(4,2) − 2 wrong pairs after closure");
        assert_eq!(m.recall(), 1.0);
        assert!(m.precision() < 0.5);
    }
}
