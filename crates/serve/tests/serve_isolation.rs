//! Multi-session isolation under the daemon: hosting must change
//! nothing.
//!
//! Three (or more) sessions with independent datasets and churn
//! scripts are interleaved through one [`em_serve::Daemon`] — shared
//! change stream, per-session worker threads, fences, coalescing,
//! backpressure, and (in the durable variants) an explicit evict +
//! `em-store` recover cycle mid-stream, an LRU resident cap below the
//! session count, a per-session staleness-budget override, and a
//! mid-stream daemon kill + rebuild-from-store. Afterwards every
//! hosted session must be byte-identical (state digest and match set)
//! to a standalone session replaying the daemon's cumulative op log —
//! sequentially and sharded 4 ways, for the exact matcher and for
//! certificate-gated walksat.

use em::{Backend, ChurnOptions, DatasetDelta, MatcherChoice, Pipeline, Scheme, SplitPolicy};
use em_blocking::{BlockingConfig, SimilarityKernel};
use em_core::Dataset;
use em_datagen::{generate, DatasetProfile};
use em_serve::{run_load, LoadConfig, LoadOutcome, ServeConfig, SessionTraffic};
use proptest::prelude::*;
use std::path::PathBuf;

fn make_pipeline(walksat: bool, backend: Backend) -> impl Fn(Dataset) -> Pipeline + Clone {
    move |dataset| {
        Pipeline::new(dataset)
            .blocking(BlockingConfig {
                kernel: SimilarityKernel::AuthorName,
                ..Default::default()
            })
            .matcher(if walksat {
                MatcherChoice::MlnWalksat
            } else {
                MatcherChoice::MlnExact
            })
            .scheme(Scheme::Mmp)
            .backend(backend)
            .check_invariants(true)
    }
}

/// Three sessions with disjoint worlds and deliberately different
/// traffic shapes: pure growth, plain retraction churn, pathological
/// churn.
fn traffic(seed: u64) -> Vec<SessionTraffic> {
    let shapes = [
        ("grow", ChurnOptions::default()),
        (
            "churn",
            ChurnOptions {
                retract_fraction: 0.1,
                ..Default::default()
            },
        ),
        (
            "storm",
            ChurnOptions {
                retract_fraction: 0.1,
                readd_fraction: 0.5,
                tuple_churn: 0.1,
                link_churn: 0.1,
                oversize_growth: 1,
            },
        ),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, (name, opts))| {
            let profile = if (seed + i as u64).is_multiple_of(2) {
                DatasetProfile::hepth()
            } else {
                DatasetProfile::dblp()
            };
            let template = generate(&profile.scaled(0.004).with_seed(seed + i as u64)).dataset;
            let n = template.entities.len() as u32;
            let (initial, deltas) =
                DatasetDelta::churn_script_with(&template, n * 3 / 5, 4, seed + i as u64, opts);
            SessionTraffic {
                name: (*name).to_owned(),
                initial,
                deltas,
            }
        })
        .collect()
}

fn store_root(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "em-serve-isolation-{}-{tag}-{seed}",
        std::process::id()
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale store root");
    }
    dir
}

fn assert_identical(outcome: &LoadOutcome, context: &str) {
    for s in &outcome.sessions {
        assert!(
            s.identical,
            "{context}: session {:?} diverged from standalone replay",
            s.name
        );
        assert!(
            s.batches > 0,
            "{context}: session {:?} never serviced",
            s.name
        );
    }
    assert!(outcome.sessions_identical);
    assert!(
        outcome.crash_recovery_identical,
        "{context}: a killed daemon recovered to a different state"
    );
    assert_eq!(outcome.dead_letters, 0, "{context}: frames went missing");
}

/// The daemon-equals-standalone arm for one seed: sequential and
/// sharded-4, each durable with an explicit evict/recover cycle
/// mid-stream, an LRU cap of 2 residents over 3 sessions, a
/// per-session staleness-budget override, and a mid-stream daemon
/// kill + rebuild-from-store.
fn check_daemon_isolation(seed: u64, walksat: bool) {
    let tag = if walksat { "walksat" } else { "exact" };
    for shards in [1usize, 4] {
        let backend = if shards == 1 {
            Backend::Sequential
        } else {
            Backend::Sharded {
                shards,
                split_policy: SplitPolicy::Split,
            }
        };
        let root = store_root(&format!("{tag}-{shards}"), seed);
        let config = LoadConfig {
            serve: ServeConfig {
                store_root: Some(root.clone()),
                max_resident: 2,
                session_budgets_ms: [("storm".to_owned(), 250.0)].into_iter().collect(),
                ..Default::default()
            },
            fence_every: 3,
            rounds_per_burst: 2,
            evict_mid_stream: true,
            kill_every: 2,
        };
        let outcome = run_load(traffic(seed), &config, make_pipeline(walksat, backend))
            .expect("load run completes");
        let context = format!("seed {seed} {tag} shards {shards}");
        assert_identical(&outcome, &context);
        assert!(
            outcome.crash_recoveries >= 1,
            "{context}: kill_every 2 must kill at least once"
        );
        assert!(
            outcome.lru_evictions >= 1,
            "{context}: a cap of 2 residents over 3 sessions must evict"
        );
        assert!(
            outcome.sessions.iter().any(|s| s.revivals > 0),
            "{context}: an LRU-evicted session must revive for its traffic"
        );
        std::fs::remove_dir_all(&root).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn hosted_sessions_equal_standalone_replay(seed in 0u64..10_000) {
        check_daemon_isolation(seed, false);
    }
}

/// Walksat sessions go through the same daemon plumbing (including
/// evict/recover of banked certificates) without diverging from their
/// own replay. Fixed seed: one deterministic world is enough for the
/// plumbing claim, and walksat runs are the expensive variant.
#[test]
fn walksat_sessions_equal_standalone_replay() {
    check_daemon_isolation(17, true);
}

/// Overload sheds to cold instead of stalling: with a tiny queue cap
/// the whole stream still drains, shed events are counted, and the
/// shed sessions still replay identically.
#[test]
fn backpressure_sheds_to_cold_and_stays_identical() {
    let config = LoadConfig {
        serve: ServeConfig {
            max_pending: 1,
            max_batch_frames: 1,
            ..Default::default()
        },
        fence_every: 0,
        rounds_per_burst: 4,
        evict_mid_stream: false,
        kill_every: 0,
    };
    let outcome = run_load(
        traffic(23),
        &config,
        make_pipeline(false, Backend::Sequential),
    )
    .expect("overloaded load run still completes");
    assert_identical(&outcome, "shed");
    let sheds: u64 = outcome.sessions.iter().map(|s| s.shed_events).sum();
    assert!(sheds > 0, "queue cap 1 with 4-round bursts must shed");
    let applied: u64 = outcome.sessions.iter().map(|s| s.frames_applied).sum();
    let expected: u64 = traffic(23).iter().map(|t| t.deltas.len() as u64).sum();
    assert_eq!(applied, expected, "shedding must never drop frames");
}

/// Micro-batching actually merges frames on growth-shaped traffic, and
/// the coalesced sessions still replay identically.
#[test]
fn coalescing_merges_growth_traffic() {
    let config = LoadConfig {
        serve: ServeConfig::default(),
        fence_every: 0,
        rounds_per_burst: 4,
        evict_mid_stream: false,
        kill_every: 0,
    };
    let outcome = run_load(
        traffic(31),
        &config,
        make_pipeline(false, Backend::Sequential),
    )
    .expect("load run completes");
    assert_identical(&outcome, "coalesce");
    let grow = outcome
        .sessions
        .iter()
        .find(|s| s.name == "grow")
        .expect("grow session present");
    assert!(
        grow.coalesced_frames > 0,
        "growth traffic with 4-frame bursts must coalesce"
    );
}
