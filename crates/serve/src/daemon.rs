//! The serving daemon: N named sessions, one change stream, one apply
//! loop.
//!
//! A [`Daemon`] owns a set of [admitted](Daemon::admit) sessions — each
//! an [`em::MatchSession`] built from a caller-supplied [`em::Pipeline`]
//! factory, optionally durable under `store_root/<name>` — and a
//! [`ChangeSource`] of session-addressed [`StreamFrame`]s. The loop is
//! two alternating verbs:
//!
//! * [`Daemon::pump`] drains the source into per-session FIFO queues
//!   (a [`StreamFrame::Fence`] enqueues a batch boundary on *every*
//!   queue; frames for unknown sessions count as dead letters, never
//!   silently vanish);
//! * [`Daemon::step`] asks the [freshness scheduler](crate::sched)
//!   which backlog to service, [coalesces](crate::batch) that queue's
//!   frames up to the next fence (or the configured batch cap) into as
//!   few deltas as merge-compatibility allows, applies them through
//!   [`em::MatchSession::update`], and re-runs the fixpoint once.
//!
//! Between steps, [`Daemon::matches`] and [`Daemon::status`] serve the
//! last fixpoint — queries never block on ingestion and never observe a
//! half-applied batch.
//!
//! **Backpressure.** A queue deeper than [`ServeConfig::max_pending`]
//! means churn is outrunning incremental apply. The daemon then *sheds
//! to cold* rather than stalling the fleet: the entire backlog is
//! collapsed into maximally coalesced deltas (fences ignored — the
//! overload forfeits batch-boundary granularity), applied without
//! intermediate fixpoints, and followed by one
//! [`em::MatchSession::reset_warm`] + cold run. No frame is ever
//! dropped; the event is counted in [`SessionStats::shed_events`] and
//! the cold run in the degrade counters, so overload is always visible
//! in metrics.
//!
//! **Replay identity.** Every state-mutating operation the daemon
//! performs on a session is recorded in an [`Op`] log.
//! [`Daemon::replay_standalone`] rebuilds the same pipeline without a
//! store and replays that log, which must land on the same
//! [`em::MatchSession::state_digest`] — the CI gate that daemon
//! plumbing (queueing, coalescing, shedding, evict/recover) never
//! changes what a session computes.

use crate::batch::coalesce;
use crate::sched::{pick_next, update_cost_ema, SessionView};
use crate::source::ChangeSource;
use crate::wire::StreamFrame;
use em::{DatasetDelta, MatchSession, Pipeline, PipelineError, SessionStatus};
use em_core::PairSet;
use em_store::StoreError;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::time::Instant;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most delta frames one [`Daemon::step`] batch may span (fences
    /// cut batches shorter).
    pub max_batch_frames: usize,
    /// Queue depth (delta frames) beyond which a session sheds to cold
    /// instead of batching incrementally.
    pub max_pending: usize,
    /// Staleness SLO: a frame older than this when serviced counts as
    /// a budget miss.
    pub staleness_budget_ms: f64,
    /// When set, every admitted session is durable under
    /// `store_root/<name>` and may be [evicted](Daemon::evict) and
    /// revived.
    pub store_root: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch_frames: 8,
            max_pending: 64,
            staleness_budget_ms: 1_000.0,
            store_root: None,
        }
    }
}

/// Errors from daemon admission, scheduling, and recovery.
#[derive(Debug)]
pub enum ServeError {
    /// Building (or recovering) a session failed.
    Pipeline(PipelineError),
    /// The change source reported corruption.
    Source(StoreError),
    /// A named session is not admitted.
    UnknownSession(String),
    /// The operation needs a durable session but no
    /// [`ServeConfig::store_root`] is set.
    NotDurable(String),
    /// The session is currently evicted and the operation cannot
    /// revive it.
    Evicted(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Pipeline(e) => write!(f, "session build failed: {e}"),
            ServeError::Source(e) => write!(f, "change source failed: {e}"),
            ServeError::UnknownSession(name) => write!(f, "unknown session {name:?}"),
            ServeError::NotDurable(name) => {
                write!(f, "session {name:?} has no durable store (set store_root)")
            }
            ServeError::Evicted(name) => write!(f, "session {name:?} is evicted"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Source(e)
    }
}

/// One state-mutating operation the daemon performed on a session, in
/// order — the replay-identity log (see the [module docs](self)).
#[derive(Debug, Clone)]
pub enum Op {
    /// Applied one (possibly coalesced) delta (boxed: a delta is by
    /// far the largest variant payload).
    Update(Box<DatasetDelta>),
    /// Dropped warm state on the shed-to-cold path.
    ResetWarm,
    /// Re-ran the fixpoint.
    Run,
}

/// Per-session counters and staleness samples, exposed via
/// [`Daemon::stats`].
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Micro-batches applied (shed batches included).
    pub batches: u64,
    /// Delta frames consumed from the queue.
    pub frames_applied: u64,
    /// Frames folded into a predecessor by coalescing (consumed minus
    /// `update()` calls).
    pub coalesced_frames: u64,
    /// Times the session shed to cold under backpressure.
    pub shed_events: u64,
    /// Frames serviced later than [`ServeConfig::staleness_budget_ms`].
    pub budget_misses: u64,
    /// Updates that degraded to a cold recompute, for any reason.
    pub degraded_to_cold: u64,
    /// The subset of degrades caused by overload
    /// ([`em::DegradeReason::is_overload`]).
    pub overload_degrades: u64,
    /// Queue-head age at each service, in milliseconds.
    pub staleness_samples_ms: Vec<f64>,
}

enum Queued {
    Delta {
        delta: Box<DatasetDelta>,
        enqueued: Instant,
    },
    Fence,
}

struct HostedSession {
    factory: Box<dyn Fn() -> Pipeline>,
    /// `None` while evicted (durable sessions only).
    session: Option<MatchSession>,
    store_dir: Option<PathBuf>,
    queue: VecDeque<Queued>,
    cost_ema_ms: f64,
    stats: SessionStats,
    op_log: Vec<Op>,
}

impl HostedSession {
    fn pending(&self) -> usize {
        self.queue
            .iter()
            .filter(|q| matches!(q, Queued::Delta { .. }))
            .count()
    }

    fn oldest_age_ms(&self, now: Instant) -> f64 {
        self.queue
            .iter()
            .find_map(|q| match q {
                Queued::Delta { enqueued, .. } => {
                    Some(now.duration_since(*enqueued).as_secs_f64() * 1_000.0)
                }
                Queued::Fence => None,
            })
            .unwrap_or(0.0)
    }
}

/// What one [`Daemon::step`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The session serviced.
    pub session: String,
    /// Delta frames consumed from its queue.
    pub frames: usize,
    /// `update()` calls after coalescing.
    pub updates: usize,
    /// Whether this step was a backpressure shed.
    pub shed: bool,
}

/// What one [`Daemon::pump`] ingested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Delta frames routed to session queues.
    pub deltas: u64,
    /// Fences broadcast to every queue.
    pub fences: u64,
    /// Frames addressed to unknown sessions (counted, not delivered).
    pub dead_letters: u64,
}

/// The serving daemon. See the [module docs](self).
pub struct Daemon<S: ChangeSource> {
    config: ServeConfig,
    source: S,
    sessions: BTreeMap<String, HostedSession>,
    dead_letters: u64,
}

impl<S: ChangeSource> Daemon<S> {
    /// A daemon over `source` with the given tuning.
    pub fn new(source: S, config: ServeConfig) -> Self {
        Self {
            config,
            source,
            sessions: BTreeMap::new(),
            dead_letters: 0,
        }
    }

    /// Admit a named session. `factory` must build the session's
    /// [`Pipeline`] from scratch (same configuration every call); the
    /// daemon appends the durable store when
    /// [`ServeConfig::store_root`] is set, so the factory itself must
    /// **not** call [`Pipeline::store`]. The session is built (or
    /// recovered, when its store directory already exists) immediately,
    /// and a freshly built session runs its first fixpoint so queries
    /// have something to serve before any stream traffic arrives.
    ///
    /// The replay-identity contract ([`Daemon::replay_standalone`])
    /// covers sessions admitted *fresh*: a session recovered from a
    /// previous daemon's store carries history this daemon's [`Op`] log
    /// does not.
    pub fn admit(
        &mut self,
        name: &str,
        factory: impl Fn() -> Pipeline + 'static,
    ) -> Result<(), ServeError> {
        let store_dir = self.config.store_root.as_ref().map(|root| root.join(name));
        let mut pipeline = factory();
        if let Some(dir) = &store_dir {
            pipeline = pipeline.store(dir);
        }
        let mut session = pipeline.build()?;
        let mut op_log = Vec::new();
        if session.runs() == 0 {
            session.run();
            op_log.push(Op::Run);
        }
        self.sessions.insert(
            name.to_owned(),
            HostedSession {
                factory: Box::new(factory),
                session: Some(session),
                store_dir,
                queue: VecDeque::new(),
                cost_ema_ms: 0.0,
                stats: SessionStats::default(),
                op_log,
            },
        );
        Ok(())
    }

    /// Checkpoint a durable session and drop its in-memory state. Its
    /// queue keeps accumulating; the next [`Daemon::step`] that
    /// schedules it (or a direct query via [`Daemon::status`] /
    /// [`Daemon::matches`] — which report `None` while evicted)
    /// revives it from the store.
    pub fn evict(&mut self, name: &str) -> Result<(), ServeError> {
        let hosted = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        if hosted.store_dir.is_none() {
            return Err(ServeError::NotDurable(name.to_owned()));
        }
        if let Some(mut session) = hosted.session.take() {
            session
                .checkpoint()
                .map_err(|e| ServeError::Pipeline(PipelineError::Store(Box::new(e))))?;
        }
        Ok(())
    }

    /// Whether the named session is currently evicted.
    pub fn is_evicted(&self, name: &str) -> bool {
        self.sessions.get(name).is_some_and(|h| h.session.is_none())
    }

    fn revive(hosted: &mut HostedSession) -> Result<(), ServeError> {
        if hosted.session.is_none() {
            let dir = hosted
                .store_dir
                .clone()
                .expect("only durable sessions are ever evicted");
            hosted.session = Some((hosted.factory)().store(dir).build()?);
        }
        Ok(())
    }

    /// Drain the change source into the session queues.
    pub fn pump(&mut self) -> Result<PumpReport, ServeError> {
        let mut report = PumpReport::default();
        for frame in self.source.poll()? {
            match frame {
                StreamFrame::Delta { session, delta } => {
                    if let Some(hosted) = self.sessions.get_mut(&session) {
                        hosted.queue.push_back(Queued::Delta {
                            delta,
                            enqueued: Instant::now(),
                        });
                        report.deltas += 1;
                    } else {
                        self.dead_letters += 1;
                        report.dead_letters += 1;
                    }
                }
                StreamFrame::Fence(_) => {
                    for hosted in self.sessions.values_mut() {
                        // A fence only matters where a batch could
                        // otherwise span it.
                        if !hosted.queue.is_empty() {
                            hosted.queue.push_back(Queued::Fence);
                        }
                    }
                    report.fences += 1;
                }
            }
        }
        Ok(report)
    }

    /// Service the most pressing backlog, if any: one scheduler pick,
    /// one coalesced micro-batch (or one shed), one fixpoint.
    pub fn step(&mut self) -> Result<Option<StepReport>, ServeError> {
        let now = Instant::now();
        let views: Vec<SessionView> = self
            .sessions
            .iter()
            .map(|(name, hosted)| SessionView {
                name: name.clone(),
                pending: hosted.pending(),
                oldest_age_ms: hosted.oldest_age_ms(now),
                cost_ema_ms: hosted.cost_ema_ms,
            })
            .collect();
        let Some(name) = pick_next(&views, self.config.staleness_budget_ms) else {
            return Ok(None);
        };
        let name = name.to_owned();
        self.service(&name).map(Some)
    }

    fn service(&mut self, name: &str) -> Result<StepReport, ServeError> {
        let config = self.config.clone();
        let hosted = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        let shed = hosted.pending() > config.max_pending;

        // Take this batch's frames: the whole backlog when shedding,
        // otherwise up to the first fence or the batch cap.
        let started = Instant::now();
        let mut frames: Vec<DatasetDelta> = Vec::new();
        let mut oldest_age_ms: f64 = 0.0;
        while let Some(front) = hosted.queue.front() {
            match front {
                Queued::Fence => {
                    hosted.queue.pop_front();
                    if !frames.is_empty() && !shed {
                        break;
                    }
                }
                Queued::Delta { .. } => {
                    if !shed && frames.len() >= config.max_batch_frames {
                        break;
                    }
                    let Some(Queued::Delta { delta, enqueued }) = hosted.queue.pop_front() else {
                        unreachable!("front() said delta");
                    };
                    oldest_age_ms =
                        oldest_age_ms.max(started.duration_since(enqueued).as_secs_f64() * 1_000.0);
                    frames.push(*delta);
                }
            }
        }

        Self::revive(hosted)?;
        let floor = hosted
            .session
            .as_ref()
            .expect("revived above")
            .dataset()
            .entities
            .len() as u32;
        let taken = frames.len();
        let groups = coalesce(frames, floor);
        let updates = groups.len();
        for group in groups {
            let report = hosted
                .session
                .as_mut()
                .expect("revived above")
                .update(&group);
            hosted.op_log.push(Op::Update(Box::new(group)));
            if report.degraded_to_cold() {
                hosted.stats.degraded_to_cold += 1;
                if report.degraded.is_some_and(|r| r.is_overload()) {
                    hosted.stats.overload_degrades += 1;
                }
            }
        }
        if shed {
            hosted.session.as_mut().expect("revived above").reset_warm();
            hosted.op_log.push(Op::ResetWarm);
        }
        hosted.session.as_mut().expect("revived above").run();
        hosted.op_log.push(Op::Run);

        let cost_ms = started.elapsed().as_secs_f64() * 1_000.0;
        update_cost_ema(&mut hosted.cost_ema_ms, cost_ms);
        hosted.stats.batches += 1;
        hosted.stats.frames_applied += taken as u64;
        hosted.stats.coalesced_frames += (taken - updates) as u64;
        hosted.stats.staleness_samples_ms.push(oldest_age_ms);
        if oldest_age_ms > config.staleness_budget_ms {
            hosted.stats.budget_misses += 1;
        }
        if shed {
            hosted.stats.shed_events += 1;
        }
        Ok(StepReport {
            session: name.to_owned(),
            frames: taken,
            updates,
            shed,
        })
    }

    /// Pump and step until the source is drained and every queue is
    /// empty; returns the number of steps taken.
    pub fn run_until_quiescent(&mut self) -> Result<u64, ServeError> {
        let mut steps = 0;
        loop {
            let pumped = self.pump()?;
            match self.step()? {
                Some(_) => steps += 1,
                None if pumped == PumpReport::default() => return Ok(steps),
                None => {}
            }
        }
    }

    /// The named session's last fixpoint, or `None` when unknown or
    /// evicted. Never blocks on ingestion: queued frames stay queued.
    pub fn matches(&self, name: &str) -> Option<&PairSet> {
        self.sessions
            .get(name)?
            .session
            .as_ref()
            .map(|s| s.matches())
    }

    /// The named session's status snapshot, or `None` when unknown or
    /// evicted.
    pub fn status(&self, name: &str) -> Option<SessionStatus> {
        self.sessions
            .get(name)?
            .session
            .as_ref()
            .map(|s| s.status())
    }

    /// The named session's serving counters.
    pub fn stats(&self, name: &str) -> Option<&SessionStats> {
        self.sessions.get(name).map(|h| &h.stats)
    }

    /// The named session's replay-identity log.
    pub fn op_log(&self, name: &str) -> Option<&[Op]> {
        self.sessions.get(name).map(|h| h.op_log.as_slice())
    }

    /// Admitted session names, in iteration (scheduling-tiebreak)
    /// order.
    pub fn session_names(&self) -> Vec<String> {
        self.sessions.keys().cloned().collect()
    }

    /// Frames addressed to sessions nobody admitted (counted at pump
    /// time, never silently discarded from the stream).
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// Direct mutable access to a live hosted session (revives an
    /// evicted durable session first) — the query/escape hatch for
    /// callers that need more than [`Daemon::matches`] /
    /// [`Daemon::status`], e.g. digests for identity checks.
    pub fn session_mut(&mut self, name: &str) -> Result<&mut MatchSession, ServeError> {
        let hosted = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        Self::revive(hosted)?;
        Ok(hosted.session.as_mut().expect("revived above"))
    }

    /// Rebuild the named session **without** a store and replay its
    /// [`Op`] log — the daemon-equals-standalone identity arm. The
    /// returned session must agree with the hosted one on
    /// [`em::MatchSession::state_digest`] (and therefore on matches).
    pub fn replay_standalone(&self, name: &str) -> Result<MatchSession, ServeError> {
        let hosted = self
            .sessions
            .get(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        let mut session = (hosted.factory)().build()?;
        for op in &hosted.op_log {
            match op {
                Op::Update(delta) => {
                    session.update(delta);
                }
                Op::ResetWarm => session.reset_warm(),
                Op::Run => {
                    session.run();
                }
            }
        }
        Ok(session)
    }
}
