//! The serving daemon: N named sessions, one change stream, one
//! admitter, one worker thread per session.
//!
//! A [`Daemon`] owns a set of [admitted](Daemon::admit) sessions — each
//! an [`em::MatchSession`] built from a caller-supplied [`em::Pipeline`]
//! factory, optionally durable under `store_root/<name>` — and a
//! [`ChangeSource`] of session-addressed [`StreamFrame`]s. The loop is
//! three verbs on the admitter thread:
//!
//! * [`Daemon::pump`] drains the source into per-session FIFO queues
//!   (a [`StreamFrame::Fence`] enqueues a batch boundary on *every*
//!   queue; frames for unknown sessions count as dead letters, never
//!   silently vanish);
//! * [`Daemon::step`] first harvests any finished batches from the
//!   workers, then asks the [freshness scheduler](crate::sched) which
//!   backlog to admit, [coalesces](crate::batch) that queue's frames up
//!   to the next fence (or the configured batch cap) into as few deltas
//!   as merge-compatibility allows, and hands the batch *and the
//!   session itself* to the session's worker thread;
//! * the worker applies the batch through [`em::MatchSession::update`],
//!   re-runs the fixpoint once, and ships the session back.
//!
//! Ownership shuttles: a session is either resident on the daemon,
//! in flight on its worker, or evicted to its store — never shared.
//! One slow `update()` occupies only its own worker; the admitter keeps
//! scheduling every other session (no head-of-line blocking), and
//! per-session frame order is preserved because each session has
//! exactly one worker. [`Daemon::matches`] and [`Daemon::status`] serve
//! cached snapshots of the last completed fixpoint, so queries never
//! block on ingestion or apply and never observe a half-applied batch —
//! including while the session is in flight or evicted.
//!
//! **Backpressure.** A queue deeper than [`ServeConfig::max_pending`]
//! means churn is outrunning incremental apply. The daemon then *sheds
//! to cold* rather than stalling the fleet: the entire backlog is
//! collapsed into maximally coalesced deltas (fences ignored — the
//! overload forfeits batch-boundary granularity), applied without
//! intermediate fixpoints, and followed by one
//! [`em::MatchSession::reset_warm`] + cold run. No frame is ever
//! dropped; the event is counted in [`SessionStats::shed_events`] and
//! the cold run in the degrade counters, so overload is always visible
//! in metrics.
//!
//! **LRU eviction.** With [`ServeConfig::max_resident`] set (and a
//! `store_root`), the daemon hosts more named sessions than fit warm:
//! whenever the resident count would exceed the cap, the
//! least-recently-*serviced* durable session (read-only queries serve
//! snapshots and do not keep a session warm) is checkpointed and
//! dropped, exactly like an explicit [`Daemon::evict`]. The next batch
//! or direct access revives it from its store. In-flight sessions are
//! never victims, so the cap is soft by at most the number of
//! concurrently in-flight batches.
//!
//! **Replay identity.** Every state-mutating operation the daemon
//! performs on a session is recorded in an [`Op`] log, in dispatch
//! order (per-session order equals apply order — one worker per
//! session). [`Daemon::replay_standalone`] rebuilds the same pipeline
//! without a store and replays that log, which must land on the same
//! [`em::MatchSession::state_digest`] — the CI gate that daemon
//! plumbing (queueing, coalescing, shedding, workers, evict/recover)
//! never changes what a session computes.
//!
//! Dropping the daemon drops every worker's channel and *joins* the
//! worker threads: an in-flight batch runs to completion (its journal
//! frames land in the store's WAL), and no detached thread outlives the
//! daemon to race a successor recovering from the same `store_root`.

use crate::batch::coalesce;
use crate::sched::{pick_next, CostModel, SessionView};
use crate::source::ChangeSource;
use crate::wire::StreamFrame;
use em::{DatasetDelta, MatchSession, Pipeline, PipelineError, SessionStatus};
use em_core::PairSet;
use em_store::StoreError;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::time::Instant;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Most delta frames one [`Daemon::step`] batch may span (fences
    /// cut batches shorter).
    pub max_batch_frames: usize,
    /// Queue depth (delta frames) beyond which a session sheds to cold
    /// instead of batching incrementally.
    pub max_pending: usize,
    /// Default staleness SLO: a frame older than this when admitted
    /// for service counts as a budget miss.
    pub staleness_budget_ms: f64,
    /// Per-session staleness SLO overrides by session name (see
    /// [`ServeConfig::budget_for`]) — admit the SLO per session, not
    /// one global budget.
    pub session_budgets_ms: BTreeMap<String, f64>,
    /// Cap on concurrently *resident* (warm, in-memory) sessions; `0`
    /// means unlimited. Requires [`ServeConfig::store_root`] — only a
    /// durable session can be LRU-evicted, so without a store root the
    /// cap is inert.
    pub max_resident: usize,
    /// When set, every admitted session is durable under
    /// `store_root/<name>` and may be [evicted](Daemon::evict) and
    /// revived.
    pub store_root: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch_frames: 8,
            max_pending: 64,
            staleness_budget_ms: 1_000.0,
            session_budgets_ms: BTreeMap::new(),
            max_resident: 0,
            store_root: None,
        }
    }
}

impl ServeConfig {
    /// The staleness budget the named session was admitted with: its
    /// [`ServeConfig::session_budgets_ms`] override, or the global
    /// [`ServeConfig::staleness_budget_ms`].
    pub fn budget_for(&self, name: &str) -> f64 {
        self.session_budgets_ms
            .get(name)
            .copied()
            .unwrap_or(self.staleness_budget_ms)
    }
}

/// Errors from daemon admission, scheduling, and recovery.
#[derive(Debug)]
pub enum ServeError {
    /// Building (or recovering) a session failed.
    Pipeline(PipelineError),
    /// The change source reported corruption.
    Source(StoreError),
    /// A named session is not admitted.
    UnknownSession(String),
    /// The operation needs a durable session but no
    /// [`ServeConfig::store_root`] is set.
    NotDurable(String),
    /// The session is currently evicted and the operation cannot
    /// revive it.
    Evicted(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Pipeline(e) => write!(f, "session build failed: {e}"),
            ServeError::Source(e) => write!(f, "change source failed: {e}"),
            ServeError::UnknownSession(name) => write!(f, "unknown session {name:?}"),
            ServeError::NotDurable(name) => {
                write!(f, "session {name:?} has no durable store (set store_root)")
            }
            ServeError::Evicted(name) => write!(f, "session {name:?} is evicted"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Source(e)
    }
}

/// One state-mutating operation the daemon performed on a session, in
/// order — the replay-identity log (see the [module docs](self)).
#[derive(Debug, Clone)]
pub enum Op {
    /// Applied one (possibly coalesced) delta (boxed: a delta is by
    /// far the largest variant payload).
    Update(Box<DatasetDelta>),
    /// Dropped warm state on the shed-to-cold path.
    ResetWarm,
    /// Re-ran the fixpoint.
    Run,
}

/// Per-session counters and staleness samples, exposed via
/// [`Daemon::stats`].
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Micro-batches applied (shed batches included).
    pub batches: u64,
    /// Delta frames consumed from the queue.
    pub frames_applied: u64,
    /// Frames folded into a predecessor by coalescing (consumed minus
    /// `update()` calls).
    pub coalesced_frames: u64,
    /// Times the session shed to cold under backpressure.
    pub shed_events: u64,
    /// Frames admitted later than the session's staleness budget
    /// ([`ServeConfig::budget_for`]).
    pub budget_misses: u64,
    /// Updates that degraded to a cold recompute, for any reason.
    pub degraded_to_cold: u64,
    /// The subset of degrades caused by overload
    /// ([`em::DegradeReason::is_overload`]).
    pub overload_degrades: u64,
    /// Times the session was evicted by the LRU policy (explicit
    /// [`Daemon::evict`] calls not included).
    pub lru_evictions: u64,
    /// Times the session was revived from its store.
    pub revivals: u64,
    /// Queue-head age at each service, in milliseconds.
    pub staleness_samples_ms: Vec<f64>,
}

enum Queued {
    Delta {
        delta: Box<DatasetDelta>,
        enqueued: Instant,
    },
    Fence,
}

/// A coalesced batch plus the session it applies to, shuttled to the
/// session's worker.
struct WorkItem {
    groups: Vec<DatasetDelta>,
    shed: bool,
    session: MatchSession,
}

/// The session coming back from its worker with the batch applied.
struct WorkDone {
    name: String,
    session: MatchSession,
    cost_ms: f64,
    degraded_to_cold: u64,
    overload_degrades: u64,
}

fn worker_loop(
    name: String,
    work: crossbeam::channel::Receiver<WorkItem>,
    done: crossbeam::channel::Sender<WorkDone>,
) {
    while let Ok(WorkItem {
        groups,
        shed,
        mut session,
    }) = work.recv()
    {
        let started = Instant::now();
        let mut degraded_to_cold = 0;
        let mut overload_degrades = 0;
        for group in &groups {
            let report = session.update(group);
            if report.degraded_to_cold() {
                degraded_to_cold += 1;
                if report.degraded.is_some_and(|r| r.is_overload()) {
                    overload_degrades += 1;
                }
            }
        }
        if shed {
            session.reset_warm();
        }
        session.run();
        let cost_ms = started.elapsed().as_secs_f64() * 1_000.0;
        let returned = done.send(WorkDone {
            name: name.clone(),
            session,
            cost_ms,
            degraded_to_cold,
            overload_degrades,
        });
        if returned.is_err() {
            // The daemon is gone mid-shutdown: the batch is applied and
            // journaled (durability held), the in-memory state dies
            // with us — indistinguishable from a crash after commit.
            return;
        }
    }
}

struct HostedSession {
    factory: Box<dyn Fn() -> Pipeline + Send>,
    /// `None` while evicted *or* in flight on the worker;
    /// [`HostedSession::in_flight`] distinguishes the two.
    session: Option<MatchSession>,
    /// `Some(frames)` while a dispatched batch of that many delta
    /// frames is on the worker.
    in_flight: Option<usize>,
    store_dir: Option<PathBuf>,
    queue: VecDeque<Queued>,
    cost: CostModel,
    stats: SessionStats,
    op_log: Vec<Op>,
    /// Admitter clock at the last state-touching operation — the LRU
    /// recency key.
    last_touch: u64,
    /// Last completed fixpoint, served to queries even while the
    /// session is in flight or evicted.
    last_matches: PairSet,
    /// Status snapshot taken with [`HostedSession::last_matches`].
    last_status: SessionStatus,
    work_tx: crossbeam::channel::Sender<WorkItem>,
}

impl HostedSession {
    fn pending(&self) -> usize {
        self.queue
            .iter()
            .filter(|q| matches!(q, Queued::Delta { .. }))
            .count()
    }

    fn oldest_age_ms(&self, now: Instant) -> f64 {
        self.queue
            .iter()
            .find_map(|q| match q {
                Queued::Delta { enqueued, .. } => {
                    Some(now.duration_since(*enqueued).as_secs_f64() * 1_000.0)
                }
                Queued::Fence => None,
            })
            .unwrap_or(0.0)
    }

    /// Warm: in memory on the daemon or on its worker (not evicted).
    fn resident(&self) -> bool {
        self.session.is_some() || self.in_flight.is_some()
    }

    fn snapshot(&mut self) {
        if let Some(session) = &self.session {
            self.last_matches = session.matches().clone();
            self.last_status = session.status();
        }
    }
}

/// What one [`Daemon::step`] dispatched.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The session serviced.
    pub session: String,
    /// Delta frames consumed from its queue.
    pub frames: usize,
    /// `update()` calls after coalescing.
    pub updates: usize,
    /// Whether this step was a backpressure shed.
    pub shed: bool,
}

/// What one [`Daemon::pump`] ingested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Delta frames routed to session queues.
    pub deltas: u64,
    /// Fences broadcast to every queue.
    pub fences: u64,
    /// Frames addressed to unknown sessions (counted, not delivered).
    pub dead_letters: u64,
}

/// One row of [`Daemon::session_infos`] — the admin/listing view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Session name.
    pub name: String,
    /// Warm (in memory or on its worker), as opposed to evicted.
    pub resident: bool,
    /// A batch is currently on the session's worker.
    pub in_flight: bool,
    /// Delta frames waiting in the session's queue.
    pub pending: u64,
    /// Micro-batches applied so far.
    pub batches: u64,
}

/// The serving daemon. See the [module docs](self).
pub struct Daemon<S: ChangeSource> {
    config: ServeConfig,
    source: S,
    sessions: BTreeMap<String, HostedSession>,
    dead_letters: u64,
    done_tx: crossbeam::channel::Sender<WorkDone>,
    done_rx: crossbeam::channel::Receiver<WorkDone>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Monotonic admitter clock; stamps [`HostedSession::last_touch`].
    clock: u64,
}

impl<S: ChangeSource> Daemon<S> {
    /// A daemon over `source` with the given tuning.
    pub fn new(source: S, config: ServeConfig) -> Self {
        let (done_tx, done_rx) = crossbeam::channel::unbounded();
        Self {
            config,
            source,
            sessions: BTreeMap::new(),
            dead_letters: 0,
            done_tx,
            done_rx,
            workers: Vec::new(),
            clock: 0,
        }
    }

    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Admit a named session. `factory` must build the session's
    /// [`Pipeline`] from scratch (same configuration every call); the
    /// daemon appends the durable store when
    /// [`ServeConfig::store_root`] is set, so the factory itself must
    /// **not** call [`Pipeline::store`]. The session is built (or
    /// recovered, when its store directory already exists) immediately,
    /// a freshly built session runs its first fixpoint so queries have
    /// something to serve before any stream traffic arrives, and a
    /// dedicated worker thread is spawned for the session's batches.
    ///
    /// The replay-identity contract ([`Daemon::replay_standalone`])
    /// covers sessions admitted *fresh*: a session recovered from a
    /// previous daemon's store carries history this daemon's [`Op`] log
    /// does not.
    pub fn admit(
        &mut self,
        name: &str,
        factory: impl Fn() -> Pipeline + Send + 'static,
    ) -> Result<(), ServeError> {
        let store_dir = self.config.store_root.as_ref().map(|root| root.join(name));
        let mut pipeline = factory();
        if let Some(dir) = &store_dir {
            pipeline = pipeline.store(dir);
        }
        let mut session = pipeline.build()?;
        let mut op_log = Vec::new();
        if session.runs() == 0 {
            session.run();
            op_log.push(Op::Run);
        }
        let last_matches = session.matches().clone();
        let last_status = session.status();
        let (work_tx, work_rx) = crossbeam::channel::unbounded();
        let worker = std::thread::Builder::new()
            .name(format!("em-serve-{name}"))
            .spawn({
                let name = name.to_owned();
                let done_tx = self.done_tx.clone();
                move || worker_loop(name, work_rx, done_tx)
            })
            .expect("spawn session worker");
        self.workers.push(worker);
        let last_touch = self.touch();
        self.sessions.insert(
            name.to_owned(),
            HostedSession {
                factory: Box::new(factory),
                session: Some(session),
                in_flight: None,
                store_dir,
                queue: VecDeque::new(),
                cost: CostModel::default(),
                stats: SessionStats::default(),
                op_log,
                last_touch,
                last_matches,
                last_status,
                work_tx,
            },
        );
        self.enforce_lru(Some(name))?;
        Ok(())
    }

    /// Checkpoint a durable session and drop its in-memory state
    /// (waiting out an in-flight batch first). Its queue keeps
    /// accumulating and queries keep serving the last snapshot; the
    /// next batch or direct access revives it from the store.
    pub fn evict(&mut self, name: &str) -> Result<(), ServeError> {
        self.settle(name)?;
        let hosted = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        if hosted.store_dir.is_none() {
            return Err(ServeError::NotDurable(name.to_owned()));
        }
        Self::checkpoint_and_drop(hosted)
    }

    /// Checkpoint a (durable, settled) session to its store, refresh
    /// its query snapshots, and drop the in-memory state.
    fn checkpoint_and_drop(hosted: &mut HostedSession) -> Result<(), ServeError> {
        if let Some(mut session) = hosted.session.take() {
            session
                .checkpoint()
                .map_err(|e| ServeError::Pipeline(PipelineError::Store(Box::new(e))))?;
            hosted.last_matches = session.matches().clone();
            hosted.last_status = session.status();
        }
        Ok(())
    }

    /// Checkpoint a durable session's current state without evicting
    /// it (waiting out an in-flight batch first). A no-op when the
    /// session is already evicted — its store is its checkpoint.
    pub fn checkpoint(&mut self, name: &str) -> Result<(), ServeError> {
        self.settle(name)?;
        let hosted = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        if hosted.store_dir.is_none() {
            return Err(ServeError::NotDurable(name.to_owned()));
        }
        if let Some(session) = hosted.session.as_mut() {
            session
                .checkpoint()
                .map_err(|e| ServeError::Pipeline(PipelineError::Store(Box::new(e))))?;
        }
        hosted.snapshot();
        Ok(())
    }

    /// Whether the named session is currently evicted.
    pub fn is_evicted(&self, name: &str) -> bool {
        self.sessions.get(name).is_some_and(|h| !h.resident())
    }

    /// Block until the named session has no batch in flight,
    /// harvesting completions as they arrive.
    fn settle(&mut self, name: &str) -> Result<(), ServeError> {
        while self
            .sessions
            .get(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?
            .in_flight
            .is_some()
        {
            self.collect(true)?;
        }
        Ok(())
    }

    /// Make the named session resident (reviving it from its store if
    /// evicted), LRU-evicting other residents as needed to hold
    /// [`ServeConfig::max_resident`].
    fn ensure_resident(&mut self, name: &str) -> Result<(), ServeError> {
        if self
            .sessions
            .get(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?
            .resident()
        {
            return Ok(());
        }
        self.enforce_lru(Some(name))?;
        let last_touch = self.touch();
        let hosted = self.sessions.get_mut(name).expect("checked above");
        let dir = hosted
            .store_dir
            .clone()
            .expect("only durable sessions are ever evicted");
        hosted.session = Some((hosted.factory)().store(dir).build()?);
        hosted.stats.revivals += 1;
        hosted.last_touch = last_touch;
        Ok(())
    }

    /// Evict least-recently-touched durable residents until at most
    /// [`ServeConfig::max_resident`] sessions are warm (leaving room
    /// for `protect` when it is about to be revived). In-flight and
    /// non-durable sessions are never victims, so the cap is soft
    /// under concurrency.
    fn enforce_lru(&mut self, protect: Option<&str>) -> Result<(), ServeError> {
        if self.config.max_resident == 0 {
            return Ok(());
        }
        // When `protect` is about to be revived it is not resident yet:
        // reserve its slot so the revival lands at or under the cap.
        let cap = if protect.is_some_and(|name| !self.sessions[name].resident()) {
            self.config.max_resident.saturating_sub(1)
        } else {
            self.config.max_resident
        };
        loop {
            let resident = self.sessions.values().filter(|h| h.resident()).count();
            if resident <= cap {
                return Ok(());
            }
            let victim = self
                .sessions
                .iter()
                .filter(|(name, h)| {
                    h.session.is_some() && h.store_dir.is_some() && protect != Some(name.as_str())
                })
                .min_by_key(|(name, h)| (h.last_touch, (*name).clone()))
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else {
                return Ok(()); // every resident is in flight or pinned
            };
            let hosted = self.sessions.get_mut(&victim).expect("picked above");
            Self::checkpoint_and_drop(hosted)?;
            hosted.stats.lru_evictions += 1;
        }
    }

    /// Drain the change source into the session queues.
    pub fn pump(&mut self) -> Result<PumpReport, ServeError> {
        let mut report = PumpReport::default();
        for frame in self.source.poll()? {
            match frame {
                StreamFrame::Delta { session, delta } => {
                    if let Some(hosted) = self.sessions.get_mut(&session) {
                        hosted.queue.push_back(Queued::Delta {
                            delta,
                            enqueued: Instant::now(),
                        });
                        report.deltas += 1;
                    } else {
                        self.dead_letters += 1;
                        report.dead_letters += 1;
                    }
                }
                StreamFrame::Fence(_) => {
                    for hosted in self.sessions.values_mut() {
                        // A fence only matters where a batch could
                        // otherwise span it.
                        if !hosted.queue.is_empty() {
                            hosted.queue.push_back(Queued::Fence);
                        }
                    }
                    report.fences += 1;
                }
            }
        }
        Ok(report)
    }

    /// Harvest finished batches from the workers: fold their cost into
    /// the session's [`CostModel`], refresh the query snapshots, and
    /// put the session back in rotation. With `block`, waits for at
    /// least one completion when any batch is in flight. Returns the
    /// number of batches harvested.
    fn collect(&mut self, block: bool) -> Result<u64, ServeError> {
        let mut harvested = Vec::new();
        if block && self.in_flight_count() > 0 {
            // Poll rather than recv: a worker that panicked mid-batch
            // will never send, and reaping surfaces that panic here
            // instead of deadlocking the admitter.
            loop {
                if let Some(done) = self.done_rx.try_recv() {
                    harvested.push(done);
                    break;
                }
                self.reap_workers();
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        while let Some(done) = self.done_rx.try_recv() {
            harvested.push(done);
        }
        let n = harvested.len() as u64;
        for done in harvested {
            let hosted = self
                .sessions
                .get_mut(&done.name)
                .expect("sessions are never removed");
            let frames = hosted
                .in_flight
                .take()
                .expect("a completion implies a dispatch");
            hosted.cost.observe(frames, done.cost_ms);
            hosted.stats.degraded_to_cold += done.degraded_to_cold;
            hosted.stats.overload_degrades += done.overload_degrades;
            hosted.session = Some(done.session);
            hosted.snapshot();
        }
        if n > 0 {
            self.enforce_lru(None)?;
        }
        Ok(n)
    }

    /// Join any worker threads that have exited (e.g. the previous
    /// worker of a re-admitted name), propagating a worker panic to
    /// the admitter rather than letting it hang a blocking collect.
    fn reap_workers(&mut self) {
        let mut alive = Vec::with_capacity(self.workers.len());
        for worker in self.workers.drain(..) {
            if worker.is_finished() {
                if let Err(panic) = worker.join() {
                    std::panic::resume_unwind(panic);
                }
            } else {
                alive.push(worker);
            }
        }
        self.workers = alive;
    }

    /// Number of sessions currently on their workers.
    fn in_flight_count(&self) -> usize {
        self.sessions
            .values()
            .filter(|h| h.in_flight.is_some())
            .count()
    }

    /// Harvest completions, then admit the most pressing backlog to
    /// its worker, if any: one scheduler pick, one coalesced
    /// micro-batch (or one shed) dispatched. Non-blocking: returns
    /// `Ok(None)` when every pending backlog belongs to an in-flight
    /// session (or nothing is pending).
    pub fn step(&mut self) -> Result<Option<StepReport>, ServeError> {
        self.collect(false)?;
        self.try_dispatch()
    }

    fn try_dispatch(&mut self) -> Result<Option<StepReport>, ServeError> {
        let now = Instant::now();
        let max_batch = self.config.max_batch_frames;
        let views: Vec<SessionView> = self
            .sessions
            .iter()
            .filter(|(_, hosted)| hosted.in_flight.is_none())
            .map(|(name, hosted)| SessionView {
                name: name.clone(),
                pending: hosted.pending(),
                oldest_age_ms: hosted.oldest_age_ms(now),
                cost_est_ms: hosted.cost.estimate(hosted.pending().min(max_batch)),
                budget_ms: self.config.budget_for(name),
            })
            .collect();
        let Some(name) = pick_next(&views) else {
            return Ok(None);
        };
        let name = name.to_owned();
        self.dispatch(&name).map(Some)
    }

    fn dispatch(&mut self, name: &str) -> Result<StepReport, ServeError> {
        self.ensure_resident(name)?;
        let budget_ms = self.config.budget_for(name);
        let max_batch_frames = self.config.max_batch_frames;
        let max_pending = self.config.max_pending;
        let last_touch = self.touch();
        let hosted = self
            .sessions
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        let shed = hosted.pending() > max_pending;

        // Take this batch's frames: the whole backlog when shedding,
        // otherwise up to the first fence or the batch cap.
        let started = Instant::now();
        let mut frames: Vec<DatasetDelta> = Vec::new();
        let mut oldest_age_ms: f64 = 0.0;
        while let Some(front) = hosted.queue.front() {
            match front {
                Queued::Fence => {
                    hosted.queue.pop_front();
                    if !frames.is_empty() && !shed {
                        break;
                    }
                }
                Queued::Delta { .. } => {
                    if !shed && frames.len() >= max_batch_frames {
                        break;
                    }
                    let Some(Queued::Delta { delta, enqueued }) = hosted.queue.pop_front() else {
                        unreachable!("front() said delta");
                    };
                    oldest_age_ms =
                        oldest_age_ms.max(started.duration_since(enqueued).as_secs_f64() * 1_000.0);
                    frames.push(*delta);
                }
            }
        }

        let session = hosted.session.take().expect("ensure_resident above");
        let floor = session.dataset().entities.len() as u32;
        let taken = frames.len();
        let groups = coalesce(frames, floor);
        let updates = groups.len();
        for group in &groups {
            hosted.op_log.push(Op::Update(Box::new(group.clone())));
        }
        if shed {
            hosted.op_log.push(Op::ResetWarm);
        }
        hosted.op_log.push(Op::Run);

        hosted.in_flight = Some(taken);
        hosted.last_touch = last_touch;
        hosted.stats.batches += 1;
        hosted.stats.frames_applied += taken as u64;
        hosted.stats.coalesced_frames += (taken - updates) as u64;
        hosted.stats.staleness_samples_ms.push(oldest_age_ms);
        if oldest_age_ms > budget_ms {
            hosted.stats.budget_misses += 1;
        }
        if shed {
            hosted.stats.shed_events += 1;
        }
        hosted
            .work_tx
            .send(WorkItem {
                groups,
                shed,
                session,
            })
            .unwrap_or_else(|_| unreachable!("worker outlives its sender"));
        Ok(StepReport {
            session: name.to_owned(),
            frames: taken,
            updates,
            shed,
        })
    }

    /// Pump, dispatch, and harvest until the source is drained, every
    /// queue is empty, and every worker is idle; returns the number of
    /// batches dispatched.
    pub fn run_until_quiescent(&mut self) -> Result<u64, ServeError> {
        let mut steps = 0;
        loop {
            let pumped = self.pump()?;
            self.collect(false)?;
            match self.try_dispatch()? {
                Some(_) => steps += 1,
                None if self.in_flight_count() > 0 => {
                    self.collect(true)?;
                }
                None if pumped == PumpReport::default() => return Ok(steps),
                None => {}
            }
        }
    }

    /// The named session's last completed fixpoint, or `None` when the
    /// name is unknown. Never blocks: the snapshot is served even
    /// while the session is in flight on its worker or evicted, and
    /// never shows a half-applied batch.
    pub fn matches(&self, name: &str) -> Option<&PairSet> {
        self.sessions.get(name).map(|h| &h.last_matches)
    }

    /// The named session's status snapshot (taken with the last
    /// completed fixpoint), or `None` when the name is unknown.
    pub fn status(&self, name: &str) -> Option<SessionStatus> {
        self.sessions.get(name).map(|h| h.last_status)
    }

    /// The named session's serving counters.
    pub fn stats(&self, name: &str) -> Option<&SessionStats> {
        self.sessions.get(name).map(|h| &h.stats)
    }

    /// The named session's replay-identity log.
    pub fn op_log(&self, name: &str) -> Option<&[Op]> {
        self.sessions.get(name).map(|h| h.op_log.as_slice())
    }

    /// Admitted session names, in iteration (scheduling-tiebreak)
    /// order.
    pub fn session_names(&self) -> Vec<String> {
        self.sessions.keys().cloned().collect()
    }

    /// The admin/listing view: one [`SessionInfo`] per admitted
    /// session, in name order.
    pub fn session_infos(&self) -> Vec<SessionInfo> {
        self.sessions
            .iter()
            .map(|(name, h)| SessionInfo {
                name: name.clone(),
                resident: h.resident(),
                in_flight: h.in_flight.is_some(),
                pending: h.pending() as u64,
                batches: h.stats.batches,
            })
            .collect()
    }

    /// Frames addressed to sessions nobody admitted (counted at pump
    /// time, never silently discarded from the stream).
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// The daemon's tuning, as admitted.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Direct mutable access to a live hosted session — waits out an
    /// in-flight batch and revives an evicted durable session first.
    /// The query/escape hatch for callers that need more than
    /// [`Daemon::matches`] / [`Daemon::status`], e.g. digests for
    /// identity checks.
    pub fn session_mut(&mut self, name: &str) -> Result<&mut MatchSession, ServeError> {
        self.settle(name)?;
        self.ensure_resident(name)?;
        let last_touch = self.touch();
        let hosted = self.sessions.get_mut(name).expect("resident above");
        hosted.last_touch = last_touch;
        Ok(hosted.session.as_mut().expect("resident above"))
    }

    /// Rebuild the named session **without** a store and replay its
    /// [`Op`] log — the daemon-equals-standalone identity arm. The
    /// returned session must agree with the hosted one on
    /// [`em::MatchSession::state_digest`] (and therefore on matches).
    pub fn replay_standalone(&self, name: &str) -> Result<MatchSession, ServeError> {
        let hosted = self
            .sessions
            .get(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_owned()))?;
        let mut session = (hosted.factory)().build()?;
        for op in &hosted.op_log {
            match op {
                Op::Update(delta) => {
                    session.update(delta);
                }
                Op::ResetWarm => session.reset_warm(),
                Op::Run => {
                    session.run();
                }
            }
        }
        Ok(session)
    }
}

impl<S: ChangeSource> Drop for Daemon<S> {
    fn drop(&mut self) {
        // Drop every worker's sender so the threads run out their
        // queues and exit, then join them: an in-flight batch finishes
        // (its journal frames land in the store WAL), and no detached
        // thread outlives the daemon to race a successor recovering
        // from the same store_root.
        self.sessions.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
