//! The change-stream wire format: `em-store` WAL frames carrying
//! session-addressed [`DatasetDelta`]s and epoch fences.
//!
//! A change stream is a sequence of `(kind, payload)` frames in the
//! exact `em-store-v1` frame layout ([`em_store::Wal`]: length prefix,
//! CRC-32 over kind + payload, fsync-on-append when file-backed), so a
//! stream file is tailable with the same torn-tail semantics the WAL
//! already guarantees, and a future socket transport is a byte-for-byte
//! reuse of this codec. Two frame kinds exist:
//!
//! | kind | payload |
//! |------|---------|
//! | [`FRAME_STREAM_DELTA`] | session name ([`Writer::str`]) + the delta's [`DatasetDelta::wal_encode`] bytes |
//! | [`FRAME_STREAM_FENCE`] | one `u64` fence id |
//!
//! A **fence** marks a batch boundary for every session at once: the
//! micro-batcher never coalesces a delta enqueued before a fence with
//! one enqueued after it, so producers can force "everything up to
//! here becomes visible together".

use em::DatasetDelta;
use em_store::{Reader, StoreError, Writer};

/// Frame kind of a session-addressed delta.
pub const FRAME_STREAM_DELTA: u8 = 1;
/// Frame kind of a global epoch fence.
pub const FRAME_STREAM_FENCE: u8 = 2;

/// One decoded change-stream frame.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFrame {
    /// A [`DatasetDelta`] addressed to the named session.
    Delta {
        /// Target session name.
        session: String,
        /// The mutation batch (boxed: a delta is by far the largest
        /// variant payload).
        delta: Box<DatasetDelta>,
    },
    /// A global epoch fence: a micro-batch boundary for every session.
    Fence(u64),
}

impl StreamFrame {
    /// Encode as a `(kind, payload)` pair ready for
    /// [`em_store::Wal::append`] or an in-process channel.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            StreamFrame::Delta { session, delta } => {
                let mut w = Writer::new();
                w.str(session);
                w.bytes(&delta.wal_encode());
                (FRAME_STREAM_DELTA, w.into_bytes())
            }
            StreamFrame::Fence(id) => {
                let mut w = Writer::new();
                w.u64(*id);
                (FRAME_STREAM_FENCE, w.into_bytes())
            }
        }
    }

    /// Decode a `(kind, payload)` pair. Unknown kinds and malformed
    /// payloads are typed [`StoreError`]s, never silently skipped.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, StoreError> {
        let mut r = Reader::new(payload);
        match kind {
            FRAME_STREAM_DELTA => {
                let session = r.str("stream frame session name")?.to_owned();
                let delta = DatasetDelta::wal_decode(r.bytes("stream frame delta bytes")?)?;
                r.finish("stream delta frame")?;
                Ok(StreamFrame::Delta {
                    session,
                    delta: Box::new(delta),
                })
            }
            FRAME_STREAM_FENCE => {
                let id = r.u64("stream fence id")?;
                r.finish("stream fence frame")?;
                Ok(StreamFrame::Fence(id))
            }
            other => Err(StoreError::Corrupt {
                context: format!("unknown change-stream frame kind {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{EntityId, SimLevel};

    #[test]
    fn delta_frames_round_trip() {
        let mut delta = DatasetDelta::new();
        let a = delta.add_entity("ref", &[("title", "x")]);
        let b = delta.add_entity("ref", &[("title", "y")]);
        delta.add_link(a, b, SimLevel(2));
        delta.retract_entity(EntityId(7));
        let frame = StreamFrame::Delta {
            session: "hepth-a".to_owned(),
            delta: Box::new(delta),
        };
        let (kind, payload) = frame.encode();
        assert_eq!(kind, FRAME_STREAM_DELTA);
        let back = StreamFrame::decode(kind, &payload).expect("round trip");
        assert_eq!(back, frame);
    }

    #[test]
    fn fence_frames_round_trip() {
        let (kind, payload) = StreamFrame::Fence(42).encode();
        assert_eq!(kind, FRAME_STREAM_FENCE);
        assert_eq!(
            StreamFrame::decode(kind, &payload).expect("round trip"),
            StreamFrame::Fence(42)
        );
    }

    #[test]
    fn unknown_kinds_and_trailing_bytes_are_typed_errors() {
        assert!(StreamFrame::decode(99, &[]).is_err());
        let (kind, mut payload) = StreamFrame::Fence(1).encode();
        payload.push(0xFF);
        assert!(StreamFrame::decode(kind, &payload).is_err());
    }
}
