//! Change-stream sources: where the daemon's frames come from.
//!
//! Two transports, one contract ([`ChangeSource::poll`] — non-blocking
//! drain of everything currently available):
//!
//! * [`FileTailSource`] tails a stream file written in the `em-store`
//!   WAL frame layout (see [`crate::wire`]): it remembers its byte
//!   offset, parses every complete frame past it, and leaves a torn
//!   tail (a producer's in-flight append) pending for the next poll —
//!   the file is the queue, so a daemon restart re-tails from wherever
//!   its sessions' durable state says it left off.
//! * [`ChannelSource`] drains an in-process `crossbeam` channel of
//!   already-decoded frames — the CI-friendly transport, and the shape
//!   a future socket transport plugs into (decode at the edge, then
//!   this same channel).
//!
//! Producers write with [`StreamWriter`] (file) or a plain channel
//! sender; both speak [`crate::wire::StreamFrame`].

use crate::wire::StreamFrame;
use em_store::{crc32, StoreError, Wal};
use std::io::{Read as _, Seek as _, SeekFrom};
use std::path::{Path, PathBuf};

/// A non-blocking supplier of change-stream frames.
pub trait ChangeSource {
    /// Drain every frame currently available, in arrival order.
    /// Returns an empty vector when nothing new has arrived; errors
    /// are corruption (bad CRC, unknown kind), never end-of-stream.
    fn poll(&mut self) -> Result<Vec<StreamFrame>, StoreError>;
}

/// Appends [`StreamFrame`]s to a stream file in the `em-store` WAL
/// frame layout (CRC-guarded, fsync-on-append), for [`FileTailSource`]
/// consumers.
#[derive(Debug)]
pub struct StreamWriter {
    wal: Wal,
}

impl StreamWriter {
    /// Create (or append to) the stream file at `path`.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let (wal, _) = Wal::open(path)?;
        Ok(Self { wal })
    }

    /// Append one frame; durable when this returns.
    pub fn send(&mut self, frame: &StreamFrame) -> Result<(), StoreError> {
        let (kind, payload) = frame.encode();
        self.wal.append(kind, &payload)?;
        Ok(())
    }

    /// Frames appended to the file over its lifetime (including by
    /// earlier writers).
    pub fn frames(&self) -> u64 {
        self.wal.frame_count()
    }
}

/// Tails a stream file from a remembered byte offset (see the [module
/// docs](self)).
#[derive(Debug)]
pub struct FileTailSource {
    path: PathBuf,
    offset: u64,
}

impl FileTailSource {
    /// Tail `path` from its beginning. The file need not exist yet —
    /// a missing file is simply an empty poll.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            offset: 0,
        }
    }

    /// The byte offset the next poll resumes from.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl ChangeSource for FileTailSource {
    fn poll(&mut self) -> Result<Vec<StreamFrame>, StoreError> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        file.seek(SeekFrom::Start(self.offset))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // The same frame scan Wal::open runs, minus the truncation: a
        // torn tail here is a producer mid-append, not a crash, so it
        // stays in the file and re-parses on the next poll.
        let mut frames = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 8 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len == 0 {
                return Err(StoreError::Corrupt {
                    context: format!(
                        "zero-length stream frame at offset {}",
                        self.offset + pos as u64
                    ),
                });
            }
            if bytes.len() - pos - 8 < len {
                break; // torn tail: the producer is still writing
            }
            let body = &bytes[pos + 8..pos + 8 + len];
            if crc32(body) != crc {
                return Err(StoreError::Corrupt {
                    context: format!(
                        "checksum mismatch in stream frame at offset {}",
                        self.offset + pos as u64
                    ),
                });
            }
            frames.push(StreamFrame::decode(body[0], &body[1..])?);
            pos += 8 + len;
        }
        self.offset += pos as u64;
        Ok(frames)
    }
}

/// Drains an in-process channel of decoded frames.
pub struct ChannelSource {
    rx: crossbeam::channel::Receiver<StreamFrame>,
}

impl std::fmt::Debug for ChannelSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSource").finish_non_exhaustive()
    }
}

/// An in-process change stream: `(sender, source)`. The sender side is
/// a plain cloneable `crossbeam` sender, so any number of producer
/// threads can feed one daemon.
pub fn channel_source() -> (crossbeam::channel::Sender<StreamFrame>, ChannelSource) {
    let (tx, rx) = crossbeam::channel::unbounded();
    (tx, ChannelSource { rx })
}

impl ChangeSource for ChannelSource {
    fn poll(&mut self) -> Result<Vec<StreamFrame>, StoreError> {
        let mut frames = Vec::new();
        while let Some(frame) = self.rx.try_recv() {
            frames.push(frame);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("em-serve-source-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn file_tail_sees_frames_incrementally_and_skips_torn_tails() {
        let path = tmp("tail.stream");
        let _ = std::fs::remove_file(&path);
        let mut source = FileTailSource::new(&path);
        assert!(source.poll().unwrap().is_empty(), "missing file is empty");

        let mut writer = StreamWriter::open(&path).unwrap();
        writer.send(&StreamFrame::Fence(1)).unwrap();
        writer.send(&StreamFrame::Fence(2)).unwrap();
        let polled = source.poll().unwrap();
        assert_eq!(polled, vec![StreamFrame::Fence(1), StreamFrame::Fence(2)]);
        assert!(source.poll().unwrap().is_empty(), "no re-delivery");

        // A torn tail (producer mid-append) stays pending...
        writer.send(&StreamFrame::Fence(3)).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(source.poll().unwrap().is_empty());
        // ...and parses once the append completes.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(source.poll().unwrap(), vec![StreamFrame::Fence(3)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_tail_reports_corruption_as_typed_errors() {
        let path = tmp("corrupt.stream");
        let _ = std::fs::remove_file(&path);
        let mut writer = StreamWriter::open(&path).unwrap();
        writer.send(&StreamFrame::Fence(1)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FileTailSource::new(&path).poll(),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn channel_source_drains_in_order() {
        let (tx, mut source) = channel_source();
        tx.send(StreamFrame::Fence(1)).unwrap();
        tx.send(StreamFrame::Fence(2)).unwrap();
        assert_eq!(
            source.poll().unwrap(),
            vec![StreamFrame::Fence(1), StreamFrame::Fence(2)]
        );
        assert!(source.poll().unwrap().is_empty());
    }
}
