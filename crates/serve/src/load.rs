//! The serve-load driver: push scripted traffic through a [`Daemon`]
//! and verify the serving layer changed nothing.
//!
//! [`run_load`] takes per-session traffic (an initial dataset plus a
//! delta script — the caller generates these however it likes, e.g.
//! [`em::DatasetDelta::churn_script_with`] over a datagen world),
//! interleaves the scripts round-robin onto an in-process change
//! stream with periodic fences, and alternates traffic bursts with
//! daemon drain cycles so queues actually build depth (that is what
//! exercises coalescing and, with a small [`ServeConfig::max_pending`],
//! the shed path). Optionally every durable session is evicted and
//! revived mid-stream.
//!
//! When the stream is drained it runs the identity arm: each hosted
//! session is compared against [`Daemon::replay_standalone`] on
//! [`em::MatchSession::state_digest`] and on the match set. The
//! resulting [`LoadOutcome`] is what the `serve_load` binary prints and
//! what CI gates on (`sessions_identical`, `staleness_budget_met`).

use crate::daemon::{Daemon, ServeConfig, ServeError};
use crate::sched::staleness_percentiles;
use crate::source::channel_source;
use crate::wire::StreamFrame;
use em::{DatasetDelta, Pipeline};
use em_core::Dataset;

/// One session's scripted traffic.
pub struct SessionTraffic {
    /// Session name on the stream.
    pub name: String,
    /// The dataset the session is admitted with.
    pub initial: Dataset,
    /// The delta script to stream at it, in order.
    pub deltas: Vec<DatasetDelta>,
}

/// Knobs of [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon tuning (queue caps, staleness budget, store root).
    pub serve: ServeConfig,
    /// Broadcast a fence every this many traffic rounds (0 = never).
    pub fence_every: usize,
    /// Rounds (one delta per session each) sent before the daemon gets
    /// to drain — the queue depth the batcher sees.
    pub rounds_per_burst: usize,
    /// Evict every session once, halfway through the stream (requires
    /// [`ServeConfig::store_root`]).
    pub evict_mid_stream: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            fence_every: 4,
            rounds_per_burst: 4,
            evict_mid_stream: false,
        }
    }
}

/// One session's verdict and counters after a load run.
#[derive(Debug, Clone)]
pub struct SessionLoadStats {
    /// Session name.
    pub name: String,
    /// Daemon-hosted state digest == standalone op-log replay digest,
    /// and the match sets agree.
    pub identical: bool,
    /// Micro-batches applied.
    pub batches: u64,
    /// Delta frames consumed.
    pub frames_applied: u64,
    /// Frames folded away by coalescing.
    pub coalesced_frames: u64,
    /// Backpressure sheds.
    pub shed_events: u64,
    /// Frames serviced past the staleness budget.
    pub budget_misses: u64,
    /// Updates that degraded to cold.
    pub degraded_to_cold: u64,
    /// Overload-caused degrades among them.
    pub overload_degrades: u64,
    /// Median queue-head age at service, milliseconds.
    pub staleness_p50_ms: f64,
    /// 99th-percentile queue-head age at service, milliseconds.
    pub staleness_p99_ms: f64,
    /// Final fixpoint size.
    pub final_matches: u64,
}

/// Whole-run verdict: per-session stats plus the gates CI greps for.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// Per-session stats, in admission order.
    pub sessions: Vec<SessionLoadStats>,
    /// Every session passed the replay-identity check.
    pub sessions_identical: bool,
    /// No session missed the staleness budget.
    pub staleness_budget_met: bool,
    /// Frames addressed to unknown sessions.
    pub dead_letters: u64,
    /// Daemon steps taken.
    pub steps: u64,
}

/// Drive `traffic` through a fresh daemon and verify it (see the
/// [module docs](self)). `make` builds each session's [`Pipeline`]
/// from its initial dataset — the same configuration the identity arm
/// rebuilds for replay, so it must be deterministic and must not
/// attach a store (the daemon does that when configured).
pub fn run_load<F>(
    traffic: Vec<SessionTraffic>,
    config: &LoadConfig,
    make: F,
) -> Result<LoadOutcome, ServeError>
where
    F: Fn(Dataset) -> Pipeline + Clone + 'static,
{
    let (tx, source) = channel_source();
    let mut daemon = Daemon::new(source, config.serve.clone());

    let mut names = Vec::new();
    let mut scripts = Vec::new();
    let total_rounds = traffic.iter().map(|t| t.deltas.len()).max().unwrap_or(0);
    for t in traffic {
        let make = make.clone();
        let initial = t.initial;
        daemon.admit(&t.name, move || make(initial.clone()))?;
        names.push(t.name.clone());
        scripts.push((t.name, t.deltas.into_iter()));
    }

    let mut steps = 0;
    let mut round = 0usize;
    let mut fence_id = 0u64;
    let mut evicted = false;
    loop {
        let mut sent_any = false;
        for _ in 0..config.rounds_per_burst.max(1) {
            for (name, script) in &mut scripts {
                if let Some(delta) = script.next() {
                    tx.send(StreamFrame::Delta {
                        session: name.clone(),
                        delta: Box::new(delta),
                    })
                    .expect("daemon owns the receiver");
                    sent_any = true;
                }
            }
            round += 1;
            if config.fence_every > 0 && round.is_multiple_of(config.fence_every) {
                fence_id += 1;
                tx.send(StreamFrame::Fence(fence_id))
                    .expect("daemon owns the receiver");
            }
        }
        if config.evict_mid_stream && !evicted && round >= total_rounds / 2 {
            for name in &names {
                daemon.evict(name)?;
            }
            evicted = true;
        }
        steps += daemon.run_until_quiescent()?;
        if !sent_any {
            break;
        }
    }

    let mut sessions = Vec::new();
    for name in &names {
        let replayed = daemon.replay_standalone(name)?;
        let hosted = daemon.session_mut(name)?;
        let identical = hosted.state_digest() == replayed.state_digest()
            && hosted.matches() == replayed.matches();
        let final_matches = hosted.matches().len() as u64;
        let stats = daemon.stats(name).expect("admitted above").clone();
        let (p50, p99) = staleness_percentiles(&stats.staleness_samples_ms);
        sessions.push(SessionLoadStats {
            name: name.clone(),
            identical,
            batches: stats.batches,
            frames_applied: stats.frames_applied,
            coalesced_frames: stats.coalesced_frames,
            shed_events: stats.shed_events,
            budget_misses: stats.budget_misses,
            degraded_to_cold: stats.degraded_to_cold,
            overload_degrades: stats.overload_degrades,
            staleness_p50_ms: p50,
            staleness_p99_ms: p99,
            final_matches,
        });
    }
    Ok(LoadOutcome {
        sessions_identical: sessions.iter().all(|s| s.identical),
        staleness_budget_met: sessions.iter().all(|s| s.budget_misses == 0),
        dead_letters: daemon.dead_letters(),
        steps,
        sessions,
    })
}
