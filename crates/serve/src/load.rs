//! The serve-load driver: push scripted traffic through a [`Daemon`]
//! and verify the serving layer changed nothing.
//!
//! [`run_load`] takes per-session traffic (an initial dataset plus a
//! delta script — the caller generates these however it likes, e.g.
//! [`em::DatasetDelta::churn_script_with`] over a datagen world),
//! interleaves the scripts round-robin onto an in-process change
//! stream with periodic fences, and alternates traffic bursts with
//! daemon drain cycles so queues actually build depth (that is what
//! exercises coalescing and, with a small [`ServeConfig::max_pending`],
//! the shed path). Optionally every durable session is evicted and
//! revived mid-stream.
//!
//! **Fault injection.** With [`LoadConfig::kill_every`] set, every Nth
//! burst is sent and then the daemon is *hard-dropped* — no
//! checkpoint, the burst still undelivered in the dying change
//! stream. A fresh daemon is rebuilt over the same `store_root`, every
//! session re-admitted (recovering snapshot + WAL tail), the recovered
//! digests compared against digests captured at the instant of death
//! ([`LoadOutcome::crash_recovery_identical`]), and the lost burst
//! resent by the producer — the at-least-once contract a real client
//! follows after a connection drop.
//!
//! When the stream is drained it runs the identity arm: each hosted
//! session is compared on [`em::MatchSession::state_digest`] and on
//! the match set against a standalone session replaying the
//! *cumulative* [`Op`] log (across every daemon incarnation). The
//! resulting [`LoadOutcome`] is what the `serve_load` binary prints and
//! what CI gates on (`sessions_identical`, `staleness_budget_met`,
//! `crash_recovery_identical`).

use crate::daemon::{Daemon, Op, ServeConfig, ServeError, SessionStats};
use crate::sched::staleness_percentiles;
use crate::source::channel_source;
use crate::wire::StreamFrame;
use em::{DatasetDelta, MatchSession, Pipeline};
use em_core::Dataset;
use std::collections::BTreeMap;

/// One session's scripted traffic.
pub struct SessionTraffic {
    /// Session name on the stream.
    pub name: String,
    /// The dataset the session is admitted with.
    pub initial: Dataset,
    /// The delta script to stream at it, in order.
    pub deltas: Vec<DatasetDelta>,
}

/// Knobs of [`run_load`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon tuning (queue caps, staleness budgets, LRU cap, store
    /// root).
    pub serve: ServeConfig,
    /// Broadcast a fence every this many traffic rounds (0 = never).
    pub fence_every: usize,
    /// Rounds (one delta per session each) sent before the daemon gets
    /// to drain — the queue depth the batcher sees.
    pub rounds_per_burst: usize,
    /// Evict every session once, halfway through the stream (requires
    /// [`ServeConfig::store_root`]).
    pub evict_mid_stream: bool,
    /// Hard-drop and rebuild the daemon after every Nth burst (0 =
    /// never; requires [`ServeConfig::store_root`]). See the [module
    /// docs](self).
    pub kill_every: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            fence_every: 4,
            rounds_per_burst: 4,
            evict_mid_stream: false,
            kill_every: 0,
        }
    }
}

/// One session's verdict and counters after a load run.
#[derive(Debug, Clone)]
pub struct SessionLoadStats {
    /// Session name.
    pub name: String,
    /// Daemon-hosted state digest == standalone op-log replay digest,
    /// and the match sets agree.
    pub identical: bool,
    /// Micro-batches applied.
    pub batches: u64,
    /// Delta frames consumed.
    pub frames_applied: u64,
    /// Frames folded away by coalescing.
    pub coalesced_frames: u64,
    /// Backpressure sheds.
    pub shed_events: u64,
    /// Frames serviced past the session's staleness budget.
    pub budget_misses: u64,
    /// Updates that degraded to cold.
    pub degraded_to_cold: u64,
    /// Overload-caused degrades among them.
    pub overload_degrades: u64,
    /// Times the LRU policy evicted the session.
    pub lru_evictions: u64,
    /// Times the session was revived from its store.
    pub revivals: u64,
    /// Median queue-head age at service, milliseconds.
    pub staleness_p50_ms: f64,
    /// 99th-percentile queue-head age at service, milliseconds.
    pub staleness_p99_ms: f64,
    /// Final fixpoint size.
    pub final_matches: u64,
}

/// Whole-run verdict: per-session stats plus the gates CI greps for.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// Per-session stats, in admission order.
    pub sessions: Vec<SessionLoadStats>,
    /// Every session passed the replay-identity check.
    pub sessions_identical: bool,
    /// No session missed the staleness budget.
    pub staleness_budget_met: bool,
    /// Daemon incarnations killed and rebuilt by fault injection.
    pub crash_recoveries: u64,
    /// Every crash recovery landed on the pre-kill state digest (true
    /// when no kills were injected).
    pub crash_recovery_identical: bool,
    /// LRU evictions across all sessions.
    pub lru_evictions: u64,
    /// Frames addressed to unknown sessions.
    pub dead_letters: u64,
    /// Daemon steps taken.
    pub steps: u64,
}

fn fold_stats(into: &mut SessionStats, from: &SessionStats) {
    into.batches += from.batches;
    into.frames_applied += from.frames_applied;
    into.coalesced_frames += from.coalesced_frames;
    into.shed_events += from.shed_events;
    into.budget_misses += from.budget_misses;
    into.degraded_to_cold += from.degraded_to_cold;
    into.overload_degrades += from.overload_degrades;
    into.lru_evictions += from.lru_evictions;
    into.revivals += from.revivals;
    into.staleness_samples_ms
        .extend_from_slice(&from.staleness_samples_ms);
}

/// Name the digest sections (and match-set delta) on which a hosted
/// session disagrees with its standalone replay — the identity
/// verdict stays a boolean, but a failure should say *where*.
fn report_divergence(name: &str, hosted: &MatchSession, replayed: &MatchSession) {
    let hosted_digest = hosted.state_digest();
    let replayed_digest = replayed.state_digest();
    for (h, r) in hosted_digest.split(' ').zip(replayed_digest.split(' ')) {
        if h != r {
            eprintln!("  session {name} diverged: hosted {h} != replay {r}");
        }
    }
    let only_hosted = hosted.matches().difference(replayed.matches()).len();
    let only_replay = replayed.matches().difference(hosted.matches()).len();
    if only_hosted + only_replay > 0 {
        eprintln!(
            "  session {name} diverged: {only_hosted} match(es) only hosted, \
             {only_replay} only replay"
        );
    }
}

fn replay_ops<F>(make: &F, initial: &Dataset, ops: &[Op]) -> Result<MatchSession, ServeError>
where
    F: Fn(Dataset) -> Pipeline,
{
    let mut session = make(initial.clone()).build()?;
    for op in ops {
        match op {
            Op::Update(delta) => {
                session.update(delta);
            }
            Op::ResetWarm => session.reset_warm(),
            Op::Run => {
                session.run();
            }
        }
    }
    Ok(session)
}

/// Drive `traffic` through a fresh daemon and verify it (see the
/// [module docs](self)). `make` builds each session's [`Pipeline`]
/// from its initial dataset — the same configuration the identity arm
/// rebuilds for replay, so it must be deterministic and must not
/// attach a store (the daemon does that when configured).
pub fn run_load<F>(
    traffic: Vec<SessionTraffic>,
    config: &LoadConfig,
    make: F,
) -> Result<LoadOutcome, ServeError>
where
    F: Fn(Dataset) -> Pipeline + Clone + Send + 'static,
{
    if config.kill_every > 0 && config.serve.store_root.is_none() {
        // A killed daemon can only be rebuilt from durable stores.
        return Err(ServeError::NotDurable("kill_every traffic".to_owned()));
    }

    let mut initials: BTreeMap<String, Dataset> = BTreeMap::new();
    let mut names = Vec::new();
    let mut scripts = Vec::new();
    let total_rounds = traffic.iter().map(|t| t.deltas.len()).max().unwrap_or(0);
    for t in &traffic {
        initials.insert(t.name.clone(), t.initial.clone());
        names.push(t.name.clone());
    }
    for t in traffic {
        scripts.push((t.name, t.deltas.into_iter()));
    }

    let admit_all = |daemon: &mut Daemon<crate::source::ChannelSource>| -> Result<(), ServeError> {
        for name in &names {
            let make = make.clone();
            let initial = initials[name].clone();
            daemon.admit(name, move || make(initial.clone()))?;
        }
        Ok(())
    };

    let (mut tx, source) = channel_source();
    let mut daemon = Daemon::new(source, config.serve.clone());
    admit_all(&mut daemon)?;

    // Counters and op logs harvested from incarnations that were
    // killed; the final identity arm replays the cumulative history.
    let mut base_stats: BTreeMap<String, SessionStats> = BTreeMap::new();
    let mut prefix_ops: BTreeMap<String, Vec<Op>> = BTreeMap::new();
    let mut base_dead_letters = 0u64;
    let mut crash_recoveries = 0u64;
    let mut crash_recovery_identical = true;

    let mut steps = 0;
    let mut round = 0usize;
    let mut fence_id = 0u64;
    let mut bursts = 0usize;
    let mut evicted = false;
    loop {
        let mut sent_any = false;
        let mut burst: Vec<StreamFrame> = Vec::new();
        for _ in 0..config.rounds_per_burst.max(1) {
            for (name, script) in &mut scripts {
                if let Some(delta) = script.next() {
                    burst.push(StreamFrame::Delta {
                        session: name.clone(),
                        delta: Box::new(delta),
                    });
                    sent_any = true;
                }
            }
            round += 1;
            if config.fence_every > 0 && round.is_multiple_of(config.fence_every) {
                fence_id += 1;
                burst.push(StreamFrame::Fence(fence_id));
            }
        }
        for frame in &burst {
            tx.send(frame.clone()).expect("daemon owns the receiver");
        }
        bursts += 1;

        if config.kill_every > 0 && sent_any && bursts.is_multiple_of(config.kill_every) {
            // The channel daemon applies frames only while draining, so
            // the burst just sent is provably unapplied: it dies with
            // the daemon and the producer resends it — at-least-once,
            // with the resend landing exactly once.
            let mut death_digests = BTreeMap::new();
            for name in &names {
                death_digests.insert(name.clone(), daemon.session_mut(name)?.state_digest());
                let stats = daemon.stats(name).expect("admitted").clone();
                fold_stats(base_stats.entry(name.clone()).or_default(), &stats);
                prefix_ops
                    .entry(name.clone())
                    .or_default()
                    .extend_from_slice(daemon.op_log(name).expect("admitted"));
            }
            base_dead_letters += daemon.dead_letters();
            drop(daemon);
            drop(tx);
            crash_recoveries += 1;

            let (new_tx, source) = channel_source();
            tx = new_tx;
            daemon = Daemon::new(source, config.serve.clone());
            admit_all(&mut daemon)?;
            for name in &names {
                if daemon.session_mut(name)?.state_digest() != death_digests[name] {
                    crash_recovery_identical = false;
                }
            }
            for frame in &burst {
                tx.send(frame.clone()).expect("daemon owns the receiver");
            }
        }

        if config.evict_mid_stream && !evicted && round >= total_rounds / 2 {
            for name in &names {
                daemon.evict(name)?;
            }
            evicted = true;
        }
        steps += daemon.run_until_quiescent()?;
        if !sent_any {
            break;
        }
    }

    let mut sessions = Vec::new();
    for name in &names {
        let mut ops = prefix_ops.remove(name).unwrap_or_default();
        ops.extend_from_slice(daemon.op_log(name).expect("admitted above"));
        let replayed = replay_ops(&make, &initials[name], &ops)?;
        let hosted = daemon.session_mut(name)?;
        let identical = hosted.state_digest() == replayed.state_digest()
            && hosted.matches() == replayed.matches();
        if !identical {
            report_divergence(name, hosted, &replayed);
        }
        let final_matches = hosted.matches().len() as u64;
        let mut stats = base_stats.remove(name).unwrap_or_default();
        fold_stats(&mut stats, daemon.stats(name).expect("admitted above"));
        let (p50, p99) = staleness_percentiles(&stats.staleness_samples_ms);
        sessions.push(SessionLoadStats {
            name: name.clone(),
            identical,
            batches: stats.batches,
            frames_applied: stats.frames_applied,
            coalesced_frames: stats.coalesced_frames,
            shed_events: stats.shed_events,
            budget_misses: stats.budget_misses,
            degraded_to_cold: stats.degraded_to_cold,
            overload_degrades: stats.overload_degrades,
            lru_evictions: stats.lru_evictions,
            revivals: stats.revivals,
            staleness_p50_ms: p50,
            staleness_p99_ms: p99,
            final_matches,
        });
    }
    Ok(LoadOutcome {
        sessions_identical: sessions.iter().all(|s| s.identical),
        staleness_budget_met: sessions.iter().all(|s| s.budget_misses == 0),
        crash_recoveries,
        crash_recovery_identical,
        lru_evictions: sessions.iter().map(|s| s.lru_evictions).sum(),
        dead_letters: base_dead_letters + daemon.dead_letters(),
        steps,
        sessions,
    })
}
