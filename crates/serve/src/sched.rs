//! Freshness-aware scheduling: which session's backlog to service next.
//!
//! The daemon serves N sessions from one apply loop, so scheduling is a
//! freshness-vs-throughput trade: a session with a deep queue wants
//! service for throughput, a session with an *old* queue wants service
//! before it blows its staleness budget, and a session whose updates
//! are cheap gives more freshness per unit of apply time. Each
//! schedulable session is summarized as a [`SessionView`] and scored
//!
//! ```text
//! score = (pending + oldest_age_ms / staleness_budget_ms) / max(cost_ema_ms, 1)
//! ```
//!
//! — pending frames count linearly (throughput pressure), queue age in
//! units of the staleness budget (a session one full budget behind
//! outranks a session with one extra frame), and the measured
//! per-batch cost EMA divides (cheap sessions are serviced more often;
//! an expensive session cannot starve the fleet). Ties break on the
//! session name, so a given queue state always schedules identically —
//! the replay-identity gate depends on that determinism.

/// One session's scheduling summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionView {
    /// Session name (the deterministic tiebreak key).
    pub name: String,
    /// Delta frames waiting in the session's queue.
    pub pending: usize,
    /// Age of the oldest queued frame, in milliseconds.
    pub oldest_age_ms: f64,
    /// Exponential moving average of the session's batch apply+run
    /// cost, in milliseconds (see [`update_cost_ema`]).
    pub cost_ema_ms: f64,
}

/// The freshness-per-cost score of one session (see the [module
/// docs](self)). Sessions with nothing pending score zero.
pub fn score(view: &SessionView, staleness_budget_ms: f64) -> f64 {
    if view.pending == 0 {
        return 0.0;
    }
    let staleness = view.pending as f64 + view.oldest_age_ms / staleness_budget_ms.max(1.0);
    staleness / view.cost_ema_ms.max(1.0)
}

/// Pick the session to service next: highest [`score`], ties broken by
/// ascending name. Returns `None` when no session has pending work.
pub fn pick_next<'a>(
    views: impl IntoIterator<Item = &'a SessionView>,
    staleness_budget_ms: f64,
) -> Option<&'a str> {
    views
        .into_iter()
        .filter(|v| v.pending > 0)
        .max_by(|a, b| {
            score(a, staleness_budget_ms)
                .total_cmp(&score(b, staleness_budget_ms))
                // `max_by` keeps the *last* maximum, so order name
                // descending to make the lexicographically smallest
                // name win ties.
                .then_with(|| b.name.cmp(&a.name))
        })
        .map(|v| v.name.as_str())
}

/// Fold one measured batch cost into a session's cost EMA
/// (`alpha = 0.3`; the first sample seeds the average).
pub fn update_cost_ema(ema_ms: &mut f64, sample_ms: f64) {
    if *ema_ms <= 0.0 {
        *ema_ms = sample_ms;
    } else {
        *ema_ms = 0.7 * *ema_ms + 0.3 * sample_ms;
    }
}

/// The p50 and p99 of a set of staleness samples, by
/// nearest-rank on the sorted samples. Returns `(0.0, 0.0)` for an
/// empty set.
pub fn staleness_percentiles(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = |q: f64| {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    (rank(0.50), rank(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(name: &str, pending: usize, age: f64, cost: f64) -> SessionView {
        SessionView {
            name: name.to_owned(),
            pending,
            oldest_age_ms: age,
            cost_ema_ms: cost,
        }
    }

    #[test]
    fn deeper_and_older_queues_win_cheaper_sessions_win() {
        let budget = 100.0;
        let views = [view("a", 1, 0.0, 10.0), view("b", 4, 0.0, 10.0)];
        assert_eq!(pick_next(&views, budget), Some("b"), "depth wins");

        let views = [view("a", 2, 300.0, 10.0), view("b", 4, 0.0, 10.0)];
        assert_eq!(
            pick_next(&views, budget),
            Some("a"),
            "age in budget units wins"
        );

        let views = [view("a", 2, 0.0, 100.0), view("b", 2, 0.0, 5.0)];
        assert_eq!(pick_next(&views, budget), Some("b"), "cheap sessions win");
    }

    #[test]
    fn ties_break_lexicographically_and_idle_sessions_never_schedule() {
        let budget = 100.0;
        let views = [
            view("zeta", 2, 0.0, 10.0),
            view("alpha", 2, 0.0, 10.0),
            view("midl", 0, 900.0, 1.0),
        ];
        assert_eq!(pick_next(&views, budget), Some("alpha"));
        assert_eq!(pick_next(&[] as &[SessionView], budget), None);
        assert_eq!(pick_next(&[view("idle", 0, 0.0, 1.0)], budget), None);
    }

    #[test]
    fn cost_ema_seeds_then_smooths() {
        let mut ema = 0.0;
        update_cost_ema(&mut ema, 10.0);
        assert_eq!(ema, 10.0);
        update_cost_ema(&mut ema, 20.0);
        assert!((ema - 13.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(staleness_percentiles(&[]), (0.0, 0.0));
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (p50, p99) = staleness_percentiles(&samples);
        assert_eq!(p50, 50.0);
        assert_eq!(p99, 99.0);
    }
}
