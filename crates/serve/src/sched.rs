//! Freshness-aware scheduling: which session's backlog to service next.
//!
//! The daemon admits batches for N sessions, so scheduling is a
//! freshness-vs-throughput trade: a session with a deep queue wants
//! service for throughput, a session with an *old* queue wants service
//! before it blows its staleness budget, and a session whose updates
//! are cheap gives more freshness per unit of apply time. Each
//! schedulable session is summarized as a [`SessionView`] and scored
//!
//! ```text
//! score = (pending + oldest_age_ms / budget_ms) / max(cost_est_ms, 1)
//! ```
//!
//! — pending frames count linearly (throughput pressure), queue age in
//! units of the *session's own* staleness budget (a session one full
//! budget behind outranks a session with one extra frame, and a session
//! admitted with a tight SLO ages faster in score terms than a lax
//! one), and a predicted batch cost divides (cheap batches are serviced
//! more often; an expensive session cannot starve the fleet). Ties
//! break on the session name, so a given queue state always schedules
//! identically — the replay-identity gate depends on that determinism.
//!
//! The cost prediction comes from a [`CostModel`]: one EMA per
//! batch-size bucket rather than one EMA per session. A session that
//! just absorbed an expensive 8-frame shed does not get its 1-frame
//! trickle updates priced (and deprioritized) at shed cost — small
//! batches are estimated from small-batch history.

/// One session's scheduling summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionView {
    /// Session name (the deterministic tiebreak key).
    pub name: String,
    /// Delta frames waiting in the session's queue.
    pub pending: usize,
    /// Age of the oldest queued frame, in milliseconds.
    pub oldest_age_ms: f64,
    /// Predicted cost of the batch the session would run next, in
    /// milliseconds (see [`CostModel::estimate`]).
    pub cost_est_ms: f64,
    /// The session's staleness budget
    /// ([`crate::ServeConfig::budget_for`]), in milliseconds.
    pub budget_ms: f64,
}

/// The freshness-per-cost score of one session (see the [module
/// docs](self)). Sessions with nothing pending score zero.
pub fn score(view: &SessionView) -> f64 {
    if view.pending == 0 {
        return 0.0;
    }
    let staleness = view.pending as f64 + view.oldest_age_ms / view.budget_ms.max(1.0);
    staleness / view.cost_est_ms.max(1.0)
}

/// Pick the session to service next: highest [`score`], ties broken by
/// ascending name. Returns `None` when no session has pending work.
pub fn pick_next<'a>(views: impl IntoIterator<Item = &'a SessionView>) -> Option<&'a str> {
    views
        .into_iter()
        .filter(|v| v.pending > 0)
        .max_by(|a, b| {
            score(a)
                .total_cmp(&score(b))
                // `max_by` keeps the *last* maximum, so order name
                // descending to make the lexicographically smallest
                // name win ties.
                .then_with(|| b.name.cmp(&a.name))
        })
        .map(|v| v.name.as_str())
}

/// Fold one measured batch cost into a cost EMA (`alpha = 0.3`; the
/// first sample seeds the average).
pub fn update_cost_ema(ema_ms: &mut f64, sample_ms: f64) {
    if *ema_ms <= 0.0 {
        *ema_ms = sample_ms;
    } else {
        *ema_ms = 0.7 * *ema_ms + 0.3 * sample_ms;
    }
}

/// Per-session batch-cost model: one [`update_cost_ema`] EMA per
/// batch-size bucket (1 / 2–3 / 4–7 / 8+ frames).
///
/// Batch apply cost scales with batch size, so a single per-session
/// EMA systematically mis-prices whichever size comes next after a
/// shift in traffic shape. Bucketing by size keeps a cheap trickle
/// batch from inheriting the EMA of an expensive backlog shed (and
/// vice versa). Estimating a size never seen falls back to the nearest
/// seeded bucket; a model with no history estimates `0.0`, which
/// [`score`] clamps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostModel {
    buckets: [f64; CostModel::BUCKETS],
}

impl CostModel {
    /// Number of batch-size buckets.
    pub const BUCKETS: usize = 4;

    /// The bucket index of a batch of `frames` delta frames.
    pub fn bucket(frames: usize) -> usize {
        match frames {
            0..=1 => 0,
            2..=3 => 1,
            4..=7 => 2,
            _ => 3,
        }
    }

    /// Fold one measured batch cost into the bucket for its size.
    pub fn observe(&mut self, frames: usize, cost_ms: f64) {
        update_cost_ema(&mut self.buckets[Self::bucket(frames)], cost_ms);
    }

    /// Predicted cost of a batch of `frames` frames: the bucket's EMA,
    /// or the nearest seeded bucket's when that size has no history
    /// yet, or `0.0` when nothing was ever observed.
    pub fn estimate(&self, frames: usize) -> f64 {
        let want = Self::bucket(frames);
        if self.buckets[want] > 0.0 {
            return self.buckets[want];
        }
        (0..Self::BUCKETS)
            .filter(|&b| self.buckets[b] > 0.0)
            .min_by_key(|&b| b.abs_diff(want))
            .map(|b| self.buckets[b])
            .unwrap_or(0.0)
    }
}

/// The p50 and p99 of a set of staleness samples, by
/// nearest-rank on the sorted samples. Returns `(0.0, 0.0)` for an
/// empty set.
pub fn staleness_percentiles(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = |q: f64| {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    (rank(0.50), rank(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(name: &str, pending: usize, age: f64, cost: f64) -> SessionView {
        SessionView {
            name: name.to_owned(),
            pending,
            oldest_age_ms: age,
            cost_est_ms: cost,
            budget_ms: 100.0,
        }
    }

    #[test]
    fn deeper_and_older_queues_win_cheaper_sessions_win() {
        let views = [view("a", 1, 0.0, 10.0), view("b", 4, 0.0, 10.0)];
        assert_eq!(pick_next(&views), Some("b"), "depth wins");

        let views = [view("a", 2, 300.0, 10.0), view("b", 4, 0.0, 10.0)];
        assert_eq!(pick_next(&views), Some("a"), "age in budget units wins");

        let views = [view("a", 2, 0.0, 100.0), view("b", 2, 0.0, 5.0)];
        assert_eq!(pick_next(&views), Some("b"), "cheap sessions win");
    }

    #[test]
    fn ties_break_lexicographically_and_idle_sessions_never_schedule() {
        let views = [
            view("zeta", 2, 0.0, 10.0),
            view("alpha", 2, 0.0, 10.0),
            view("midl", 0, 900.0, 1.0),
        ];
        assert_eq!(pick_next(&views), Some("alpha"));
        assert_eq!(pick_next(&[] as &[SessionView]), None);
        assert_eq!(pick_next(&[view("idle", 0, 0.0, 1.0)]), None);
    }

    #[test]
    fn tighter_budget_ages_faster_in_score() {
        // Same queue state; the session admitted with the tighter SLO
        // must win because its age counts for more budget units.
        let tight = SessionView {
            budget_ms: 50.0,
            ..view("tight", 2, 200.0, 10.0)
        };
        let lax = SessionView {
            budget_ms: 1_000.0,
            ..view("lax", 2, 200.0, 10.0)
        };
        assert_eq!(pick_next(&[lax, tight]), Some("tight"));
    }

    #[test]
    fn cost_ema_seeds_then_smooths() {
        let mut ema = 0.0;
        update_cost_ema(&mut ema, 10.0);
        assert_eq!(ema, 10.0);
        update_cost_ema(&mut ema, 20.0);
        assert!((ema - 13.0).abs() < 1e-9);
    }

    #[test]
    fn small_batches_do_not_inherit_large_batch_cost() {
        // The satellite claim: after an expensive 8-frame shed, a
        // 1-frame trickle batch is still priced from 1-frame history,
        // not at shed cost.
        let mut model = CostModel::default();
        model.observe(1, 5.0);
        model.observe(8, 400.0);
        assert_eq!(model.estimate(1), 5.0);
        assert_eq!(model.estimate(8), 400.0);
        // And scheduling feels it: a cheap trickle session outranks an
        // equally-backed-up session whose next batch is big.
        let trickle = SessionView {
            name: "trickle".into(),
            pending: 1,
            oldest_age_ms: 0.0,
            cost_est_ms: model.estimate(1),
            budget_ms: 100.0,
        };
        let bulk = SessionView {
            name: "bulk".into(),
            cost_est_ms: model.estimate(8),
            ..trickle.clone()
        };
        assert_eq!(pick_next(&[trickle, bulk]), Some("trickle"));
    }

    #[test]
    fn cost_model_falls_back_to_nearest_seeded_bucket() {
        let mut model = CostModel::default();
        assert_eq!(model.estimate(3), 0.0, "no history estimates zero");
        model.observe(8, 100.0);
        assert_eq!(model.estimate(1), 100.0, "only seeded bucket wins");
        model.observe(1, 4.0);
        assert_eq!(model.estimate(2), 4.0, "bucket 1 is nearer bucket 0");
        assert_eq!(model.estimate(5), 100.0, "bucket 2 is nearer bucket 3");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(staleness_percentiles(&[]), (0.0, 0.0));
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (p50, p99) = staleness_percentiles(&samples);
        assert_eq!(p50, 50.0);
        assert_eq!(p99, 99.0);
    }
}
