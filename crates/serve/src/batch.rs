//! Micro-batch coalescing: folding queued [`DatasetDelta`]s into fewer,
//! larger deltas without changing what the session ends up seeing.
//!
//! A hosted session's queue holds deltas in arrival order. Applying
//! each one through [`em::MatchSession::update`] pays per-delta costs
//! (re-blocking, rollback scoping) that coalescing amortizes — but two
//! deltas may only be folded together when applying the merged delta
//! yields the **same dataset** as applying them back to back. The apply
//! order inside one delta (all retractions, then all additions — see
//! [`em::DatasetDelta::apply`]) makes that non-trivial: a retraction in
//! the second delta of something the first delta *added* would reorder
//! ahead of the addition. [`merge_compatible`] is the conservative gate
//! (false negatives only cost a smaller batch, never correctness):
//!
//! 1. every entity id `next`'s *retractions* target predates the batch
//!    floor (a merged delta applies retractions first, so it cannot
//!    retract what it adds), and every [`GrowthRef::Existing`] id in
//!    `next`'s *additions* is either below the floor or one of `base`'s
//!    own new entities — fresh ids are assigned in batch order, so
//!    `Existing(floor + i)` is exactly `base`'s `New(i)` and [`merge`]
//!    rewrites it to that index (the common producer pattern "the
//!    entity I just streamed got id X, now link to it" stays
//!    coalescible);
//! 2. `next` retracts no entity that `base`'s additions or retractions
//!    touch (the merged delta would purge it before `base`'s mutations
//!    see it), and `base` retracts no entity `next`'s additions
//!    reference;
//! 3. `next` retracts no tuple or candidate link that `base` adds
//!    between pre-existing entities (retract-before-add would invert
//!    the net effect).
//!
//! [`merge`] rebases `next`'s [`GrowthRef::New`] indices past `base`'s
//! additions, so fresh ids are assigned in exactly the order the
//! sequential applies would have assigned them (ids are never reused,
//! so the id streams coincide).

use em::{DatasetDelta, GrowthRef};
use em_core::EntityId;
use std::collections::HashSet;

fn existing_id(r: &GrowthRef) -> Option<EntityId> {
    match r {
        GrowthRef::Existing(id) => Some(*id),
        GrowthRef::New(_) => None,
    }
}

/// Every pre-existing entity id a delta references in *additions*
/// (tuple and link endpoints).
fn existing_add_refs(delta: &DatasetDelta) -> impl Iterator<Item = EntityId> + '_ {
    delta
        .add_tuples
        .iter()
        .flat_map(|t| [existing_id(&t.a), existing_id(&t.b)])
        .chain(
            delta
                .add_links
                .iter()
                .flat_map(|(a, b, _)| [existing_id(a), existing_id(b)]),
        )
        .flatten()
}

/// Every entity id a delta's *retractions* name (entities, tuple
/// endpoints, link endpoints).
fn retract_refs(delta: &DatasetDelta) -> impl Iterator<Item = EntityId> + '_ {
    delta
        .retract_entities
        .iter()
        .copied()
        .chain(delta.retract_tuples.iter().flat_map(|t| [t.a, t.b]))
        .chain(delta.retract_links.iter().flat_map(|p| p.endpoints()))
}

/// Whether `next` may be folded into `base` given that the merged delta
/// will be applied to a dataset whose entity-id space ends at `floor`
/// (see the [module docs](self) for the three conditions).
pub fn merge_compatible(base: &DatasetDelta, next: &DatasetDelta, floor: u32) -> bool {
    // (1) retractions only target ids that exist at batch start;
    // addition refs may also name `base`'s own new entities (rewritten
    // to `New` indices by `merge`).
    let add_ceiling = floor + base.add_entities.len() as u32;
    if !existing_add_refs(next).all(|id| id.0 < add_ceiling)
        || !retract_refs(next).all(|id| id.0 < floor)
    {
        return false;
    }

    // (2) entity-level interference between the two deltas.
    let base_retracts: HashSet<EntityId> = base.retract_entities.iter().copied().collect();
    if existing_add_refs(next).any(|id| base_retracts.contains(&id)) {
        return false;
    }
    let base_touches: HashSet<EntityId> =
        existing_add_refs(base).chain(retract_refs(base)).collect();
    if next
        .retract_entities
        .iter()
        .any(|id| base_touches.contains(id))
    {
        return false;
    }

    // (3) `next` must not retract a tuple or link `base` adds between
    // pre-existing entities.
    let base_added_tuples: HashSet<(&str, EntityId, EntityId)> = base
        .add_tuples
        .iter()
        .filter_map(|t| {
            let (a, b) = (existing_id(&t.a)?, existing_id(&t.b)?);
            Some((t.relation.as_str(), a.min(b), a.max(b)))
        })
        .collect();
    if next
        .retract_tuples
        .iter()
        .any(|t| base_added_tuples.contains(&(t.relation.as_str(), t.a.min(t.b), t.a.max(t.b))))
    {
        return false;
    }
    let base_added_links: HashSet<(EntityId, EntityId)> = base
        .add_links
        .iter()
        .filter_map(|(a, b, _)| {
            let (a, b) = (existing_id(a)?, existing_id(b)?);
            Some((a.min(b), a.max(b)))
        })
        .collect();
    !next
        .retract_links
        .iter()
        .any(|p| base_added_links.contains(&(p.lo(), p.hi())))
}

/// Fold `next` into `base` (caller must have checked
/// [`merge_compatible`] with the same `floor`): vocabulary lists are
/// unioned, `next`'s [`GrowthRef::New`] indices are rebased past
/// `base`'s additions, `next`'s [`GrowthRef::Existing`] references to
/// entities `base` creates are rewritten to `base`'s `New` indices,
/// and all mutation lists concatenate in order.
pub fn merge(base: &mut DatasetDelta, next: &DatasetDelta, floor: u32) {
    for ty in &next.types {
        if !base.types.contains(ty) {
            base.types.push(ty.clone());
        }
    }
    for attr in &next.attrs {
        if !base.attrs.contains(attr) {
            base.attrs.push(attr.clone());
        }
    }
    for rel in &next.relations {
        if !base.relations.iter().any(|(name, _)| name == &rel.0) {
            base.relations.push(rel.clone());
        }
    }

    let by = base.add_entities.len();
    let rebase = |r: &GrowthRef| match *r {
        // An id `base` assigned: fresh ids land in batch order, so
        // `floor + i` is `base`'s i-th new entity.
        GrowthRef::Existing(id) if id.0 >= floor => GrowthRef::New((id.0 - floor) as usize),
        GrowthRef::Existing(id) => GrowthRef::Existing(id),
        GrowthRef::New(i) => GrowthRef::New(i + by),
    };
    base.add_entities.extend(next.add_entities.iter().cloned());
    base.add_tuples.extend(next.add_tuples.iter().map(|t| {
        let mut t = t.clone();
        t.a = rebase(&t.a);
        t.b = rebase(&t.b);
        t
    }));
    base.add_links.extend(
        next.add_links
            .iter()
            .map(|(a, b, level)| (rebase(a), rebase(b), *level)),
    );
    base.retract_entities
        .extend(next.retract_entities.iter().copied());
    base.retract_tuples
        .extend(next.retract_tuples.iter().cloned());
    base.retract_links
        .extend(next.retract_links.iter().copied());
}

/// Greedily coalesce a batch of deltas: each frame folds into the
/// current group when [`merge_compatible`] allows it, otherwise starts
/// a new group. `floor` is the dataset's entity-id-space size
/// ([`em_core::EntityStore::len`]) when the batch starts; it advances
/// past each flushed group's additions because those ids are assigned
/// before the next group applies.
///
/// The output applied sequentially yields the same dataset as the input
/// applied sequentially; `input.len() - output.len()` frames were
/// coalesced away.
pub fn coalesce(frames: Vec<DatasetDelta>, floor: u32) -> Vec<DatasetDelta> {
    let mut out: Vec<DatasetDelta> = Vec::new();
    let mut bound = floor;
    for frame in frames {
        match out.last_mut() {
            Some(group) if merge_compatible(group, &frame, bound) => merge(group, &frame, bound),
            _ => {
                if let Some(done) = out.last() {
                    bound += done.add_entities.len() as u32;
                }
                out.push(frame);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{Dataset, Pair, SimLevel};

    /// A small base dataset plus a helper for comparing apply outcomes.
    fn base_dataset() -> Dataset {
        let mut seed = DatasetDelta::new();
        let ids: Vec<GrowthRef> = (0..6)
            .map(|i| seed.add_entity("paper", &[("title", &format!("t{i}"))]))
            .collect();
        for w in ids.windows(2) {
            seed.add_tuple("cites", false, w[0], w[1]);
        }
        seed.add_link(ids[0], ids[2], SimLevel(1));
        seed.add_link(ids[1], ids[3], SimLevel(2));
        let mut dataset = Dataset::new();
        seed.apply(&mut dataset);
        dataset
    }

    fn fingerprint(dataset: &Dataset) -> (usize, usize, Vec<(Pair, SimLevel)>) {
        let mut pairs: Vec<_> = dataset.candidate_pairs().collect();
        pairs.sort();
        (dataset.entities.len(), dataset.entities.live_count(), pairs)
    }

    fn assert_equivalent(frames: Vec<DatasetDelta>) {
        let mut sequential = base_dataset();
        for f in &frames {
            f.apply(&mut sequential);
        }
        let mut merged = base_dataset();
        let floor = merged.entities.len() as u32;
        let groups = coalesce(frames, floor);
        for g in &groups {
            g.apply(&mut merged);
        }
        assert_eq!(fingerprint(&sequential), fingerprint(&merged));
    }

    #[test]
    fn disjoint_growth_coalesces_into_one_group() {
        let mut a = DatasetDelta::new();
        let n = a.add_entity("paper", &[("title", "new-a")]);
        a.add_link(GrowthRef::Existing(EntityId(0)), n, SimLevel(1));
        let mut b = DatasetDelta::new();
        let n = b.add_entity("paper", &[("title", "new-b")]);
        b.add_link(GrowthRef::Existing(EntityId(4)), n, SimLevel(2));
        b.add_tuple("cites", false, n, GrowthRef::Existing(EntityId(5)));

        let groups = coalesce(vec![a.clone(), b.clone()], 6);
        assert_eq!(groups.len(), 1, "compatible deltas fold into one");
        assert_eq!(groups[0].add_entities.len(), 2);
        assert_equivalent(vec![a, b]);
    }

    #[test]
    fn reference_to_a_just_added_entity_rewrites_and_merges() {
        let mut a = DatasetDelta::new();
        a.add_entity("paper", &[("title", "fresh")]);
        // The producer saw the fresh entity get id 6 and linked to it:
        // inside the merged batch that id becomes base's New(0).
        let mut b = DatasetDelta::new();
        b.add_link(
            GrowthRef::Existing(EntityId(6)),
            GrowthRef::Existing(EntityId(0)),
            SimLevel(1),
        );
        let groups = coalesce(vec![a.clone(), b.clone()], 6);
        assert_eq!(groups.len(), 1, "forward references rewrite to New");
        assert!(matches!(
            groups[0].add_links[0],
            (GrowthRef::New(0), GrowthRef::Existing(EntityId(0)), _)
        ));
        assert_equivalent(vec![a.clone(), b]);

        // Retracting the just-added entity cannot be expressed in one
        // delta (retractions apply first), so that still splits.
        let mut c = DatasetDelta::new();
        c.retract_entity(EntityId(6));
        assert!(!merge_compatible(&a, &c, 6));
        assert_eq!(coalesce(vec![a.clone(), c.clone()], 6).len(), 2);
    }

    #[test]
    fn retract_after_touch_splits_retract_before_touch_merges() {
        // base adds a link incident to entity 3; next retracts entity 3:
        // merged apply would purge 3 before the link lands.
        let mut a = DatasetDelta::new();
        a.add_link(
            GrowthRef::Existing(EntityId(3)),
            GrowthRef::Existing(EntityId(5)),
            SimLevel(1),
        );
        let mut b = DatasetDelta::new();
        b.retract_entity(EntityId(3));
        assert!(!merge_compatible(&a, &b, 6));
        assert_eq!(coalesce(vec![a.clone(), b.clone()], 6).len(), 2);
        assert_equivalent(vec![a, b]);

        // The other order interferes too (base retracts what next cites).
        let mut c = DatasetDelta::new();
        c.retract_entity(EntityId(3));
        let mut d = DatasetDelta::new();
        d.add_link(
            GrowthRef::Existing(EntityId(3)),
            GrowthRef::Existing(EntityId(5)),
            SimLevel(1),
        );
        assert!(!merge_compatible(&c, &d, 6));

        // But retractions of *untouched* entities coalesce freely.
        let mut e = DatasetDelta::new();
        e.add_link(
            GrowthRef::Existing(EntityId(0)),
            GrowthRef::Existing(EntityId(4)),
            SimLevel(1),
        );
        let mut f = DatasetDelta::new();
        f.retract_entity(EntityId(2));
        assert!(merge_compatible(&e, &f, 6));
        assert_equivalent(vec![e, f]);
    }

    #[test]
    fn retracting_a_link_the_group_added_splits() {
        let mut a = DatasetDelta::new();
        a.add_link(
            GrowthRef::Existing(EntityId(0)),
            GrowthRef::Existing(EntityId(5)),
            SimLevel(2),
        );
        let mut b = DatasetDelta::new();
        b.retract_link(Pair::new(EntityId(0), EntityId(5)));
        assert!(!merge_compatible(&a, &b, 6));
        assert_equivalent(vec![a, b]);
    }

    #[test]
    fn new_ref_rebasing_matches_sequential_id_assignment() {
        let mut a = DatasetDelta::new();
        let x = a.add_entity("paper", &[("title", "x")]);
        a.add_link(GrowthRef::Existing(EntityId(1)), x, SimLevel(1));
        let mut b = DatasetDelta::new();
        let y = b.add_entity("paper", &[("title", "y")]);
        let z = b.add_entity("paper", &[("title", "z")]);
        b.add_link(y, z, SimLevel(3));
        b.add_tuple("cites", false, y, GrowthRef::Existing(EntityId(2)));

        let groups = coalesce(vec![a.clone(), b.clone()], 6);
        assert_eq!(groups.len(), 1);
        // Merged New indices: x=0, y=1, z=2.
        assert!(matches!(
            groups[0].add_links[1],
            (GrowthRef::New(1), GrowthRef::New(2), _)
        ));
        assert_equivalent(vec![a, b]);
    }

    /// Coalesce `deltas` over `initial` and assert the merged apply
    /// lands on the same dataset as the sequential apply; returns the
    /// group count.
    fn coalesced_groups_equivalent(initial: &Dataset, deltas: &[DatasetDelta]) -> usize {
        let mut sequential = initial.clone();
        for d in deltas {
            d.apply(&mut sequential);
        }
        let mut merged = initial.clone();
        let groups = coalesce(deltas.to_vec(), merged.entities.len() as u32);
        for g in &groups {
            g.apply(&mut merged);
        }
        let mut seq_pairs: Vec<_> = sequential.candidate_pairs().collect();
        let mut merged_pairs: Vec<_> = merged.candidate_pairs().collect();
        seq_pairs.sort();
        merged_pairs.sort();
        assert_eq!(sequential.entities.len(), merged.entities.len());
        assert_eq!(
            sequential.entities.live_count(),
            merged.entities.live_count()
        );
        assert_eq!(seq_pairs, merged_pairs);
        groups.len()
    }

    #[test]
    fn churn_scripts_coalesce_equivalently() {
        use em::ChurnOptions;
        use em_datagen::{generate, DatasetProfile};
        let template = generate(&DatasetProfile::hepth().scaled(0.005).with_seed(11)).dataset;
        let n = template.entities.len() as u32;

        // Pure growth (carve) traffic: forward references rewrite, so
        // the whole script folds into very few updates.
        let (initial, deltas) =
            DatasetDelta::churn_script_with(&template, n * 3 / 5, 8, 7, &ChurnOptions::default());
        let groups = coalesced_groups_equivalent(&initial, &deltas);
        assert!(
            groups < deltas.len(),
            "growth traffic should coalesce ({} -> {groups})",
            deltas.len()
        );

        // Pathological churn: retractions collide with the previous
        // step's footprint, so the conservative gate splits most pairs
        // — equivalence must hold for however much does merge.
        let (initial, deltas) = DatasetDelta::churn_script_with(
            &template,
            n * 3 / 5,
            8,
            7,
            &ChurnOptions {
                retract_fraction: 0.05,
                readd_fraction: 0.2,
                tuple_churn: 0.05,
                link_churn: 0.05,
                oversize_growth: 1,
            },
        );
        coalesced_groups_equivalent(&initial, &deltas);
    }
}
