//! `em-serve`: a long-lived multi-session matching service over the
//! collective entity-matching pipeline.
//!
//! The batch pipeline answers "match this dataset"; `em-serve` answers
//! "keep N datasets matched *while they change*". A [`Daemon`] hosts
//! independent named sessions (each an [`em::Pipeline`]-built
//! [`em::MatchSession`], optionally durable under its own `em-store`
//! directory) and consumes one change stream of wire-encoded
//! [`em::DatasetDelta`] frames:
//!
//! ```text
//!             ┌────────────────────── daemon ──────────────────────┐
//!  producers  │  pump()          per-session queues        step()  │
//!  ──frames──▶│ ChangeSource ─▶ [a: ▣▣▣|fence|▣ ]  ─▶ scheduler ─▶ │──▶ update()×k
//!   (file     │   (decode,      [b: ▣ ]                (freshness/ │     + run()
//!    tail or  │    route,       [c: ▣▣ ]               cost score) │       │
//!    channel) │    fence)            │                             │       ▼
//!             │                 dead letters (counted)       matches()/status()
//!             └────────────────────────────────────────────────────┘
//! ```
//!
//! The moving parts, bottom up:
//!
//! * [`wire`] — the stream format: `em-store-v1` WAL frames carrying
//!   session-addressed deltas and global epoch fences;
//! * [`source`] — where frames come from: a tailed stream file
//!   ([`FileTailSource`]) or an in-process channel ([`ChannelSource`]);
//! * [`batch`] — micro-batching: queued deltas coalesce into fewer
//!   `update()` calls when (and only when) the merged delta provably
//!   applies to the same dataset;
//! * [`sched`] — freshness-aware scheduling: pending depth and queue
//!   age (in staleness-budget units) divided by a measured cost EMA,
//!   with deterministic tiebreaks;
//! * [`daemon`] — the serving loop, backpressure (shed-to-cold, never
//!   frame-dropping), evict/revive of durable sessions, and the
//!   [`Op`]-log replay-identity contract;
//! * [`load`] — the scripted load driver behind the `serve_load`
//!   binary and the isolation proptests.
//!
//! The crate is deliberately free of any network stack: transports are
//! a file and a channel, which is what CI can exercise losslessly. A
//! socket transport is a producer that decodes into the same channel.

pub mod batch;
pub mod daemon;
pub mod load;
pub mod sched;
pub mod source;
pub mod wire;

pub use batch::{coalesce, merge, merge_compatible};
pub use daemon::{
    Daemon, Op, PumpReport, ServeConfig, ServeError, SessionInfo, SessionStats, StepReport,
};
pub use load::{run_load, LoadConfig, LoadOutcome, SessionLoadStats, SessionTraffic};
pub use sched::{pick_next, staleness_percentiles, CostModel, SessionView};
pub use source::{channel_source, ChangeSource, ChannelSource, FileTailSource, StreamWriter};
pub use wire::{StreamFrame, FRAME_STREAM_DELTA, FRAME_STREAM_FENCE};
