//! Zero-recompute caching for the matching hot path.
//!
//! Two layers:
//!
//! * [`PairCache`] — a sharded, concurrent map from [`Pair`] to a copyable
//!   value (a similarity score, a [`Score`], a discretized level). Built
//!   for the "same pair examined by many overlapping contexts" pattern:
//!   blocking canopies overlap, covers overlap, and MMP re-examines pairs
//!   across rounds. Shards keep lock contention negligible when the cache
//!   is shared read-mostly across `em-parallel` workers.
//!
//! * [`CachedMatcher`] — a transparent memoizing wrapper around any
//!   [`Matcher`] / [`ProbabilisticMatcher`]. Matchers are deterministic
//!   functions of `(view, evidence)`, so their outputs — base match sets
//!   and per-pair conditioned probe results — can be replayed from a
//!   fingerprint instead of re-running inference. Every scheme (NO-MP,
//!   SMP, MMP, their parallel variants) evaluates neighborhoods against
//!   evidence snapshots that overlap heavily across schemes and rounds;
//!   the wrapper turns each repeat into an O(1) lookup. Soundness is
//!   untouched: on a fingerprint hit the returned set is byte-identical
//!   to what the wrapped matcher would recompute.
//!
//! Both layers are `Sync` and designed to be shared by reference across
//! worker threads; both are togglable (construct [`CachedMatcher::disabled`]
//! for ablations — `fig3_runtime --cache off` uses exactly that).

use crate::dataset::{Dataset, View};
use crate::evidence::Evidence;
use crate::hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
use crate::matcher::{GlobalScorer, Matcher, ProbabilisticMatcher, Score};
use crate::pair::{Pair, PairSet};
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independent shards (power of two).
const SHARDS: usize = 16;

/// Entries per memo table before it is cleared wholesale (bounds memory
/// on huge workloads; the access pattern is bursts of hits on recent
/// keys, so wholesale clearing is cheap and simple).
const MEMO_CAP: usize = 1 << 17;

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 for an unused cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded concurrent memo table from [`Pair`] to a copyable value.
#[derive(Debug, Default)]
pub struct PairCache<V> {
    shards: [Mutex<FxHashMap<Pair, V>>; SHARDS],
    /// Session-scoped suppression list: pairs a caller retracted for
    /// good. Not a cache — an intent record — so [`PairCache::clear`]
    /// keeps it (a reset session must still honor the caller's
    /// retractions). Tiny in practice; one mutex is enough.
    suppressed: Mutex<FxHashSet<Pair>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// `PairCache` specialized to fixed-point log-scores.
pub type PairScoreCache = PairCache<Score>;

impl<V: Copy> PairCache<V> {
    /// Empty cache.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            suppressed: Mutex::new(FxHashSet::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, pair: Pair) -> &Mutex<FxHashMap<Pair, V>> {
        let h = FxBuildHasher::default().hash_one(pair) as usize;
        &self.shards[h & (SHARDS - 1)]
    }

    /// Cached value of a pair.
    pub fn get(&self, pair: Pair) -> Option<V> {
        let got = self
            .shard(pair)
            .lock()
            .expect("cache lock")
            .get(&pair)
            .copied();
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or overwrite) a pair's value.
    pub fn insert(&self, pair: Pair, value: V) {
        self.shard(pair)
            .lock()
            .expect("cache lock")
            .insert(pair, value);
    }

    /// Cached value, computing and recording it on a miss. `compute` runs
    /// outside the shard lock, so it may itself use the cache.
    pub fn get_or_insert_with(&self, pair: Pair, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(pair) {
            return v;
        }
        let v = compute();
        self.insert(pair, v);
        v
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").len())
            .sum()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (statistics and the suppression list are kept —
    /// see [`PairCache::suppress`]).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache lock").clear();
        }
    }

    /// Remove one pair's entry; returns `true` if it was cached.
    pub fn remove(&self, pair: Pair) -> bool {
        self.shard(pair)
            .lock()
            .expect("cache lock")
            .remove(&pair)
            .is_some()
    }

    /// Keep only the entries whose pair satisfies `keep`, returning the
    /// number dropped. Component-scoped rollback uses this to evict the
    /// blocking scores of pairs that mention retracted entities.
    pub fn retain(&self, mut keep: impl FnMut(Pair) -> bool) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut map = shard.lock().expect("cache lock");
            let before = map.len();
            map.retain(|&pair, _| keep(pair));
            dropped += before - map.len();
        }
        dropped
    }

    /// Visit every cached pair (values are skipped), shard by shard.
    /// Counters are untouched. The invariant checker uses this to assert
    /// no cached pair references a tombstoned entity.
    pub fn for_each_key(&self, mut visit: impl FnMut(Pair)) {
        for shard in &self.shards {
            for &pair in shard.lock().expect("cache lock").keys() {
                visit(pair);
            }
        }
    }

    /// Visit every cached pair with a clone of its value, shard by
    /// shard. Counters are untouched. Durable-session capture uses this
    /// to walk the score map; iteration order is arbitrary, so consumers
    /// needing determinism must sort what they collect.
    pub fn for_each_entry(&self, mut visit: impl FnMut(Pair, V)) {
        for shard in &self.shards {
            for (&pair, value) in shard.lock().expect("cache lock").iter() {
                visit(pair, *value);
            }
        }
    }

    /// Add `pair` to the session-scoped suppression list and drop its
    /// cached value: the caller retracted it for good, so later
    /// re-derivations (a re-block re-scoring the same records) must not
    /// resurrect it. The list survives [`PairCache::clear`] — it records
    /// intent, not derived data.
    pub fn suppress(&self, pair: Pair) {
        self.remove(pair);
        self.suppressed
            .lock()
            .expect("suppression lock")
            .insert(pair);
    }

    /// Remove `pair` from the suppression list (the caller re-asserted
    /// it); returns whether it was suppressed.
    pub fn unsuppress(&self, pair: Pair) -> bool {
        self.suppressed
            .lock()
            .expect("suppression lock")
            .remove(&pair)
    }

    /// Whether `pair` is on the suppression list.
    pub fn is_suppressed(&self, pair: Pair) -> bool {
        self.suppressed
            .lock()
            .expect("suppression lock")
            .contains(&pair)
    }

    /// Snapshot of the suppression list, sorted for deterministic
    /// iteration.
    pub fn suppressed_pairs(&self) -> Vec<Pair> {
        let mut pairs: Vec<Pair> = self
            .suppressed
            .lock()
            .expect("suppression lock")
            .iter()
            .copied()
            .collect();
        pairs.sort_unstable();
        pairs
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// SplitMix64 step: golden-ratio offset then the shared bijective mixer.
#[inline]
fn mix64(z: u64) -> u64 {
    crate::hash::splitmix64_mix(z.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// 128-bit order-independent fingerprint of a pair set.
///
/// Two commutative accumulators over *mixed* per-pair hashes: the first
/// sums `mix64(h)`, the second sums `mix64(mix64(h))`. A collision needs
/// both sums to agree simultaneously; because the second accumulator is
/// a nonlinear function of the first's terms, the structured inputs that
/// could defeat a plain sum (small sequential entity ids under Fx) do
/// not line up in both. O(n), no sorting, deterministic across runs.
fn pair_set_fingerprint(pairs: &PairSet) -> (u64, u64) {
    let mut sum_a: u64 = 0;
    let mut sum_b: u64 = 0;
    for p in pairs.iter() {
        let h = mix64(FxBuildHasher::default().hash_one(p));
        sum_a = sum_a.wrapping_add(h);
        sum_b = sum_b.wrapping_add(mix64(h));
    }
    let n = pairs.len() as u64;
    (mix64(sum_a ^ n), mix64(sum_b ^ n.rotate_left(32)))
}

/// 256-bit fingerprint of a full evidence assignment (positive and
/// negative sets kept separate so they can never alias).
type EvidenceFp = ((u64, u64), (u64, u64));

fn evidence_fingerprint(evidence: &Evidence) -> EvidenceFp {
    (
        pair_set_fingerprint(&evidence.positive),
        pair_set_fingerprint(&evidence.negative),
    )
}

/// Fingerprint of a view: its sorted member list plus the identity of
/// the dataset it was cut from, so one wrapper serving views of two
/// datasets with overlapping entity ids can never alias. (Mutating a
/// dataset *in place* between calls is outside this fingerprint's reach
/// — see the [`CachedMatcher`] contract.)
fn view_fingerprint(view: &View<'_>) -> u64 {
    let mut hasher = FxHasher::default();
    (view.dataset() as *const Dataset as usize).hash(&mut hasher);
    view.members().hash(&mut hasher);
    hasher.finish()
}

/// A sharded memo table keyed by arbitrary hashable keys; the internal
/// sibling of [`PairCache`] used by [`CachedMatcher`] so parallel
/// workers do not serialize on one lock.
#[derive(Debug)]
struct ShardedMemo<K, V> {
    shards: [Mutex<FxHashMap<K, V>>; SHARDS],
}

impl<K: Eq + Hash, V: Clone> ShardedMemo<K, V> {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
        }
    }

    #[inline]
    fn shard(&self, key: &K) -> &Mutex<FxHashMap<K, V>> {
        let h = FxBuildHasher::default().hash_one(key) as usize;
        &self.shards[h & (SHARDS - 1)]
    }

    fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("memo lock").get(key).cloned()
    }

    /// Insert, clearing the shard first if it hit its share of the cap.
    fn insert(&self, key: K, value: V) {
        let mut shard = self.shard(&key).lock().expect("memo lock");
        if shard.len() >= MEMO_CAP / SHARDS {
            shard.clear();
        }
        shard.insert(key, value);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("memo lock").clear();
        }
    }
}

/// A memoizing wrapper around any matcher: repeated evaluations of the
/// same `(neighborhood, evidence)` — across schemes, rounds, and probe
/// sweeps — are answered from a fingerprint table instead of re-running
/// inference. See the module docs for the soundness argument.
///
/// # Contract: the dataset is frozen for the wrapper's lifetime
///
/// Fingerprints cover the view's member list, its dataset's identity,
/// and the evidence sets — not the dataset's candidate pairs, relations,
/// or attributes. The framework upholds this naturally (blocking mutates
/// the dataset *before* any matcher is built, and no scheme mutates it
/// during a run), but if you mutate a dataset after evaluating through
/// the wrapper — e.g. `set_similar` between runs — you must call
/// [`CachedMatcher::clear`] or the stale pre-mutation results replay.
#[derive(Debug)]
pub struct CachedMatcher<M> {
    inner: M,
    enabled: bool,
    /// (view fp, evidence fp) → base match set.
    match_memo: ShardedMemo<(u64, EvidenceFp), PairSet>,
    /// (view fp, evidence fp, probe) → entailed pairs.
    probe_memo: ShardedMemo<(u64, EvidenceFp, Pair), Vec<Pair>>,
    /// (view fp, evidence fp, probe) → (entailed pairs, score gap).
    /// Separate from `probe_memo`: a certified probe carries its gap, and
    /// mixing the tables would let a plain probe replay drop one.
    probe_cert_memo: ShardedMemo<(u64, EvidenceFp, Pair), (Vec<Pair>, Score)>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<M> CachedMatcher<M> {
    /// Wrap `inner` with memoization enabled.
    pub fn new(inner: M) -> Self {
        Self::with_enabled(inner, true)
    }

    /// Wrap `inner` with memoization *disabled*: every call forwards
    /// straight to the inner matcher. The ablation arm — identical code
    /// path, zero reuse.
    pub fn disabled(inner: M) -> Self {
        Self::with_enabled(inner, false)
    }

    fn with_enabled(inner: M, enabled: bool) -> Self {
        Self {
            inner,
            enabled,
            match_memo: ShardedMemo::new(),
            probe_memo: ShardedMemo::new(),
            probe_cert_memo: ShardedMemo::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped matcher.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Whether memoization is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Hit/miss counters across both memo tables.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drop all memoized results (counters are kept).
    pub fn clear(&self) {
        self.match_memo.clear();
        self.probe_memo.clear();
        self.probe_cert_memo.clear();
    }
}

impl<M: Matcher> Matcher for CachedMatcher<M> {
    fn match_view(&self, view: &View<'_>, evidence: &Evidence) -> PairSet {
        if !self.enabled {
            return self.inner.match_view(view, evidence);
        }
        let key = (view_fingerprint(view), evidence_fingerprint(evidence));
        if let Some(cached) = self.match_memo.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let out = self.inner.match_view(view, evidence);
        self.match_memo.insert(key, out.clone());
        out
    }

    fn probe_entailed(
        &self,
        view: &View<'_>,
        evidence: &Evidence,
        base: &PairSet,
        probes: &[Pair],
    ) -> Vec<Vec<Pair>> {
        if !self.enabled {
            return self.inner.probe_entailed(view, evidence, base, probes);
        }
        let vf = view_fingerprint(view);
        let ef = evidence_fingerprint(evidence);
        let mut out: Vec<Option<Vec<Pair>>> = vec![None; probes.len()];
        let mut missing: Vec<(usize, Pair)> = Vec::new();
        for (i, &p) in probes.iter().enumerate() {
            match self.probe_memo.get(&(vf, ef, p)) {
                Some(cached) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(cached);
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    missing.push((i, p));
                }
            }
        }
        if !missing.is_empty() {
            // One batched inner call for all misses, so the wrapped
            // matcher keeps its own amortization (shared grounding etc.).
            let miss_probes: Vec<Pair> = missing.iter().map(|&(_, p)| p).collect();
            let computed = self
                .inner
                .probe_entailed(view, evidence, base, &miss_probes);
            for ((i, p), entailed) in missing.into_iter().zip(computed) {
                self.probe_memo.insert((vf, ef, p), entailed.clone());
                out[i] = Some(entailed);
            }
        }
        out.into_iter().map(|v| v.expect("filled")).collect()
    }

    fn probe_certificate(
        &self,
        view: &View<'_>,
        evidence: &Evidence,
        base: &PairSet,
        probes: &[Pair],
    ) -> Option<Vec<(Vec<Pair>, Score)>> {
        if !self.enabled {
            return self.inner.probe_certificate(view, evidence, base, probes);
        }
        let vf = view_fingerprint(view);
        let ef = evidence_fingerprint(evidence);
        let mut out: Vec<Option<(Vec<Pair>, Score)>> = vec![None; probes.len()];
        let mut missing: Vec<(usize, Pair)> = Vec::new();
        for (i, &p) in probes.iter().enumerate() {
            match self.probe_cert_memo.get(&(vf, ef, p)) {
                Some(cached) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(cached);
                }
                None => missing.push((i, p)),
            }
        }
        if !missing.is_empty() {
            let miss_probes: Vec<Pair> = missing.iter().map(|&(_, p)| p).collect();
            // An inner matcher that produces no gap evidence answers the
            // whole batch with `None`; the wrapper must do the same (the
            // framework then falls back to `probe_entailed`), so misses
            // only count once we know the inner certifies at all.
            let computed = self
                .inner
                .probe_certificate(view, evidence, base, &miss_probes)?;
            self.misses
                .fetch_add(missing.len() as u64, Ordering::Relaxed);
            for ((i, p), certified) in missing.into_iter().zip(computed) {
                self.probe_cert_memo.insert((vf, ef, p), certified.clone());
                out[i] = Some(certified);
            }
        }
        Some(out.into_iter().map(|v| v.expect("filled")).collect())
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn invalidate_caches(&self) {
        self.clear();
        self.inner.invalidate_caches();
    }
}

impl<M: ProbabilisticMatcher> ProbabilisticMatcher for CachedMatcher<M> {
    fn log_score(&self, view: &View<'_>, matches: &PairSet) -> Score {
        // Scoring a fixed assignment is cheap relative to inference;
        // forwarded unmemoized.
        self.inner.log_score(view, matches)
    }

    fn global_scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
    ) -> Box<dyn GlobalScorer + Send + Sync + 'a> {
        self.inner.global_scorer(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::framework::{mmp_with_order, no_mp_baseline, smp_with_order, MmpConfig};
    use crate::testing::paper_example;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    #[test]
    fn pair_cache_caches_and_counts() {
        let cache: PairCache<f64> = PairCache::new();
        assert_eq!(cache.get(p(0, 1)), None);
        let mut computed = 0;
        let v = cache.get_or_insert_with(p(0, 1), || {
            computed += 1;
            0.75
        });
        assert_eq!(v, 0.75);
        let v = cache.get_or_insert_with(p(0, 1), || {
            computed += 1;
            0.0
        });
        assert_eq!(v, 0.75, "second lookup replays the first value");
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2); // the initial get + the first get_or_insert miss
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn pair_cache_suppression_survives_clear_until_unsuppressed() {
        let cache: PairCache<f64> = PairCache::new();
        cache.insert(p(0, 1), 0.9);
        cache.suppress(p(0, 1));
        assert!(cache.is_suppressed(p(0, 1)));
        assert_eq!(cache.get(p(0, 1)), None, "suppress evicts the cached value");
        cache.insert(p(0, 1), 0.9);
        cache.clear();
        assert!(
            cache.is_suppressed(p(0, 1)),
            "suppression is intent, not cache: clear() keeps it"
        );
        assert_eq!(cache.suppressed_pairs(), vec![p(0, 1)]);
        assert!(cache.unsuppress(p(0, 1)), "first unsuppress removes");
        assert!(!cache.unsuppress(p(0, 1)), "second is a no-op");
        assert!(!cache.is_suppressed(p(0, 1)));
        assert!(cache.suppressed_pairs().is_empty());
    }

    #[test]
    fn pair_cache_is_shareable_across_threads() {
        let cache: PairCache<u64> = PairCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100u32 {
                        cache.get_or_insert_with(p(i, i + 1), || u64::from(i));
                        let _ = cache.get(p(t, t + 1));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100);
        for i in 0..100u32 {
            assert_eq!(cache.get(p(i, i + 1)), Some(u64::from(i)));
        }
    }

    #[test]
    fn fingerprints_are_order_independent() {
        let mut a = PairSet::new();
        a.insert(p(0, 1));
        a.insert(p(2, 3));
        let mut b = PairSet::new();
        b.insert(p(2, 3));
        b.insert(p(0, 1));
        assert_eq!(pair_set_fingerprint(&a), pair_set_fingerprint(&b));
        let mut c = a.clone();
        c.insert(p(4, 5));
        assert_ne!(pair_set_fingerprint(&a), pair_set_fingerprint(&c));
    }

    #[test]
    fn positive_and_negative_evidence_fingerprint_differently() {
        let s: PairSet = [p(0, 1)].into_iter().collect();
        let pos = Evidence::positive(s.clone());
        let neg = Evidence::from_parts(PairSet::new(), s);
        assert_ne!(evidence_fingerprint(&pos), evidence_fingerprint(&neg));
    }

    #[test]
    fn cached_matcher_replays_match_view() {
        let (ds, _, matcher, _) = paper_example();
        let cached = CachedMatcher::new(matcher);
        let view = ds.full_view();
        let first = cached.match_view(&view, &Evidence::none());
        let second = cached.match_view(&view, &Evidence::none());
        assert_eq!(first, second);
        let stats = cached.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cached_matcher_distinguishes_evidence() {
        let (ds, _, matcher, _) = paper_example();
        let cached = CachedMatcher::new(matcher);
        let view = ds.full_view();
        let none = cached.match_view(&view, &Evidence::none());
        let seeded = cached.match_view(&view, &Evidence::positive([p(0, 1)].into_iter().collect()));
        assert!(none.len() <= seeded.len());
        assert_eq!(cached.stats().hits, 0, "different evidence, no replay");
    }

    #[test]
    fn probe_certificate_memoizes_and_propagates_none() {
        use std::sync::atomic::AtomicUsize;

        /// Certifies every probe as entailing nothing with gap 500, and
        /// counts inner calls.
        struct Certifying {
            calls: AtomicUsize,
        }
        impl Matcher for Certifying {
            fn match_view(&self, _view: &View<'_>, _evidence: &Evidence) -> PairSet {
                PairSet::new()
            }
            fn probe_certificate(
                &self,
                _view: &View<'_>,
                _evidence: &Evidence,
                _base: &PairSet,
                probes: &[Pair],
            ) -> Option<Vec<(Vec<Pair>, Score)>> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                Some(probes.iter().map(|_| (Vec::new(), Score(500))).collect())
            }
        }

        let (ds, _, exact, _) = paper_example();
        let view = ds.full_view();
        let ev = Evidence::none();
        let probes = [p(0, 1), p(2, 3)];

        // An inner matcher without gap evidence: the wrapper forwards the
        // `None` so the framework can fall back to plain probes.
        let no_certs = CachedMatcher::new(exact);
        assert!(no_certs
            .probe_certificate(&view, &ev, &PairSet::new(), &probes)
            .is_none());

        let certifying = CachedMatcher::new(Certifying {
            calls: AtomicUsize::new(0),
        });
        let first = certifying
            .probe_certificate(&view, &ev, &PairSet::new(), &probes)
            .expect("certified");
        let second = certifying
            .probe_certificate(&view, &ev, &PairSet::new(), &probes)
            .expect("replayed");
        assert_eq!(first, second);
        assert_eq!(
            certifying.inner().calls.load(Ordering::Relaxed),
            1,
            "second batch is answered from the memo"
        );
        certifying.invalidate_caches();
        let _ = certifying.probe_certificate(&view, &ev, &PairSet::new(), &probes);
        assert_eq!(certifying.inner().calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn all_schemes_agree_with_and_without_the_cache() {
        let (ds, cover, matcher, expected) = paper_example();
        let cached = CachedMatcher::new(matcher.clone());
        let uncached = CachedMatcher::disabled(matcher);
        let none = Evidence::none();
        assert_eq!(
            no_mp_baseline(&cached, &ds, &cover, &none).matches,
            no_mp_baseline(&uncached, &ds, &cover, &none).matches
        );
        assert_eq!(
            smp_with_order(&cached, &ds, &cover, &none, None).matches,
            smp_with_order(&uncached, &ds, &cover, &none, None).matches
        );
        let config = MmpConfig::default();
        let via_cache = mmp_with_order(&cached, &ds, &cover, &none, &config, None);
        let via_inner = mmp_with_order(&uncached, &ds, &cover, &none, &config, None);
        assert_eq!(via_cache.matches, expected);
        assert_eq!(via_inner.matches, expected);
        assert!(
            cached.stats().hits > 0,
            "running all three schemes reuses work"
        );
        assert_eq!(uncached.stats().hits + uncached.stats().misses, 0);
    }
}
