//! Randomized checker for the *well-behaved* matcher contract
//! (Definitions 2–4 of the paper).
//!
//! Idempotence and monotonicity are semantic properties of a matcher that
//! the type system cannot enforce, yet the framework's soundness and
//! consistency guarantees (Theorems 1, 2, 4) only hold for matchers that
//! satisfy them. This module samples views and evidence sets from a
//! dataset and checks:
//!
//! * **idempotence** — `E(E, O, V−) = O` where `O = E(E, V+, V−)`;
//! * **monotonicity in entities** — `C ⊆ C'` implies
//!   `E(C, V+, V−) ⊆ E(C', V+, V−)`;
//! * **monotonicity in positive evidence** — `V+ ⊆ V+'` implies
//!   `E(E, V+, V−) ⊆ E(E, V+', V−)`;
//! * **anti-monotonicity in negative evidence** — `V− ⊆ V−'` implies
//!   `E(E, V+, V−') ⊆ E(E, V+, V−)`.
//!
//! The checker is deliberately self-contained (its RNG is a SplitMix64 so
//! `em-core` needs no external dependencies) and deterministic per seed.

use crate::cover::Cover;
use crate::dataset::Dataset;
use crate::evidence::Evidence;
use crate::matcher::Matcher;
use crate::pair::{Pair, PairSet};

/// Minimal deterministic RNG (SplitMix64) for sampling check cases.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        crate::hash::splitmix64_mix(self.state)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// One violated property instance, with a human-readable explanation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which property failed.
    pub property: &'static str,
    /// What happened.
    pub detail: String,
}

/// Outcome of a well-behavedness check.
#[derive(Debug, Clone, Default)]
pub struct WellBehavedReport {
    /// Number of sampled cases per property.
    pub cases: usize,
    /// All violations found (empty = well-behaved on the samples).
    pub violations: Vec<Violation>,
}

impl WellBehavedReport {
    /// Whether no violation was observed.
    pub fn is_well_behaved(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Configuration for the checker.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Cases sampled per property.
    pub cases: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability (out of 100) that a candidate pair joins sampled `V+`.
    pub positive_evidence_pct: u64,
    /// Probability (out of 100) that a candidate pair joins sampled `V−`.
    pub negative_evidence_pct: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            cases: 20,
            seed: 0xC0FFEE,
            positive_evidence_pct: 15,
            negative_evidence_pct: 10,
        }
    }
}

/// Sample a random sub-view (subset of a neighborhood's members).
fn sample_members(
    rng: &mut SplitMix64,
    members: &[crate::entity::EntityId],
    keep_pct: u64,
) -> Vec<crate::entity::EntityId> {
    members
        .iter()
        .copied()
        .filter(|_| rng.chance(keep_pct, 100))
        .collect()
}

/// Sample evidence over a view's candidate pairs.
fn sample_evidence(rng: &mut SplitMix64, pairs: &[Pair], config: &CheckConfig) -> Evidence {
    let mut positive = PairSet::new();
    let mut negative = PairSet::new();
    for &p in pairs {
        if rng.chance(config.positive_evidence_pct, 100) {
            positive.insert(p);
        } else if rng.chance(config.negative_evidence_pct, 100) {
            negative.insert(p);
        }
    }
    Evidence::new(positive, negative)
}

/// Run the full well-behavedness check against the neighborhoods of
/// `cover` (sampling one neighborhood per case).
pub fn check_well_behaved(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    config: &CheckConfig,
) -> WellBehavedReport {
    let mut rng = SplitMix64::new(config.seed);
    let mut report = WellBehavedReport {
        cases: config.cases,
        ..Default::default()
    };
    if cover.is_empty() {
        return report;
    }

    for case in 0..config.cases {
        let id = crate::cover::NeighborhoodId(rng.below(cover.len()) as u32);
        let view = cover.view(dataset, id);
        let pairs: Vec<Pair> = view.candidate_pairs().into_iter().map(|(p, _)| p).collect();
        let evidence = sample_evidence(&mut rng, &pairs, config);

        // Idempotence (Definition 2).
        let out = matcher.match_view(&view, &evidence);
        let evidence_again = Evidence::untracked(
            {
                let mut pos = out.clone();
                pos.union_with(&evidence.positive);
                pos
            },
            evidence.negative.clone(),
        );
        let out_again = matcher.match_view(&view, &evidence_again);
        if out_again != out {
            report.violations.push(Violation {
                property: "idempotence",
                detail: format!(
                    "case {case}: |E(C,O)| = {} but |O| = {} on {id}",
                    out_again.len(),
                    out.len()
                ),
            });
        }

        // Monotonicity in entities (Definition 3(i)).
        let sub_members = sample_members(&mut rng, view.members(), 70);
        if !sub_members.is_empty() {
            let sub_view = dataset.view(sub_members.iter().copied());
            let sub_evidence = Evidence::untracked(
                sub_view.restrict(&evidence.positive),
                sub_view.restrict(&evidence.negative),
            );
            let sub_out = matcher.match_view(&sub_view, &sub_evidence);
            // Compare against the larger view run *with the same evidence*.
            let big_out = matcher.match_view(&view, &sub_evidence);
            if !sub_out.is_subset(&big_out) {
                report.violations.push(Violation {
                    property: "monotone-entities",
                    detail: format!(
                        "case {case}: E(C') ⊄ E(C) with |C'|={} |C|={} on {id}",
                        sub_view.len(),
                        view.len()
                    ),
                });
            }
        }

        // Monotonicity in positive evidence (Definition 3(ii)).
        if let Some(&extra) = pairs
            .iter()
            .find(|p| !evidence.positive.contains(**p) && !evidence.negative.contains(**p))
        {
            let more = Evidence::untracked(
                {
                    let mut pos = evidence.positive.clone();
                    pos.insert(extra);
                    pos
                },
                evidence.negative.clone(),
            );
            let out_more = matcher.match_view(&view, &more);
            if !out.is_subset(&out_more) {
                report.violations.push(Violation {
                    property: "monotone-positive-evidence",
                    detail: format!("case {case}: adding {extra} to V+ lost matches on {id}"),
                });
            }
        }

        // Anti-monotonicity in negative evidence (Definition 3(iii)).
        if let Some(&extra) = pairs
            .iter()
            .find(|p| !evidence.positive.contains(**p) && !evidence.negative.contains(**p))
        {
            let more = Evidence::untracked(evidence.positive.clone(), {
                let mut neg = evidence.negative.clone();
                neg.insert(extra);
                neg
            });
            let out_more = matcher.match_view(&view, &more);
            if !out_more.is_subset(&out) {
                report.violations.push(Violation {
                    property: "antimonotone-negative-evidence",
                    detail: format!("case {case}: adding {extra} to V− gained matches on {id}"),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SimLevel;
    use crate::entity::EntityId;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn dataset() -> (Dataset, Cover) {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..8 {
            ds.entities.add_entity(ty);
        }
        for i in (0..8).step_by(2) {
            ds.set_similar(Pair::new(e(i), e(i + 1)), SimLevel(1 + (i as u8 / 2) % 3));
        }
        let cover = Cover::from_neighborhoods(vec![
            vec![e(0), e(1), e(2), e(3)],
            vec![e(4), e(5), e(6), e(7)],
        ]);
        (ds, cover)
    }

    /// Matches every candidate pair at level ≥ its threshold; ignores
    /// entities it has never seen. Well-behaved by construction.
    struct Threshold(u8);

    impl Matcher for Threshold {
        fn match_view(&self, view: &crate::dataset::View<'_>, evidence: &Evidence) -> PairSet {
            let mut out: PairSet = view
                .candidate_pairs()
                .into_iter()
                .filter(|(p, l)| l.0 >= self.0 && !evidence.negative.contains(*p))
                .map(|(p, _)| p)
                .collect();
            for p in evidence.positive.iter() {
                if view.contains_pair(p) && !evidence.negative.contains(p) {
                    out.insert(p);
                }
            }
            out
        }
    }

    /// Deliberately broken: *inverts* positive evidence (more evidence ⇒
    /// fewer matches), violating monotonicity.
    struct Perverse;

    impl Matcher for Perverse {
        fn match_view(&self, view: &crate::dataset::View<'_>, evidence: &Evidence) -> PairSet {
            view.candidate_pairs()
                .into_iter()
                .filter(|(p, _)| !evidence.positive.contains(*p))
                .map(|(p, _)| p)
                .collect()
        }
    }

    #[test]
    fn threshold_matcher_is_well_behaved() {
        let (ds, cover) = dataset();
        let report = check_well_behaved(&Threshold(2), &ds, &cover, &CheckConfig::default());
        assert!(
            report.is_well_behaved(),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn perverse_matcher_is_caught() {
        let (ds, cover) = dataset();
        let report = check_well_behaved(&Perverse, &ds, &cover, &CheckConfig::default());
        assert!(!report.is_well_behaved());
        // It must specifically fail idempotence or positive-evidence
        // monotonicity (it fails both in general).
        assert!(report
            .violations
            .iter()
            .any(|v| v.property == "idempotence" || v.property == "monotone-positive-evidence"));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
