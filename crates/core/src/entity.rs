//! Entities and their attributes.
//!
//! The paper's data model (§1) is a collection of entities `E`, each with a
//! set of attributes, plus a set of relations over `E` (see
//! [`crate::relation`]). Entities are stored columnar-ish in an
//! [`EntityStore`]: ids are dense `u32` indices, entity types and attribute
//! names are interned to small integers so per-entity storage stays compact
//! (the DBLP-BIG workload has millions of entities).

use crate::hash::FxHashMap;
use std::fmt;

/// Dense identifier of an entity within an [`EntityStore`].
///
/// Ids are assigned contiguously from zero in insertion order, which lets
/// downstream structures (covers, ground models) use plain vectors indexed
/// by entity id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Interned entity type (e.g. `"author_ref"`, `"paper"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u16);

/// Interned attribute name (e.g. `"fname"`, `"title"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

/// String interner mapping names to small dense ids.
#[derive(Debug, Default, Clone)]
struct Interner {
    names: Vec<String>,
    index: FxHashMap<String, u16>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u16 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u16::try_from(self.names.len()).expect("more than u16::MAX interned names");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    fn get(&self, name: &str) -> Option<u16> {
        self.index.get(name).copied()
    }

    fn name(&self, id: u16) -> &str {
        &self.names[id as usize]
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// One entity's attribute values, sorted by [`AttrId`] for binary search.
///
/// Entities typically carry a handful of attributes, so a sorted small
/// vector beats a hash map in both space and time.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Attributes {
    values: Vec<(AttrId, String)>,
}

impl Attributes {
    /// Value of attribute `attr`, if present.
    pub fn get(&self, attr: AttrId) -> Option<&str> {
        self.values
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| self.values[i].1.as_str())
    }

    /// Insert or overwrite an attribute value.
    pub fn set(&mut self, attr: AttrId, value: impl Into<String>) {
        match self.values.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => self.values[i].1 = value.into(),
            Err(i) => self.values.insert(i, (attr, value.into())),
        }
    }

    /// Iterate over `(attribute, value)` pairs in attribute-id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.values.iter().map(|(a, v)| (*a, v.as_str()))
    }

    /// Number of attributes set on this entity.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Columnar store of all entities in a dataset.
///
/// Ids are never reused: retracting an entity ([`EntityStore::retract`])
/// tombstones its id rather than compacting the store, so every dense
/// id-indexed structure downstream (covers, ground models, feature
/// caches) stays valid and ids assigned after a retraction are still
/// fresh. Iteration ([`EntityStore::ids`], [`EntityStore::ids_of_type`])
/// skips tombstones; [`EntityStore::len`] remains the *id-space* size
/// (use [`EntityStore::live_count`] for the live population).
#[derive(Debug, Default, Clone)]
pub struct EntityStore {
    types: Interner,
    attrs: Interner,
    /// Type of each entity, indexed by `EntityId`.
    entity_types: Vec<TypeId>,
    /// Attributes of each entity, indexed by `EntityId`.
    attributes: Vec<Attributes>,
    /// Tombstones, indexed by `EntityId` (`true` = retracted).
    retracted: Vec<bool>,
    /// Number of `true` entries in `retracted`.
    retracted_count: usize,
}

impl EntityStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an entity type name.
    pub fn intern_type(&mut self, name: &str) -> TypeId {
        TypeId(self.types.intern(name))
    }

    /// Look up a previously interned type.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.types.get(name).map(TypeId)
    }

    /// Name of a type id.
    pub fn type_name(&self, ty: TypeId) -> &str {
        self.types.name(ty.0)
    }

    /// Intern an attribute name.
    pub fn intern_attr(&mut self, name: &str) -> AttrId {
        AttrId(self.attrs.intern(name))
    }

    /// Look up a previously interned attribute name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.get(name).map(AttrId)
    }

    /// Name of an attribute id.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        self.attrs.name(attr.0)
    }

    /// Add an entity of type `ty` with no attributes; returns its id.
    pub fn add_entity(&mut self, ty: TypeId) -> EntityId {
        let id = u32::try_from(self.entity_types.len()).expect("more than u32::MAX entities");
        self.entity_types.push(ty);
        self.attributes.push(Attributes::default());
        self.retracted.push(false);
        EntityId(id)
    }

    /// Tombstone an entity: its id stays valid as an index but it no
    /// longer appears in [`EntityStore::ids`] / [`EntityStore::ids_of_type`].
    /// Returns `true` if the entity was live. The caller (see
    /// `Dataset::retract_entity`) is responsible for purging relation
    /// tuples and candidate pairs that mention it.
    ///
    /// # Panics
    /// Panics if the id was never assigned.
    pub fn retract(&mut self, entity: EntityId) -> bool {
        let slot = &mut self.retracted[entity.index()];
        let was_live = !*slot;
        if was_live {
            *slot = true;
            self.retracted_count += 1;
            // Attribute strings of a dead entity are unreachable via the
            // public iteration surface; free them.
            self.attributes[entity.index()] = Attributes::default();
        }
        was_live
    }

    /// Whether `entity` has been retracted (false for ids never assigned).
    #[inline]
    pub fn is_retracted(&self, entity: EntityId) -> bool {
        self.retracted.get(entity.index()).copied().unwrap_or(false)
    }

    /// Whether `entity` is an assigned, non-retracted id.
    #[inline]
    pub fn is_live(&self, entity: EntityId) -> bool {
        entity.index() < self.entity_types.len() && !self.retracted[entity.index()]
    }

    /// Number of live (non-retracted) entities.
    pub fn live_count(&self) -> usize {
        self.entity_types.len() - self.retracted_count
    }

    /// Set an attribute on an existing entity.
    pub fn set_attr(&mut self, entity: EntityId, attr: AttrId, value: impl Into<String>) {
        self.attributes[entity.index()].set(attr, value);
    }

    /// Type of an entity.
    #[inline]
    pub fn entity_type(&self, entity: EntityId) -> TypeId {
        self.entity_types[entity.index()]
    }

    /// Attributes of an entity.
    #[inline]
    pub fn attributes(&self, entity: EntityId) -> &Attributes {
        &self.attributes[entity.index()]
    }

    /// Convenience: attribute value by name.
    pub fn attr(&self, entity: EntityId, name: &str) -> Option<&str> {
        let attr = self.attr_id(name)?;
        self.attributes(entity).get(attr)
    }

    /// Number of entities in the store.
    pub fn len(&self) -> usize {
        self.entity_types.len()
    }

    /// Whether the store holds no entities.
    pub fn is_empty(&self) -> bool {
        self.entity_types.is_empty()
    }

    /// Number of distinct entity types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// All interned type names in id order (so a second store interning
    /// them in this order assigns identical [`TypeId`]s — what dataset
    /// carving/growth relies on).
    pub fn type_names(&self) -> impl Iterator<Item = &str> {
        (0..self.types.len() as u16).map(|i| self.types.name(i))
    }

    /// All interned attribute names in id order (see
    /// [`EntityStore::type_names`]).
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        (0..self.attrs.len() as u16).map(|i| self.attrs.name(i))
    }

    /// Iterate over all live entity ids in ascending order (tombstoned
    /// ids are skipped).
    pub fn ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entity_types.len() as u32)
            .map(EntityId)
            .filter(move |e| !self.retracted[e.index()])
    }

    /// Iterate over live entity ids of a given type, ascending.
    pub fn ids_of_type(&self, ty: TypeId) -> impl Iterator<Item = EntityId> + '_ {
        self.entity_types
            .iter()
            .enumerate()
            .filter(move |&(i, t)| *t == ty && !self.retracted[i])
            .map(|(i, _)| EntityId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut store = EntityStore::new();
        let a = store.intern_type("author_ref");
        let p = store.intern_type("paper");
        assert_ne!(a, p);
        assert_eq!(store.intern_type("author_ref"), a);
        assert_eq!(store.type_id("paper"), Some(p));
        assert_eq!(store.type_name(a), "author_ref");
        assert_eq!(store.type_count(), 2);
    }

    #[test]
    fn entities_get_dense_ids() {
        let mut store = EntityStore::new();
        let ty = store.intern_type("author_ref");
        let e0 = store.add_entity(ty);
        let e1 = store.add_entity(ty);
        assert_eq!(e0, EntityId(0));
        assert_eq!(e1, EntityId(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.ids().collect::<Vec<_>>(), vec![e0, e1]);
    }

    #[test]
    fn attributes_round_trip() {
        let mut store = EntityStore::new();
        let ty = store.intern_type("author_ref");
        let fname = store.intern_attr("fname");
        let lname = store.intern_attr("lname");
        let e = store.add_entity(ty);
        store.set_attr(e, lname, "Smith");
        store.set_attr(e, fname, "Mark");
        assert_eq!(store.attributes(e).get(fname), Some("Mark"));
        assert_eq!(store.attr(e, "lname"), Some("Smith"));
        assert_eq!(store.attr(e, "missing"), None);
        // Overwrite.
        store.set_attr(e, fname, "M.");
        assert_eq!(store.attr(e, "fname"), Some("M."));
        assert_eq!(store.attributes(e).len(), 2);
    }

    #[test]
    fn attributes_iterate_in_attr_order() {
        let mut attrs = Attributes::default();
        attrs.set(AttrId(3), "c");
        attrs.set(AttrId(1), "a");
        attrs.set(AttrId(2), "b");
        let collected: Vec<_> = attrs.iter().map(|(a, v)| (a.0, v)).collect();
        assert_eq!(collected, vec![(1, "a"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn retraction_tombstones_without_renumbering() {
        let mut store = EntityStore::new();
        let ty = store.intern_type("author_ref");
        let attr = store.intern_attr("name");
        let e0 = store.add_entity(ty);
        let e1 = store.add_entity(ty);
        store.set_attr(e1, attr, "gone");
        assert!(store.retract(e1));
        assert!(!store.retract(e1), "second retraction is a no-op");
        assert!(store.is_retracted(e1));
        assert!(!store.is_live(e1));
        assert!(store.is_live(e0));
        assert_eq!(store.len(), 2, "id space keeps the tombstone");
        assert_eq!(store.live_count(), 1);
        assert_eq!(store.ids().collect::<Vec<_>>(), vec![e0]);
        assert_eq!(store.ids_of_type(ty).collect::<Vec<_>>(), vec![e0]);
        assert!(store.attributes(e1).is_empty(), "attributes freed");
        // Ids assigned after a retraction are fresh, never recycled.
        let e2 = store.add_entity(ty);
        assert_eq!(e2, EntityId(2));
        assert_eq!(store.ids().collect::<Vec<_>>(), vec![e0, e2]);
        assert!(
            !store.is_retracted(EntityId(99)),
            "unassigned id is not retracted"
        );
        assert!(!store.is_live(EntityId(99)));
    }

    #[test]
    fn ids_of_type_filters() {
        let mut store = EntityStore::new();
        let a = store.intern_type("author_ref");
        let p = store.intern_type("paper");
        let e0 = store.add_entity(a);
        let _e1 = store.add_entity(p);
        let e2 = store.add_entity(a);
        assert_eq!(store.ids_of_type(a).collect::<Vec<_>>(), vec![e0, e2]);
    }
}
