//! Evidence sets `V+` / `V−` (Definition 1 of the paper), with epoch
//! tracking for delta-driven schedulers.
//!
//! A Type-I matcher takes, besides the entities, a set `V+` of pairs known
//! to be matches and a set `V−` of pairs known to be non-matches. The
//! framework drives matchers almost exclusively through `V+` (found matches
//! become positive evidence for later runs); `V−` is exposed for users who
//! have hard "cannot match" knowledge (e.g. hand-labelled non-matches).
//!
//! ## Epochs
//!
//! The message-passing schemes accumulate matches into one growing
//! `Evidence` value and only ever need to ask *"what changed since I last
//! looked?"* — re-deriving that from full snapshots is what made the
//! pre-epoch framework O(|V+|) per neighborhood visit. Every positive pair
//! inserted through the tracked mutators ([`Evidence::insert_positive`],
//! [`Evidence::union_positive`], the constructors) is appended to an
//! insertion log stamped with the current [`Epoch`];
//! [`Evidence::advance_epoch`] fences the log and
//! [`Evidence::delta_since`] returns the pairs inserted at or after a
//! fence as a borrowed slice — no cloning, no set difference.
//!
//! The `positive` / `negative` sets remain `pub` for read access (every
//! matcher implementation reads them); mutating them *directly* bypasses
//! the log, so code that relies on `delta_since` must go through the
//! tracked mutators. The framework does.

use crate::pair::{Pair, PairSet};

/// A fence into an [`Evidence`] insertion log, returned by
/// [`Evidence::advance_epoch`]. Epoch 0 covers the initial evidence the
/// value was constructed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u32);

/// Positive and negative evidence for a matcher invocation.
#[derive(Debug, Clone)]
pub struct Evidence {
    /// Pairs known to be matches.
    pub positive: PairSet,
    /// Pairs known to be non-matches.
    pub negative: PairSet,
    /// Whether insertions are logged (accumulators); untracked values
    /// (per-neighborhood snapshots, probe evidence) skip the log
    /// entirely.
    tracked: bool,
    /// Insertion log of `positive`, in tracked-insertion order.
    log: Vec<Pair>,
    /// `epoch_starts[e]` = length of `log` when epoch `e` began.
    epoch_starts: Vec<usize>,
    /// Retraction (tombstone) log of `positive`, in tracked-retraction
    /// order. Insertions stay in `log` even after a retraction; a
    /// consumer replaying an epoch window applies the window's
    /// insertions first, then its retractions (see
    /// [`Evidence::retractions_since`]).
    retract_log: Vec<Pair>,
    /// `retract_epoch_starts[e]` = length of `retract_log` when epoch
    /// `e` began.
    retract_epoch_starts: Vec<usize>,
}

impl Default for Evidence {
    fn default() -> Self {
        Self {
            positive: PairSet::new(),
            negative: PairSet::new(),
            tracked: true,
            log: Vec::new(),
            epoch_starts: vec![0],
            retract_log: Vec::new(),
            retract_epoch_starts: vec![0],
        }
    }
}

/// Equality is over the evidence *sets*; the epoch history is bookkeeping
/// and two evidences with the same sets are interchangeable for matchers.
impl PartialEq for Evidence {
    fn eq(&self, other: &Self) -> bool {
        self.positive == other.positive && self.negative == other.negative
    }
}

impl Eq for Evidence {}

impl Evidence {
    /// No evidence.
    pub fn none() -> Self {
        Self::default()
    }

    /// Only positive evidence.
    pub fn positive(positive: PairSet) -> Self {
        Self::from_parts(positive, PairSet::new())
    }

    /// Both evidence sets.
    ///
    /// # Panics
    /// Panics if the sets overlap — a pair cannot be both a known match and
    /// a known non-match.
    pub fn new(positive: PairSet, negative: PairSet) -> Self {
        assert!(
            positive.is_disjoint(&negative),
            "positive and negative evidence overlap"
        );
        Self::from_parts(positive, negative)
    }

    /// Both evidence sets, without the disjointness check, with epoch
    /// tracking. Used by the framework for the accumulating `M+`, where
    /// the invariant is maintained upstream and a misbehaving matcher
    /// must not panic the whole run.
    pub fn from_parts(positive: PairSet, negative: PairSet) -> Self {
        let mut log = positive.to_sorted_vec();
        log.shrink_to_fit();
        Self {
            positive,
            negative,
            tracked: true,
            log,
            epoch_starts: vec![0],
            retract_log: Vec::new(),
            retract_epoch_starts: vec![0],
        }
    }

    /// Both evidence sets **without epoch tracking**: no insertion log is
    /// kept and `delta_since` always returns an empty delta. The cheap
    /// constructor for read-mostly matcher inputs — per-neighborhood
    /// restrictions and conditioned-probe evidence — which are never
    /// delta-queried.
    pub fn untracked(positive: PairSet, negative: PairSet) -> Self {
        Self {
            positive,
            negative,
            tracked: false,
            log: Vec::new(),
            epoch_starts: vec![0],
            retract_log: Vec::new(),
            retract_epoch_starts: vec![0],
        }
    }

    /// Evidence with `extra` added to the positive set (used by
    /// `COMPUTEMAXIMAL`, which conditions on one extra hypothetical
    /// match). The result is untracked — it is matcher input, so the
    /// epoch log is not copied.
    pub fn with_extra_positive(&self, extra: Pair) -> Self {
        let mut positive = self.positive.clone();
        positive.insert(extra);
        Self::untracked(positive, self.negative.clone())
    }

    /// Whether both sets are empty.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }

    /// The current epoch. Starts at 0; bumped by [`Evidence::advance_epoch`].
    pub fn epoch(&self) -> Epoch {
        Epoch((self.epoch_starts.len() - 1) as u32)
    }

    /// Fence the insertion log and begin a new epoch, returning it.
    /// Immediately after the fence, `delta_since(fence)` is empty; every
    /// pair inserted afterwards lands at or after the returned epoch.
    pub fn advance_epoch(&mut self) -> Epoch {
        self.epoch_starts.push(self.log.len());
        self.retract_epoch_starts.push(self.retract_log.len());
        Epoch((self.epoch_starts.len() - 1) as u32)
    }

    /// The pairs inserted at epoch `since` or later, in insertion order,
    /// as a borrowed slice of the log — the whole point of epochs is that
    /// consumers never clone or diff the full positive set. Epochs later
    /// than the current one yield an empty delta.
    pub fn delta_since(&self, since: Epoch) -> &[Pair] {
        match self.epoch_starts.get(since.0 as usize) {
            Some(&start) => &self.log[start..],
            None => &[],
        }
    }

    /// Insert a positive pair, recording it in the current epoch's log
    /// (untracked evidence just inserts). Returns `true` if the pair was
    /// new.
    pub fn insert_positive(&mut self, pair: Pair) -> bool {
        let new = self.positive.insert(pair);
        if new && self.tracked {
            self.log.push(pair);
        }
        new
    }

    /// Retract a positive pair, recording a tombstone in the current
    /// epoch's retraction log (untracked evidence just removes). The
    /// non-monotone mutator behind `DatasetDelta` rollback: sessions use
    /// it to withdraw caller-supplied evidence that mentions retracted
    /// entities. Returns `true` if the pair was present.
    ///
    /// The insertion log is *not* rewritten — earlier epochs keep the
    /// pair in their windows; consumers replaying history apply each
    /// window's insertions, then its retractions.
    pub fn retract_positive(&mut self, pair: Pair) -> bool {
        let removed = self.positive.remove(pair);
        if removed && self.tracked {
            self.retract_log.push(pair);
        }
        removed
    }

    /// Retract a negative pair. The negative set has no epoch log (no
    /// scheduler consumes negative deltas), so this is a plain removal.
    /// Returns `true` if the pair was present.
    pub fn retract_negative(&mut self, pair: Pair) -> bool {
        self.negative.remove(pair)
    }

    /// The pairs retracted at epoch `since` or later, in retraction
    /// order, as a borrowed slice of the tombstone log (the retraction
    /// counterpart of [`Evidence::delta_since`]). Epochs later than the
    /// current one yield an empty slice.
    pub fn retractions_since(&self, since: Epoch) -> &[Pair] {
        match self.retract_epoch_starts.get(since.0 as usize) {
            Some(&start) => &self.retract_log[start..],
            None => &[],
        }
    }

    /// Insert every pair of `other` into the positive set (new pairs are
    /// logged in sorted order so runs are reproducible regardless of the
    /// source set's iteration order). Returns the number of new pairs.
    pub fn union_positive(&mut self, other: &PairSet) -> usize {
        if !self.tracked {
            return self.positive.union_with(other);
        }
        let mut fresh: Vec<Pair> = other
            .iter()
            .filter(|p| !self.positive.contains(*p))
            .collect();
        fresh.sort_unstable();
        for &p in &fresh {
            self.positive.insert(p);
            self.log.push(p);
        }
        fresh.len()
    }

    /// Consume the evidence, returning the positive set (the framework's
    /// final `M+` extraction).
    pub fn into_positive(self) -> PairSet {
        self.positive
    }

    /// Whether insertions are logged (see the `tracked` field): `true`
    /// for accumulators, `false` for per-neighborhood snapshots and
    /// probe evidence.
    pub fn is_tracked(&self) -> bool {
        self.tracked
    }

    /// The raw epoch history, read-only: `(log, epoch_starts,
    /// retract_log, retract_epoch_starts)`. Durable-session capture
    /// persists these so a restored accumulator answers
    /// [`Evidence::delta_since`] / [`Evidence::retractions_since`]
    /// exactly like the live one; untracked evidence exposes empty logs.
    pub fn epoch_parts(&self) -> (&[Pair], &[usize], &[Pair], &[usize]) {
        (
            &self.log,
            &self.epoch_starts,
            &self.retract_log,
            &self.retract_epoch_starts,
        )
    }

    /// Reassemble tracked evidence from previously walked parts — the
    /// decode half of [`Evidence::epoch_parts`]. Unlike
    /// [`Evidence::from_parts`] the epoch history is restored verbatim
    /// instead of being reset to a single epoch-0 window.
    ///
    /// # Panics
    /// Panics if the supplied history does not replay to `positive`
    /// (the [`Evidence::validate_log`] invariant) or if either
    /// epoch-start list is empty.
    pub fn from_epoch_parts(
        positive: PairSet,
        negative: PairSet,
        log: Vec<Pair>,
        epoch_starts: Vec<usize>,
        retract_log: Vec<Pair>,
        retract_epoch_starts: Vec<usize>,
    ) -> Self {
        assert!(
            !epoch_starts.is_empty(),
            "epoch-start lists always hold at least the epoch-0 fence"
        );
        assert_eq!(
            epoch_starts.len(),
            retract_epoch_starts.len(),
            "insertion and retraction fences advance in lockstep"
        );
        let ev = Self {
            positive,
            negative,
            tracked: true,
            log,
            epoch_starts,
            retract_log,
            retract_epoch_starts,
        };
        if let Err(err) = ev.validate_log() {
            panic!("restored evidence history is inconsistent: {err}");
        }
        ev
    }

    /// Replay the epoch history and check that it reproduces the current
    /// positive set — the invariant every `delta_since` /
    /// `retractions_since` consumer silently relies on. Per epoch window
    /// the replay applies insertions first, then retractions (the
    /// documented consumer order). Returns the number of epochs replayed
    /// on success, or a description of the first divergence.
    ///
    /// Untracked evidence keeps no log and trivially validates (0 epochs).
    pub fn validate_log(&self) -> Result<usize, String> {
        if !self.tracked {
            return Ok(0);
        }
        let mut replayed = PairSet::new();
        let epochs = self.epoch_starts.len();
        for e in 0..epochs {
            let ins_start = self.epoch_starts[e];
            let ins_end = self
                .epoch_starts
                .get(e + 1)
                .copied()
                .unwrap_or(self.log.len());
            for &p in &self.log[ins_start..ins_end] {
                replayed.insert(p);
            }
            let ret_start = self.retract_epoch_starts[e];
            let ret_end = self
                .retract_epoch_starts
                .get(e + 1)
                .copied()
                .unwrap_or(self.retract_log.len());
            for &p in &self.retract_log[ret_start..ret_end] {
                replayed.remove(p);
            }
        }
        if replayed != self.positive {
            let missing = self
                .positive
                .iter()
                .filter(|p| !replayed.contains(*p))
                .count();
            let extra = replayed
                .iter()
                .filter(|p| !self.positive.contains(*p))
                .count();
            return Err(format!(
                "epoch log replay diverges from positive set: \
                 {missing} pairs missing from replay, {extra} extra"
            ));
        }
        Ok(epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    #[test]
    fn constructors() {
        assert!(Evidence::none().is_empty());
        let ev = Evidence::positive([p(0, 1)].into_iter().collect());
        assert_eq!(ev.positive.len(), 1);
        assert!(ev.negative.is_empty());
        assert!(!ev.is_empty());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_evidence_panics() {
        let s: PairSet = [p(0, 1)].into_iter().collect();
        let _ = Evidence::new(s.clone(), s);
    }

    #[test]
    fn from_parts_skips_the_disjointness_check() {
        let s: PairSet = [p(0, 1)].into_iter().collect();
        let ev = Evidence::from_parts(s.clone(), s);
        assert_eq!(ev.positive, ev.negative);
    }

    #[test]
    fn with_extra_positive_does_not_mutate_original() {
        let ev = Evidence::positive([p(0, 1)].into_iter().collect());
        let ev2 = ev.with_extra_positive(p(2, 3));
        assert_eq!(ev.positive.len(), 1);
        assert_eq!(ev2.positive.len(), 2);
        assert!(ev2.positive.contains(p(2, 3)));
        assert_eq!(ev.negative, ev2.negative);
    }

    #[test]
    fn initial_evidence_lands_in_epoch_zero() {
        let ev = Evidence::positive([p(2, 3), p(0, 1)].into_iter().collect());
        assert_eq!(ev.epoch(), Epoch(0));
        // Sorted for reproducibility regardless of set iteration order.
        assert_eq!(ev.delta_since(Epoch(0)), &[p(0, 1), p(2, 3)]);
    }

    #[test]
    fn delta_is_empty_immediately_after_a_fence() {
        let mut ev = Evidence::positive([p(0, 1)].into_iter().collect());
        let fence = ev.advance_epoch();
        assert_eq!(fence, Epoch(1));
        assert!(ev.delta_since(fence).is_empty());
        // The pre-fence pair is still visible from epoch 0.
        assert_eq!(ev.delta_since(Epoch(0)), &[p(0, 1)]);
    }

    #[test]
    fn delta_merges_across_epochs() {
        let mut ev = Evidence::none();
        let e1 = ev.advance_epoch();
        ev.insert_positive(p(0, 1));
        let e2 = ev.advance_epoch();
        ev.insert_positive(p(2, 3));
        ev.insert_positive(p(4, 5));
        assert_eq!(ev.delta_since(e1), &[p(0, 1), p(2, 3), p(4, 5)]);
        assert_eq!(ev.delta_since(e2), &[p(2, 3), p(4, 5)]);
        assert_eq!(ev.epoch(), e2);
    }

    #[test]
    fn duplicate_inserts_are_not_logged_twice() {
        let mut ev = Evidence::none();
        assert!(ev.insert_positive(p(0, 1)));
        assert!(!ev.insert_positive(p(0, 1)));
        let other: PairSet = [p(0, 1), p(2, 3)].into_iter().collect();
        assert_eq!(ev.union_positive(&other), 1);
        assert_eq!(ev.delta_since(Epoch(0)), &[p(0, 1), p(2, 3)]);
        assert_eq!(ev.positive.len(), 2);
    }

    #[test]
    fn future_epochs_yield_empty_deltas() {
        let ev = Evidence::positive([p(0, 1)].into_iter().collect());
        assert!(ev.delta_since(Epoch(7)).is_empty());
    }

    #[test]
    fn untracked_evidence_keeps_no_log() {
        let mut ev = Evidence::untracked([p(0, 1)].into_iter().collect(), PairSet::new());
        ev.insert_positive(p(2, 3));
        let other: PairSet = [p(4, 5)].into_iter().collect();
        ev.union_positive(&other);
        assert_eq!(ev.positive.len(), 3);
        assert!(ev.delta_since(Epoch(0)).is_empty(), "no log is kept");
        // Probe evidence derived from a tracked accumulator is untracked.
        let tracked = Evidence::positive([p(0, 1)].into_iter().collect());
        let probe = tracked.with_extra_positive(p(8, 9));
        assert!(probe.positive.contains(p(8, 9)));
        assert!(probe.delta_since(Epoch(0)).is_empty());
    }

    #[test]
    fn retraction_tombstones_land_in_their_epoch() {
        let mut ev = Evidence::positive([p(0, 1), p(2, 3)].into_iter().collect());
        let fence = ev.advance_epoch();
        assert!(ev.retract_positive(p(0, 1)));
        assert!(!ev.retract_positive(p(0, 1)), "already gone");
        assert!(!ev.positive.contains(p(0, 1)));
        assert_eq!(ev.retractions_since(fence), &[p(0, 1)]);
        assert_eq!(ev.retractions_since(Epoch(0)), &[p(0, 1)]);
        // The insertion log keeps history; the next fence empties both.
        assert_eq!(ev.delta_since(Epoch(0)), &[p(0, 1), p(2, 3)]);
        let later = ev.advance_epoch();
        assert!(ev.retractions_since(later).is_empty());
        assert!(ev.retractions_since(Epoch(9)).is_empty());
        // Re-insertion after retraction logs a fresh insertion.
        assert!(ev.insert_positive(p(0, 1)));
        assert_eq!(ev.delta_since(later), &[p(0, 1)]);
    }

    #[test]
    fn negative_retraction_is_a_plain_removal() {
        let mut ev = Evidence::new(PairSet::new(), [p(4, 5)].into_iter().collect());
        assert!(ev.retract_negative(p(4, 5)));
        assert!(!ev.retract_negative(p(4, 5)));
        assert!(ev.negative.is_empty());
    }

    #[test]
    fn untracked_retractions_keep_no_log() {
        let mut ev = Evidence::untracked([p(0, 1)].into_iter().collect(), PairSet::new());
        assert!(ev.retract_positive(p(0, 1)));
        assert!(ev.retractions_since(Epoch(0)).is_empty());
    }

    #[test]
    fn validate_log_replays_insertions_and_retractions() {
        let mut ev = Evidence::positive([p(0, 1), p(2, 3)].into_iter().collect());
        ev.advance_epoch();
        ev.insert_positive(p(4, 5));
        ev.retract_positive(p(0, 1));
        ev.advance_epoch();
        ev.insert_positive(p(0, 1)); // re-insert after tombstone
        assert_eq!(ev.validate_log(), Ok(3));

        // Untracked values trivially validate.
        let untracked = Evidence::untracked([p(0, 1)].into_iter().collect(), PairSet::new());
        assert_eq!(untracked.validate_log(), Ok(0));

        // Direct mutation of `positive` bypasses the log and is caught.
        ev.positive.insert(p(8, 9));
        assert!(ev.validate_log().is_err());
    }

    #[test]
    fn equality_ignores_epoch_history() {
        let mut a = Evidence::none();
        a.insert_positive(p(0, 1));
        a.advance_epoch();
        a.insert_positive(p(2, 3));
        let b = Evidence::positive([p(0, 1), p(2, 3)].into_iter().collect());
        assert_eq!(a, b);
    }
}
