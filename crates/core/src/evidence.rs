//! Evidence sets `V+` / `V−` (Definition 1 of the paper).
//!
//! A Type-I matcher takes, besides the entities, a set `V+` of pairs known
//! to be matches and a set `V−` of pairs known to be non-matches. The
//! framework drives matchers almost exclusively through `V+` (found matches
//! become positive evidence for later runs); `V−` is exposed for users who
//! have hard "cannot match" knowledge (e.g. hand-labelled non-matches).

use crate::pair::{Pair, PairSet};

/// Positive and negative evidence for a matcher invocation.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// Pairs known to be matches.
    pub positive: PairSet,
    /// Pairs known to be non-matches.
    pub negative: PairSet,
}

impl Evidence {
    /// No evidence.
    pub fn none() -> Self {
        Self::default()
    }

    /// Only positive evidence.
    pub fn positive(positive: PairSet) -> Self {
        Self {
            positive,
            negative: PairSet::new(),
        }
    }

    /// Both evidence sets.
    ///
    /// # Panics
    /// Panics if the sets overlap — a pair cannot be both a known match and
    /// a known non-match.
    pub fn new(positive: PairSet, negative: PairSet) -> Self {
        assert!(
            positive.is_disjoint(&negative),
            "positive and negative evidence overlap"
        );
        Self { positive, negative }
    }

    /// Evidence with `extra` added to the positive set (used by
    /// `COMPUTEMAXIMAL`, which conditions on one extra hypothetical match).
    pub fn with_extra_positive(&self, extra: Pair) -> Self {
        let mut positive = self.positive.clone();
        positive.insert(extra);
        Self {
            positive,
            negative: self.negative.clone(),
        }
    }

    /// Whether both sets are empty.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    #[test]
    fn constructors() {
        assert!(Evidence::none().is_empty());
        let ev = Evidence::positive([p(0, 1)].into_iter().collect());
        assert_eq!(ev.positive.len(), 1);
        assert!(ev.negative.is_empty());
        assert!(!ev.is_empty());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_evidence_panics() {
        let s: PairSet = [p(0, 1)].into_iter().collect();
        let _ = Evidence::new(s.clone(), s);
    }

    #[test]
    fn with_extra_positive_does_not_mutate_original() {
        let ev = Evidence::positive([p(0, 1)].into_iter().collect());
        let ev2 = ev.with_extra_positive(p(2, 3));
        assert_eq!(ev.positive.len(), 1);
        assert_eq!(ev2.positive.len(), 2);
        assert!(ev2.positive.contains(p(2, 3)));
        assert_eq!(ev.negative, ev2.negative);
    }
}
