//! Reference matchers for tests, examples, and cross-validation.
//!
//! * [`TableMatcher`] — a brute-force Type-II matcher over an explicit
//!   weighted model (unary pair weights + positive synergy hyperedges).
//!   It enumerates *all* assignments, so it is an exact oracle for the
//!   supermodular MAP semantics: larger crates (e.g. the MLN matcher's
//!   min-cut inference) are validated against it on random instances.
//!   It also directly encodes the paper's running example (§2.1, Figures
//!   1–2) with `R1 = −5`, `R2 = +8`.
//! * [`IterativeToyMatcher`] — a tiny iterative (Type-I) matcher in the
//!   style of Bhattacharya & Getoor: sim-3 pairs match outright, sim-2
//!   pairs match when a coauthor witness pair is matched; runs to fixpoint
//!   within the view. Monotone and idempotent by construction.
//!
//! The module lives in the library (not behind `cfg(test)`) because
//! downstream crates and examples use these matchers too.

use crate::dataset::{Dataset, View};
use crate::entity::EntityId;
use crate::evidence::Evidence;
use crate::hash::FxHashMap;
use crate::matcher::{GlobalScorer, Matcher, ProbabilisticMatcher, Score};
use crate::pair::{Pair, PairSet};
use crate::relation::RelationId;

/// A synergy hyperedge: weight `w > 0` awarded when every pair in `vars`
/// is matched, provided every entity in `required_entities` is present in
/// the view. The entity requirement models groundings whose witnesses are
/// non-candidate entities (e.g. the paper's `d1`, which makes
/// `Match(c1, c2)` profitable only inside neighborhoods containing `d1`).
#[derive(Debug, Clone)]
pub struct SynergyEdge {
    /// Pairs that must all be matched for the edge to fire.
    pub vars: Vec<Pair>,
    /// Entities that must be in the view for the edge to exist.
    pub required_entities: Vec<EntityId>,
    /// Positive weight.
    pub weight: Score,
}

/// Exact brute-force probabilistic matcher over an explicit model.
#[derive(Debug, Default, Clone)]
pub struct TableMatcher {
    unary: FxHashMap<Pair, Score>,
    edges: Vec<SynergyEdge>,
}

/// Brute force is exponential; cap the variable count loudly.
const MAX_BRUTE_FORCE_VARS: usize = 25;

impl TableMatcher {
    /// Empty model (every pair scores zero; nothing ever matches).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the unary weight of a pair (the net `R1`-style weight of
    /// matching it on its own).
    pub fn set_unary(&mut self, pair: Pair, weight: Score) -> &mut Self {
        self.unary.insert(pair, weight);
        self
    }

    /// Add a synergy edge.
    ///
    /// # Panics
    /// Panics if the weight is not strictly positive (negative synergies
    /// break supermodularity, and with it every guarantee this matcher is
    /// used to validate).
    pub fn add_edge(
        &mut self,
        vars: impl IntoIterator<Item = Pair>,
        required_entities: impl IntoIterator<Item = EntityId>,
        weight: Score,
    ) -> &mut Self {
        assert!(
            weight > Score::ZERO,
            "synergy edges must have positive weight"
        );
        self.edges.push(SynergyEdge {
            vars: vars.into_iter().collect(),
            required_entities: required_entities.into_iter().collect(),
            weight,
        });
        self
    }

    fn unary_of(&self, pair: Pair) -> Score {
        self.unary.get(&pair).copied().unwrap_or(Score::ZERO)
    }

    /// Edges whose requirements are satisfiable inside `view` over `vars`.
    fn active_edges<'a>(&'a self, view: &View<'_>, vars: &PairSet) -> Vec<&'a SynergyEdge> {
        self.edges
            .iter()
            .filter(|e| {
                e.required_entities.iter().all(|&ent| view.contains(ent))
                    && e.vars.iter().all(|p| vars.contains(*p))
            })
            .collect()
    }

    fn score_set(unary: &[Score], edges: &[(u32, Score)], mask: u32) -> Score {
        let mut total = Score::ZERO;
        for (i, u) in unary.iter().enumerate() {
            if mask & (1 << i) != 0 {
                total += *u;
            }
        }
        for &(edge_mask, w) in edges {
            if mask & edge_mask == edge_mask {
                total += w;
            }
        }
        total
    }
}

impl Matcher for TableMatcher {
    fn match_view(&self, view: &View<'_>, evidence: &Evidence) -> PairSet {
        // Match variables: the view's candidate pairs minus hard negatives.
        let all_vars: PairSet = view.candidate_pairs().into_iter().map(|(p, _)| p).collect();
        let vars: PairSet = all_vars
            .iter()
            .filter(|p| !evidence.negative.contains(*p))
            .collect();
        let forced: Vec<Pair> = vars
            .iter()
            .filter(|p| evidence.positive.contains(*p))
            .collect();
        let mut free: Vec<Pair> = vars
            .iter()
            .filter(|p| !evidence.positive.contains(*p))
            .collect();
        free.sort_unstable();
        assert!(
            free.len() <= MAX_BRUTE_FORCE_VARS,
            "TableMatcher brute force limited to {MAX_BRUTE_FORCE_VARS} free vars, got {}",
            free.len()
        );

        let index: FxHashMap<Pair, usize> = free.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let unary: Vec<Score> = free.iter().map(|p| self.unary_of(*p)).collect();
        // Pre-translate edges into bitmasks over the free vars; edges with
        // a forced var drop that var, edges with a negative-evidence var
        // were already excluded by `vars`.
        let mut base = Score::ZERO;
        for p in &forced {
            base += self.unary_of(*p);
        }
        let mut edges: Vec<(u32, Score)> = Vec::new();
        'edge: for e in self.active_edges(view, &vars) {
            let mut mask = 0u32;
            for p in &e.vars {
                if evidence.positive.contains(*p) {
                    continue; // satisfied by evidence
                }
                match index.get(p) {
                    Some(&i) => mask |= 1 << i,
                    None => continue 'edge, // unreachable given active_edges
                }
            }
            if mask == 0 {
                base += e.weight; // fires unconditionally given evidence
            } else {
                edges.push((mask, e.weight));
            }
        }

        // Exhaustive search for the maximum; collect the union of all
        // maximizers. For supermodular models the union is itself optimal
        // ("largest most-likely set", Definition 5's tie-break).
        let mut best = Score::ZERO;
        let mut union_mask = 0u32;
        let mut best_mask = 0u32;
        for mask in 0..(1u32 << free.len()) {
            let s = Self::score_set(&unary, &edges, mask);
            match s.cmp(&best) {
                std::cmp::Ordering::Greater => {
                    best = s;
                    union_mask = mask;
                    best_mask = mask;
                }
                std::cmp::Ordering::Equal => {
                    union_mask |= mask;
                    if mask.count_ones() > best_mask.count_ones() {
                        best_mask = mask;
                    }
                }
                std::cmp::Ordering::Less => {}
            }
        }
        let chosen = if Self::score_set(&unary, &edges, union_mask) == best {
            union_mask
        } else {
            best_mask
        };
        let _ = base; // base shifts all assignments equally; irrelevant to argmax

        let mut out = PairSet::new();
        for (i, p) in free.iter().enumerate() {
            if chosen & (1 << i) != 0 {
                out.insert(*p);
            }
        }
        for p in forced {
            out.insert(p);
        }
        out
    }

    fn name(&self) -> &str {
        "table"
    }
}

impl ProbabilisticMatcher for TableMatcher {
    fn log_score(&self, view: &View<'_>, matches: &PairSet) -> Score {
        let vars: PairSet = view.candidate_pairs().into_iter().map(|(p, _)| p).collect();
        let mut total = Score::ZERO;
        for p in matches.iter() {
            if vars.contains(p) {
                total += self.unary_of(p);
            }
        }
        for e in self.active_edges(view, &vars) {
            if e.vars.iter().all(|p| matches.contains(*p)) {
                total += e.weight;
            }
        }
        total
    }

    fn global_scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
    ) -> Box<dyn GlobalScorer + Send + Sync + 'a> {
        Box::new(TableScorer {
            matcher: self,
            dataset,
        })
    }
}

/// Global scorer for [`TableMatcher`]: every edge is active (the full
/// dataset contains all entities).
struct TableScorer<'a> {
    matcher: &'a TableMatcher,
    dataset: &'a Dataset,
}

impl GlobalScorer for TableScorer<'_> {
    fn delta(&self, base: &PairSet, added: &[Pair]) -> Score {
        let mut total = Score::ZERO;
        for &p in added {
            if !base.contains(p) && self.dataset.is_candidate(p) {
                total += self.matcher.unary_of(p);
            }
        }
        let in_new = |p: &Pair| base.contains(*p) || added.contains(p);
        for e in &self.matcher.edges {
            let was_fired = e.vars.iter().all(|p| base.contains(*p));
            if !was_fired && e.vars.iter().all(in_new) {
                total += e.weight;
            }
        }
        total
    }

    fn score(&self, matches: &PairSet) -> Score {
        let mut total = Score::ZERO;
        for p in matches.iter() {
            if self.dataset.is_candidate(p) {
                total += self.matcher.unary_of(p);
            }
        }
        for e in &self.matcher.edges {
            if e.vars.iter().all(|p| matches.contains(*p)) {
                total += e.weight;
            }
        }
        total
    }

    fn affected_pairs(&self, pair: Pair) -> Vec<Pair> {
        let mut out: Vec<Pair> = self
            .matcher
            .edges
            .iter()
            .filter(|e| e.vars.contains(&pair))
            .flat_map(|e| e.vars.iter().copied())
            .filter(|&q| q != pair)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Iterative relational matcher (Type-I): sim-3 pairs match outright,
/// pairs at or above `witness_level` match once a coauthor witness pair is
/// matched (or the two sides share a witness entity). Runs to fixpoint.
#[derive(Debug, Clone)]
pub struct IterativeToyMatcher {
    relation: RelationId,
    /// Similarity level at which a pair matches unconditionally.
    pub direct_level: u8,
    /// Similarity level at which a witness suffices.
    pub witness_level: u8,
}

impl IterativeToyMatcher {
    /// Matcher using `relation` for witnesses, with the default levels
    /// (3 = direct, 2 = witness-supported).
    pub fn new(relation: RelationId) -> Self {
        Self {
            relation,
            direct_level: 3,
            witness_level: 2,
        }
    }

    fn has_witness(&self, view: &View<'_>, pair: Pair, matched: &PairSet) -> bool {
        let rels = &view.dataset().relations;
        for &c1 in rels.neighbors_out(self.relation, pair.lo()) {
            if !view.contains(c1) {
                continue;
            }
            for &c2 in rels.neighbors_out(self.relation, pair.hi()) {
                if !view.contains(c2) {
                    continue;
                }
                if c1 == c2 || matched.contains(Pair::new(c1, c2)) {
                    return true;
                }
            }
        }
        false
    }
}

impl Matcher for IterativeToyMatcher {
    fn match_view(&self, view: &View<'_>, evidence: &Evidence) -> PairSet {
        let candidates = view.candidate_pairs();
        let mut matched: PairSet = evidence
            .positive
            .iter()
            .filter(|p| view.contains_pair(*p) && !evidence.negative.contains(*p))
            .collect();
        // Direct matches first.
        for &(p, level) in &candidates {
            if level.0 >= self.direct_level && !evidence.negative.contains(p) {
                matched.insert(p);
            }
        }
        // Witness-supported matches to fixpoint.
        loop {
            let mut grew = false;
            for &(p, level) in &candidates {
                if level.0 >= self.witness_level
                    && !matched.contains(p)
                    && !evidence.negative.contains(p)
                    && self.has_witness(view, p, &matched)
                {
                    matched.insert(p);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        matched
    }

    fn name(&self) -> &str {
        "iterative-toy"
    }
}

/// Build the paper's running example (§2.1, Figures 1 and 2).
///
/// Returns `(dataset, cover, matcher, expected_full_run)` where the cover
/// is the three neighborhoods of Figure 2 and the matcher encodes
/// `R1 = −5`, `R2 = +8`. Entity ids: `a1,a2 = 0,1`, `b1,b2,b3 = 2,3,4`,
/// `c1,c2,c3 = 5,6,7`, `d1 = 8`.
pub fn paper_example() -> (Dataset, crate::cover::Cover, TableMatcher, PairSet) {
    use crate::dataset::SimLevel;

    let e = EntityId;
    let (a1, a2) = (e(0), e(1));
    let (b1, b2, b3) = (e(2), e(3), e(4));
    let (c1, c2, c3) = (e(5), e(6), e(7));
    let d1 = e(8);

    let mut ds = Dataset::new();
    let ty = ds.entities.intern_type("author_ref");
    for _ in 0..9 {
        ds.entities.add_entity(ty);
    }
    let co = ds.relations.declare("coauthor", true);
    for (x, y) in [
        (a1, b2),
        (a2, b3),
        (b1, c1),
        (b2, c2),
        (b3, c3),
        (c1, d1),
        (c2, d1),
    ] {
        ds.relations.add_tuple(co, x, y);
    }
    for (x, y) in [
        (a1, a2),
        (b1, b2),
        (b1, b3),
        (b2, b3),
        (c1, c2),
        (c1, c3),
        (c2, c3),
    ] {
        ds.set_similar(Pair::new(x, y), SimLevel(2));
    }

    let r1 = Score::from_weight(-5.0);
    let r2 = Score::from_weight(8.0);
    let mut matcher = TableMatcher::new();
    for (p, _) in ds.candidate_pairs() {
        matcher.set_unary(p, r1);
    }
    // R2 groundings (deduplicated by unordered variable set, as in the
    // paper's weight accounting):
    matcher.add_edge([Pair::new(a1, a2), Pair::new(b2, b3)], [], r2);
    matcher.add_edge([Pair::new(b2, b3), Pair::new(c2, c3)], [], r2);
    matcher.add_edge([Pair::new(b1, b2), Pair::new(c1, c2)], [], r2);
    matcher.add_edge([Pair::new(b1, b3), Pair::new(c1, c3)], [], r2);
    // Reflexive grounding via the shared coauthor d1: Match(c1, c2)
    // profits +8 in any view containing d1 (footnote 1 of the paper).
    matcher.add_edge([Pair::new(c1, c2)], [d1], r2);

    let cover = crate::cover::Cover::from_neighborhoods(vec![
        vec![a1, a2, b2, b3],
        vec![b1, b2, b3, c1, c2, c3],
        vec![c1, c2, d1],
    ]);

    let expected: PairSet = [
        Pair::new(c1, c2),
        Pair::new(b1, b2),
        Pair::new(a1, a2),
        Pair::new(b2, b3),
        Pair::new(c2, c3),
    ]
    .into_iter()
    .collect();

    (ds, cover, matcher, expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SimLevel;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    #[test]
    fn paper_example_full_run_matches_walkthrough() {
        let (ds, _cover, matcher, expected) = paper_example();
        let full = ds.full_view();
        let out = matcher.match_view(&full, &Evidence::none());
        assert_eq!(out, expected, "full run must match §2.1's optimum");
        // And the optimum's score is +7 = 3 (c-pair via d1) + 3 (b1,b2 via
        // c-pair) + 1 (the three-pair chain).
        assert_eq!(matcher.log_score(&full, &out), Score::from_weight(7.0));
        assert_eq!(
            matcher.log_score(&full, &PairSet::new()),
            Score::ZERO,
            "empty assignment scores 0 as in the paper"
        );
    }

    #[test]
    fn table_matcher_respects_negative_evidence() {
        let (ds, _cover, matcher, _) = paper_example();
        let full = ds.full_view();
        let neg: PairSet = [Pair::new(e(5), e(6))].into_iter().collect();
        let out = matcher.match_view(&full, &Evidence::new(PairSet::new(), neg));
        assert!(!out.contains(Pair::new(e(5), e(6))));
        // Without (c1,c2), (b1,b2) loses its synergy and must drop too.
        assert!(!out.contains(Pair::new(e(2), e(3))));
        // The chain is independent of (c1,c2) and survives.
        assert!(out.contains(Pair::new(e(0), e(1))));
    }

    #[test]
    fn table_matcher_echoes_positive_evidence() {
        let (ds, cover, matcher, _) = paper_example();
        let view = cover.view(&ds, crate::cover::NeighborhoodId(0));
        let pos: PairSet = [Pair::new(e(3), e(4))].into_iter().collect();
        let out = matcher.match_view(&view, &Evidence::positive(pos));
        assert!(out.contains(Pair::new(e(3), e(4))));
        // With (b2,b3) given, (a1,a2) becomes profitable inside C1.
        assert!(out.contains(Pair::new(e(0), e(1))));
    }

    #[test]
    fn global_scorer_delta_matches_absolute_scores() {
        let (ds, _cover, matcher, expected) = paper_example();
        let scorer = matcher.global_scorer(&ds);
        let empty = PairSet::new();
        let all: Vec<Pair> = expected.to_sorted_vec();
        assert_eq!(scorer.delta(&empty, &all), scorer.score(&expected));
        // Chain alone has delta +1.
        let chain = [
            Pair::new(e(0), e(1)),
            Pair::new(e(3), e(4)),
            Pair::new(e(6), e(7)),
        ];
        assert_eq!(scorer.delta(&empty, &chain), Score::from_weight(1.0));
        // A single chain pair alone has delta −5.
        assert_eq!(scorer.delta(&empty, &chain[..1]), Score::from_weight(-5.0));
    }

    #[test]
    fn iterative_toy_matcher_fixpoint() {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..6 {
            ds.entities.add_entity(ty);
        }
        let co = ds.relations.declare("coauthor", true);
        // Two "J. Doe"s (0,1) with coauthors "M. Smith"s (2,3); smiths are
        // sim-3, does are sim-2.
        ds.relations.add_tuple(co, e(0), e(2));
        ds.relations.add_tuple(co, e(1), e(3));
        ds.set_similar(Pair::new(e(2), e(3)), SimLevel(3));
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2));
        let matcher = IterativeToyMatcher::new(co);
        let out = matcher.match_view(&ds.full_view(), &Evidence::none());
        assert!(out.contains(Pair::new(e(2), e(3))), "direct sim-3 match");
        assert!(
            out.contains(Pair::new(e(0), e(1))),
            "witness-supported match propagates"
        );
    }

    #[test]
    fn iterative_toy_matcher_shared_witness_entity() {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..3 {
            ds.entities.add_entity(ty);
        }
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(0), e(2));
        ds.relations.add_tuple(co, e(1), e(2));
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2));
        let matcher = IterativeToyMatcher::new(co);
        let out = matcher.match_view(&ds.full_view(), &Evidence::none());
        assert!(out.contains(Pair::new(e(0), e(1))));
    }
}
