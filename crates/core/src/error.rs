//! Error type for cover/dataset validation.

use crate::entity::EntityId;
use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Validation errors surfaced by the framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A neighborhood references an entity id outside the dataset.
    UnknownEntity(EntityId),
    /// The neighborhoods do not cover every entity.
    NotACover {
        /// An entity contained in no neighborhood.
        missing: EntityId,
    },
    /// The cover is not total: a relation tuple is contained in no
    /// neighborhood (Definition 7 violated).
    NotTotal {
        /// Relation (or `"similar"`) owning the lost tuple.
        relation: String,
        /// First endpoint of the lost tuple.
        a: EntityId,
        /// Second endpoint of the lost tuple.
        b: EntityId,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownEntity(e) => write!(f, "entity {e} is not in the dataset"),
            Error::NotACover { missing } => {
                write!(f, "not a cover: entity {missing} is in no neighborhood")
            }
            Error::NotTotal { relation, a, b } => write!(
                f,
                "not a total cover: {relation}({a}, {b}) is contained in no neighborhood"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = Error::NotTotal {
            relation: "coauthor".into(),
            a: EntityId(1),
            b: EntityId(2),
        };
        assert!(e.to_string().contains("coauthor(e1, e2)"));
        assert!(Error::UnknownEntity(EntityId(7)).to_string().contains("e7"));
        assert!(Error::NotACover {
            missing: EntityId(3)
        }
        .to_string()
        .contains("e3"));
    }
}
