//! Unordered entity pairs and sets of pairs.
//!
//! A *match decision* in the paper is over an unordered pair of distinct
//! entities; the `equals` predicate is symmetric and reflexivity is implicit
//! (footnote 1 of the paper). [`Pair`] canonicalizes the order so that
//! `(a, b)` and `(b, a)` are the same key, and [`PairSet`] is the set type
//! used for matcher outputs, evidence sets, and messages throughout the
//! framework.

use crate::entity::EntityId;
use crate::hash::FxHashSet;
use std::fmt;

/// An unordered pair of *distinct* entities, stored with `lo < hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pair {
    lo: EntityId,
    hi: EntityId,
}

impl Pair {
    /// Build a canonical pair from two distinct entity ids.
    ///
    /// # Panics
    /// Panics if `a == b`: reflexive matches are implicit evidence and must
    /// never appear as match variables.
    #[inline]
    pub fn new(a: EntityId, b: EntityId) -> Self {
        assert_ne!(a, b, "reflexive pair ({a}, {a}) is not a match variable");
        if a < b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// The smaller entity id.
    #[inline]
    pub fn lo(self) -> EntityId {
        self.lo
    }

    /// The larger entity id.
    #[inline]
    pub fn hi(self) -> EntityId {
        self.hi
    }

    /// Both endpoints, ascending.
    #[inline]
    pub fn endpoints(self) -> [EntityId; 2] {
        [self.lo, self.hi]
    }

    /// Whether `e` is one of the endpoints.
    #[inline]
    pub fn contains(self, e: EntityId) -> bool {
        self.lo == e || self.hi == e
    }

    /// The endpoint that is not `e`.
    ///
    /// # Panics
    /// Panics if `e` is not an endpoint.
    #[inline]
    pub fn other(self, e: EntityId) -> EntityId {
        if e == self.lo {
            self.hi
        } else if e == self.hi {
            self.lo
        } else {
            panic!("{e} is not an endpoint of {self}")
        }
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

/// A set of match pairs.
///
/// This is the framework's currency: matcher outputs, positive/negative
/// evidence, simple messages, and maximal messages are all `PairSet`s.
#[derive(Debug, Default, Clone)]
pub struct PairSet {
    inner: FxHashSet<Pair>,
}

impl PairSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty set with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: FxHashSet::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Insert a pair; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, pair: Pair) -> bool {
        self.inner.insert(pair)
    }

    /// Remove a pair; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, pair: Pair) -> bool {
        self.inner.remove(&pair)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, pair: Pair) -> bool {
        self.inner.contains(&pair)
    }

    /// Number of pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate over the pairs in arbitrary (but deterministic per-build) order.
    pub fn iter(&self) -> impl Iterator<Item = Pair> + '_ {
        self.inner.iter().copied()
    }

    /// Insert every pair from `other`; returns the number of new pairs.
    pub fn union_with(&mut self, other: &PairSet) -> usize {
        let before = self.inner.len();
        self.inner.extend(other.inner.iter().copied());
        self.inner.len() - before
    }

    /// Pairs in `self` that are not in `other`.
    pub fn difference(&self, other: &PairSet) -> PairSet {
        PairSet {
            inner: self.inner.difference(&other.inner).copied().collect(),
        }
    }

    /// Pairs in both sets.
    pub fn intersection(&self, other: &PairSet) -> PairSet {
        PairSet {
            inner: self.inner.intersection(&other.inner).copied().collect(),
        }
    }

    /// Number of pairs present in both sets (no allocation).
    pub fn intersection_len(&self, other: &PairSet) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.iter().filter(|p| large.contains(*p)).count()
    }

    /// Whether every pair of `self` is in `other`.
    pub fn is_subset(&self, other: &PairSet) -> bool {
        self.inner.is_subset(&other.inner)
    }

    /// Whether the sets share no pair.
    pub fn is_disjoint(&self, other: &PairSet) -> bool {
        self.inner.is_disjoint(&other.inner)
    }

    /// The pairs as a sorted vector (canonical order, for deterministic output).
    pub fn to_sorted_vec(&self) -> Vec<Pair> {
        let mut v: Vec<Pair> = self.inner.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

impl PartialEq for PairSet {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl Eq for PairSet {}

impl FromIterator<Pair> for PairSet {
    fn from_iter<I: IntoIterator<Item = Pair>>(iter: I) -> Self {
        Self {
            inner: iter.into_iter().collect(),
        }
    }
}

impl Extend<Pair> for PairSet {
    fn extend<I: IntoIterator<Item = Pair>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PairSet {
    type Item = Pair;
    type IntoIter = std::iter::Copied<std::collections::hash_set::Iter<'a, Pair>>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter().copied()
    }
}

impl fmt::Display for PairSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.to_sorted_vec().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    #[test]
    fn pair_canonicalizes_order() {
        assert_eq!(Pair::new(e(3), e(1)), Pair::new(e(1), e(3)));
        let p = Pair::new(e(5), e(2));
        assert_eq!(p.lo(), e(2));
        assert_eq!(p.hi(), e(5));
        assert!(p.contains(e(2)));
        assert!(!p.contains(e(3)));
        assert_eq!(p.other(e(2)), e(5));
    }

    #[test]
    #[should_panic(expected = "reflexive")]
    fn reflexive_pair_panics() {
        let _ = Pair::new(e(1), e(1));
    }

    #[test]
    fn set_operations() {
        let a: PairSet = [Pair::new(e(0), e(1)), Pair::new(e(1), e(2))]
            .into_iter()
            .collect();
        let b: PairSet = [Pair::new(e(1), e(2)), Pair::new(e(2), e(3))]
            .into_iter()
            .collect();
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.intersection_len(&b), 1);
        assert_eq!(a.difference(&b).len(), 1);
        assert!(!a.is_subset(&b));
        assert!(a.intersection(&b).is_subset(&a));
        let mut c = a.clone();
        assert_eq!(c.union_with(&b), 1);
        assert_eq!(c.len(), 3);
        assert!(a.is_subset(&c));
        assert!(b.is_subset(&c));
    }

    #[test]
    fn union_with_counts_only_new_pairs() {
        let mut a = PairSet::new();
        a.insert(Pair::new(e(0), e(1)));
        let b: PairSet = [Pair::new(e(0), e(1))].into_iter().collect();
        assert_eq!(a.union_with(&b), 0);
    }

    #[test]
    fn sorted_vec_is_canonical() {
        let s: PairSet = [
            Pair::new(e(5), e(4)),
            Pair::new(e(0), e(9)),
            Pair::new(e(2), e(1)),
        ]
        .into_iter()
        .collect();
        let v = s.to_sorted_vec();
        assert_eq!(
            v,
            vec![
                Pair::new(e(0), e(9)),
                Pair::new(e(1), e(2)),
                Pair::new(e(4), e(5)),
            ]
        );
    }

    #[test]
    fn display_formats() {
        let p = Pair::new(e(2), e(1));
        assert_eq!(p.to_string(), "(e1, e2)");
        let s: PairSet = [p].into_iter().collect();
        assert_eq!(s.to_string(), "{(e1, e2)}");
    }
}
