//! Black-box matcher abstractions (§3 of the paper).
//!
//! * [`Matcher`] is the **Type-I** (deterministic) abstraction
//!   (Definition 1): a function from `(entities, V+, V−)` to a set of
//!   matches. Any entity-matching algorithm can be wrapped in it; the
//!   evidence sets may simply be ignored (such a matcher is trivially
//!   idempotent).
//! * [`ProbabilisticMatcher`] is the **Type-II** abstraction
//!   (Definition 5): the matcher is backed by a probability distribution
//!   over match sets, of which the output is the largest most-likely set.
//!   The framework never needs normalized probabilities — the maximal
//!   message-passing scheme only compares `P(S ∪ M)` against `P(S)`, so the
//!   trait exposes an *unnormalized log-score* (the partition function
//!   cancels). Scores are fixed-point integers so comparisons are exact and
//!   runs are bit-for-bit reproducible.
//!
//! Well-behavedness (Definition 4 = idempotence + monotonicity) is a
//! *semantic* contract that cannot be expressed in the type system; the
//! [`crate::properties`] module provides a randomized checker for it.

use crate::dataset::{Dataset, View};
use crate::evidence::Evidence;
use crate::pair::{Pair, PairSet};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub};

/// Fixed-point log-score in milli-units (weight `-2.28` ⇒ `Score(-2280)`).
///
/// Using integers instead of `f64` makes the supermodularity checks in MMP
/// exact: `score(M+ ∪ M) ≥ score(M+)` never depends on floating-point
/// rounding, which in turn keeps the soundness guarantee airtight.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Score(pub i64);

impl Score {
    /// Zero score.
    pub const ZERO: Score = Score(0);

    /// Build from a floating-point weight (e.g. learned MLN weights).
    pub fn from_weight(w: f64) -> Self {
        Score((w * 1000.0).round() as i64)
    }

    /// The score as a floating-point weight.
    pub fn to_weight(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl Add for Score {
    type Output = Score;
    fn add(self, rhs: Score) -> Score {
        Score(self.0 + rhs.0)
    }
}

impl AddAssign for Score {
    fn add_assign(&mut self, rhs: Score) {
        self.0 += rhs.0;
    }
}

impl Sub for Score {
    type Output = Score;
    fn sub(self, rhs: Score) -> Score {
        Score(self.0 - rhs.0)
    }
}

impl Neg for Score {
    type Output = Score;
    fn neg(self) -> Score {
        Score(-self.0)
    }
}

impl std::iter::Sum for Score {
    fn sum<I: Iterator<Item = Score>>(iter: I) -> Score {
        Score(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.to_weight())
    }
}

/// Type-I (deterministic) entity matcher — Definition 1.
///
/// Implementations must treat the view as the *entire world*: entities
/// outside `view` do not exist for this invocation. Evidence pairs whose
/// endpoints fall outside the view should be ignored; positive evidence
/// pairs inside the view must appear in the output (so that idempotence,
/// Definition 2, can hold).
pub trait Matcher {
    /// Run the matcher on `view` with evidence, returning the matched pairs.
    fn match_view(&self, view: &View<'_>, evidence: &Evidence) -> PairSet;

    /// Batched conditioned probes: for each probe pair `p`, the
    /// *additional* matches it entails —
    /// `match_view(view, evidence ∪ {p}) − base − {p}` — where `base`
    /// must be this matcher's output for `(view, evidence)`.
    ///
    /// `COMPUTEMAXIMAL` (Algorithm 2) issues one conditioned call per
    /// undecided candidate pair of a neighborhood; this hook lets
    /// matchers amortize shared work (grounding, base inference) across
    /// the batch and return only the (small) deltas. The default
    /// implementation is the plain black-box loop, so overriding it is
    /// purely an optimization — results must be identical.
    fn probe_entailed(
        &self,
        view: &View<'_>,
        evidence: &Evidence,
        base: &PairSet,
        probes: &[Pair],
    ) -> Vec<Vec<Pair>> {
        probes
            .iter()
            .map(|&p| {
                self.match_view(view, &evidence.with_extra_positive(p))
                    .iter()
                    .filter(|&q| !base.contains(q) && q != p)
                    .collect()
            })
            .collect()
    }

    /// Batched conditioned probes **with score-gap certificates**: like
    /// [`Matcher::probe_entailed`], but each probe additionally reports
    /// the margin by which its accepted assignment beat the best
    /// rejected alternative the matcher considered — the gap a later
    /// evidence delta must overcome before the probe's result can
    /// change (see `em_core::framework::certificates`).
    ///
    /// The default returns `None`: the matcher produces no gap evidence
    /// and the framework falls back to [`Matcher::probe_entailed`] with
    /// no certificates recorded — every delta-touched probe then
    /// re-issues, which is always sound. Local-search backends override
    /// this; exact backends keep the default (their replay is justified
    /// by component factorization, not by gaps).
    fn probe_certificate(
        &self,
        view: &View<'_>,
        evidence: &Evidence,
        base: &PairSet,
        probes: &[Pair],
    ) -> Option<Vec<(Vec<Pair>, Score)>> {
        let _ = (view, evidence, base, probes);
        None
    }

    /// Human-readable name used in reports and logs.
    fn name(&self) -> &str {
        "matcher"
    }

    /// Drop any internal memoization keyed by dataset identity or view
    /// contents. Long-lived sessions call this after mutating their
    /// dataset **in place** (growth that links existing entities,
    /// retraction) — address-keyed caches (a grounding cache, a
    /// `(view, evidence)` fingerprint memo) would otherwise replay
    /// pre-mutation results. Stateless matchers keep the default no-op.
    fn invalidate_caches(&self) {}
}

/// Type-II (probabilistic) entity matcher — Definition 5.
///
/// The matcher is backed by a distribution `P_E` over match sets; its
/// Type-I output is the largest most-likely set. `log_score` exposes
/// `log P_E(S)` up to the additive normalization constant.
pub trait ProbabilisticMatcher: Matcher {
    /// Unnormalized log-probability of the complete assignment `matches`
    /// over `view` (all candidate pairs of the view not in `matches` are
    /// considered non-matches).
    fn log_score(&self, view: &View<'_>, matches: &PairSet) -> Score;

    /// Build a scorer over the *whole dataset*, used by MMP's step 7 to
    /// evaluate `P_E(M+ ∪ M) ≥ P_E(M+)` globally without re-running
    /// inference, and by incremental `COMPUTEMAXIMAL` to flood-fill the
    /// ground-interaction components a delta touches. Implementations
    /// typically ground the model once and answer deltas from an index;
    /// the scorer is shared read-only across parallel workers, hence the
    /// `Send + Sync` bound.
    fn global_scorer<'a>(
        &'a self,
        dataset: &'a Dataset,
    ) -> Box<dyn GlobalScorer + Send + Sync + 'a>;
}

/// Incremental global score oracle: answers "what happens to the score if
/// `added` joins the match set `base`?".
pub trait GlobalScorer {
    /// `score(base ∪ added) − score(base)`.
    ///
    /// `added` pairs already in `base` contribute nothing.
    fn delta(&self, base: &PairSet, added: &[Pair]) -> Score;

    /// Absolute unnormalized log-score of a match set.
    fn score(&self, matches: &PairSet) -> Score;

    /// Pairs whose score interaction with `pair` is non-zero — i.e. the
    /// pairs co-occurring with it in some ground term. MMP uses this to
    /// re-examine only the maximal messages whose promotion delta can
    /// actually have changed when `pair` becomes a match: for
    /// supermodular models, `delta(M+, M)` changes only when a new match
    /// shares a ground edge with a member of `M`.
    fn affected_pairs(&self, pair: Pair) -> Vec<Pair>;

    /// Upper bound on the total score weight the ground terms touching
    /// `pair` can contribute — the pair's share of a delta's *clause
    /// footprint*, summed over a delta's seed pairs and compared against
    /// score-gap certificates (see
    /// `em_core::framework::certificates::gap_breached`).
    ///
    /// The default is a huge sentinel: a scorer that cannot bound the
    /// touched weight breaches every finite certificate, degrading to
    /// re-probe — always sound. Grounded-model scorers override it with
    /// the summed absolute weights of the pair's incident clauses.
    fn touched_weight(&self, pair: Pair) -> Score {
        let _ = pair;
        Score(i64::MAX / 4)
    }
}

/// Output of one framework run: the matches plus bookkeeping counters.
#[derive(Debug, Clone, Default)]
pub struct MatchOutput {
    /// Final set of matches.
    pub matches: PairSet,
    /// Execution statistics (matcher invocations, messages, …).
    pub stats: crate::framework::RunStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_fixed_point_round_trip() {
        let s = Score::from_weight(-2.28);
        assert_eq!(s, Score(-2280));
        assert!((s.to_weight() - (-2.28)).abs() < 1e-9);
        assert_eq!(Score::from_weight(12.75), Score(12750));
    }

    #[test]
    fn score_arithmetic() {
        let a = Score(100);
        let b = Score(-30);
        assert_eq!(a + b, Score(70));
        assert_eq!(a - b, Score(130));
        assert_eq!(-a, Score(-100));
        let mut c = a;
        c += b;
        assert_eq!(c, Score(70));
        let total: Score = [a, b, Score(5)].into_iter().sum();
        assert_eq!(total, Score(75));
    }

    #[test]
    fn score_ordering_is_exact() {
        // The MMP promotion check `delta >= 0` must be exact at zero.
        assert!(Score(0) >= Score::ZERO);
        assert!(Score(-1) < Score::ZERO);
        assert!(Score(1) > Score::ZERO);
    }

    #[test]
    fn score_displays_as_weight() {
        assert_eq!(Score(2460).to_string(), "2.460");
        assert_eq!(Score(-3840).to_string(), "-3.840");
    }
}
