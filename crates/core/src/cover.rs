//! Covers and neighborhoods (§4 of the paper).
//!
//! A *neighborhood* is a subset of the entities; a *cover* is a set of
//! (possibly overlapping) neighborhoods whose union is the entity set.
//! A cover is *total* w.r.t. the relations (Definition 7) when every
//! relation tuple — and, in our formulation, every candidate pair — is
//! fully contained in at least one neighborhood; tuples crossing all
//! neighborhood boundaries would otherwise be invisible to every matcher
//! run ("lost"). Any cover can be made total by expanding each neighborhood
//! with its relational *boundary*; [`Cover::expand_to_total`] implements
//! exactly that construction.
//!
//! The cover also maintains the entity → neighborhoods index that the
//! message-passing schemes use to find which neighborhoods a new match
//! reactivates (`Neighbor(·)` in Algorithms 1 and 3).

use crate::dataset::Dataset;
use crate::entity::EntityId;
use crate::error::{Error, Result};
use crate::hash::FxHashSet;
use crate::pair::Pair;
use std::fmt;

/// Index of a neighborhood within a [`Cover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NeighborhoodId(pub u32);

impl NeighborhoodId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NeighborhoodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A cover: neighborhoods plus the entity → neighborhoods reverse index.
#[derive(Debug, Clone, Default)]
pub struct Cover {
    /// Members of each neighborhood, sorted ascending and deduplicated.
    neighborhoods: Vec<Vec<EntityId>>,
    /// `containing[e]` = ids of neighborhoods containing entity `e`,
    /// ascending.
    containing: Vec<Vec<NeighborhoodId>>,
}

impl Cover {
    /// Build a cover from raw neighborhoods (each is deduplicated and
    /// sorted; empty neighborhoods are dropped).
    pub fn from_neighborhoods<I, N>(neighborhoods: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: IntoIterator<Item = EntityId>,
    {
        let mut nbhds: Vec<Vec<EntityId>> = Vec::new();
        for n in neighborhoods {
            let mut members: Vec<EntityId> = n.into_iter().collect();
            members.sort_unstable();
            members.dedup();
            if !members.is_empty() {
                nbhds.push(members);
            }
        }
        let mut cover = Self {
            neighborhoods: nbhds,
            containing: Vec::new(),
        };
        cover.rebuild_index();
        cover
    }

    fn rebuild_index(&mut self) {
        let max_entity = self
            .neighborhoods
            .iter()
            .flat_map(|n| n.iter())
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0);
        let mut containing: Vec<Vec<NeighborhoodId>> = vec![Vec::new(); max_entity];
        for (i, members) in self.neighborhoods.iter().enumerate() {
            for e in members {
                containing[e.index()].push(NeighborhoodId(i as u32));
            }
        }
        self.containing = containing;
    }

    /// Number of neighborhoods (the `n` in the paper's complexity bounds).
    pub fn len(&self) -> usize {
        self.neighborhoods.len()
    }

    /// Whether the cover has no neighborhoods.
    pub fn is_empty(&self) -> bool {
        self.neighborhoods.is_empty()
    }

    /// Ids of all neighborhoods.
    pub fn ids(&self) -> impl Iterator<Item = NeighborhoodId> {
        (0..self.neighborhoods.len() as u32).map(NeighborhoodId)
    }

    /// Members of neighborhood `id`, ascending.
    pub fn members(&self, id: NeighborhoodId) -> &[EntityId] {
        &self.neighborhoods[id.index()]
    }

    /// Size of the largest neighborhood (the `k` in the complexity bounds).
    pub fn max_size(&self) -> usize {
        self.neighborhoods.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Neighborhoods containing entity `e`.
    pub fn containing_entity(&self, e: EntityId) -> &[NeighborhoodId] {
        self.containing.get(e.index()).map_or(&[], Vec::as_slice)
    }

    /// Neighborhoods containing *both* endpoints of `pair` — the
    /// neighborhoods for which the pair can serve as evidence. Computed as
    /// a sorted-list intersection of the two endpoint indexes.
    pub fn containing_pair(&self, pair: Pair) -> Vec<NeighborhoodId> {
        let a = self.containing_entity(pair.lo());
        let b = self.containing_entity(pair.hi());
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// A [`crate::dataset::View`] of neighborhood `id` over `dataset`.
    pub fn view<'a>(&self, dataset: &'a Dataset, id: NeighborhoodId) -> crate::dataset::View<'a> {
        dataset.view(self.members(id).iter().copied())
    }

    /// Check that the neighborhoods cover every *live* entity of the
    /// dataset (retracted entities need no coverage — blocking never
    /// emits them and their tuples and candidate pairs are purged at
    /// retraction).
    pub fn validate_cover(&self, dataset: &Dataset) -> Result<()> {
        let mut covered = vec![false; dataset.entities.len()];
        for n in &self.neighborhoods {
            for e in n {
                if e.index() >= covered.len() {
                    return Err(Error::UnknownEntity(*e));
                }
                covered[e.index()] = true;
            }
        }
        if let Some(missing) = covered
            .iter()
            .enumerate()
            .position(|(i, c)| !c && !dataset.entities.is_retracted(EntityId(i as u32)))
        {
            return Err(Error::NotACover {
                missing: EntityId(missing as u32),
            });
        }
        Ok(())
    }

    /// Check Definition 7: every relation tuple and every candidate pair is
    /// contained in some neighborhood.
    pub fn validate_total(&self, dataset: &Dataset) -> Result<()> {
        self.validate_cover(dataset)?;
        for rel in dataset.relations.ids() {
            for &(a, b) in dataset.relations.tuples(rel) {
                if a != b && self.containing_pair(Pair::new(a, b)).is_empty() {
                    return Err(Error::NotTotal {
                        relation: dataset.relations.name(rel).to_owned(),
                        a,
                        b,
                    });
                }
            }
        }
        for (pair, _) in dataset.candidate_pairs() {
            if self.containing_pair(pair).is_empty() {
                return Err(Error::NotTotal {
                    relation: "similar".to_owned(),
                    a: pair.lo(),
                    b: pair.hi(),
                });
            }
        }
        Ok(())
    }

    /// Expand every neighborhood with its relational boundary — the
    /// entities sharing a relation tuple with a member (§4: the cover is
    /// built "by first constructing a total cover over Similar … and then
    /// taking the boundary of each neighborhood with respect to *other*
    /// relations"). Candidate pairs are expected to already be contained
    /// in the input neighborhoods (canopies generate them within
    /// themselves), so similarity adjacency is deliberately *not*
    /// expanded — doing so would chain overlapping canopies back into
    /// giant neighborhoods.
    ///
    /// `hops` controls how many boundary expansions are applied; the
    /// paper's construction is one hop.
    pub fn expand_to_total(&self, dataset: &Dataset, hops: usize) -> Cover {
        let mut neighborhoods = self.neighborhoods.clone();
        for _ in 0..hops {
            for members in &mut neighborhoods {
                let mut set: FxHashSet<EntityId> = members.iter().copied().collect();
                let snapshot: Vec<EntityId> = members.clone();
                for &e in &snapshot {
                    for rel in dataset.relations.ids() {
                        for &f in dataset.relations.neighbors_out(rel, e) {
                            set.insert(f);
                        }
                        for &f in dataset.relations.neighbors_in(rel, e) {
                            set.insert(f);
                        }
                    }
                }
                let mut expanded: Vec<EntityId> = set.into_iter().collect();
                expanded.sort_unstable();
                *members = expanded;
            }
        }
        Cover::from_neighborhoods(neighborhoods)
    }

    /// Summary statistics of the cover, for reports.
    pub fn stats(&self, dataset: &Dataset) -> CoverStats {
        let sizes: Vec<usize> = self.neighborhoods.iter().map(Vec::len).collect();
        let total_pairs: usize = self
            .ids()
            .map(|id| self.view(dataset, id).candidate_pairs().len())
            .sum();
        let total_members: usize = sizes.iter().sum();
        CoverStats {
            neighborhoods: sizes.len(),
            max_size: sizes.iter().copied().max().unwrap_or(0),
            mean_size: if sizes.is_empty() {
                0.0
            } else {
                total_members as f64 / sizes.len() as f64
            },
            total_candidate_pairs: total_pairs,
        }
    }
}

/// Aggregate cover statistics (the numbers the paper reports per dataset:
/// "13K neighborhoods containing a total of 1.3M entity pairs").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverStats {
    /// Number of neighborhoods.
    pub neighborhoods: usize,
    /// Largest neighborhood size.
    pub max_size: usize,
    /// Mean neighborhood size.
    pub mean_size: f64,
    /// Candidate pairs summed over neighborhoods (with multiplicity).
    pub total_candidate_pairs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SimLevel;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    /// Figure 1/2 style dataset: chain of coauthor edges with similar pairs.
    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..6 {
            ds.entities.add_entity(ty);
        }
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(0), e(2)); // a1 - b1
        ds.relations.add_tuple(co, e(1), e(3)); // a2 - b2
        ds.relations.add_tuple(co, e(2), e(4)); // b1 - c1
        ds.relations.add_tuple(co, e(3), e(5)); // b2 - c2
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2)); // a1 ~ a2
        ds.set_similar(Pair::new(e(2), e(3)), SimLevel(2)); // b1 ~ b2
        ds.set_similar(Pair::new(e(4), e(5)), SimLevel(2)); // c1 ~ c2
        ds
    }

    #[test]
    fn from_neighborhoods_normalizes() {
        let cover = Cover::from_neighborhoods(vec![vec![e(2), e(0), e(2)], vec![], vec![e(1)]]);
        assert_eq!(cover.len(), 2);
        assert_eq!(cover.members(NeighborhoodId(0)), &[e(0), e(2)]);
    }

    #[test]
    fn containing_indexes_work() {
        let cover = Cover::from_neighborhoods(vec![
            vec![e(0), e(1), e(2)],
            vec![e(2), e(3)],
            vec![e(0), e(3)],
        ]);
        assert_eq!(
            cover.containing_entity(e(0)),
            &[NeighborhoodId(0), NeighborhoodId(2)]
        );
        assert_eq!(
            cover.containing_pair(Pair::new(e(0), e(2))),
            vec![NeighborhoodId(0)]
        );
        assert_eq!(
            cover.containing_pair(Pair::new(e(2), e(3))),
            vec![NeighborhoodId(1)]
        );
        assert!(cover.containing_pair(Pair::new(e(1), e(3))).is_empty());
    }

    #[test]
    fn validate_cover_detects_missing_entity() {
        let ds = dataset();
        let incomplete = Cover::from_neighborhoods(vec![vec![e(0), e(1), e(2), e(3), e(4)]]);
        assert!(matches!(
            incomplete.validate_cover(&ds),
            Err(Error::NotACover { missing }) if missing == e(5)
        ));
        let complete =
            Cover::from_neighborhoods(vec![vec![e(0), e(1), e(2)], vec![e(3), e(4), e(5)]]);
        assert!(complete.validate_cover(&ds).is_ok());
    }

    #[test]
    fn validate_total_detects_lost_tuples() {
        let ds = dataset();
        // Splits the coauthor edge (b1, c1) = (e2, e4) across neighborhoods.
        let cover = Cover::from_neighborhoods(vec![vec![e(0), e(1), e(2), e(3)], vec![e(4), e(5)]]);
        assert!(cover.validate_cover(&ds).is_ok());
        assert!(matches!(
            cover.validate_total(&ds),
            Err(Error::NotTotal { .. })
        ));
    }

    #[test]
    fn boundary_expansion_yields_total_cover() {
        let ds = dataset();
        // Canopy-style cover over Similar only: each similar pair is one
        // neighborhood — this is a cover but not total w.r.t. coauthor.
        let canopies =
            Cover::from_neighborhoods(vec![vec![e(0), e(1)], vec![e(2), e(3)], vec![e(4), e(5)]]);
        assert!(canopies.validate_total(&ds).is_err());
        let total = canopies.expand_to_total(&ds, 1);
        assert!(total.validate_total(&ds).is_ok());
        // Neighborhood 0 (a1, a2) gains coauthor boundary b1, b2.
        assert_eq!(total.members(NeighborhoodId(0)), &[e(0), e(1), e(2), e(3)]);
    }

    #[test]
    fn stats_count_pairs_with_multiplicity() {
        let ds = dataset();
        let cover = Cover::from_neighborhoods(vec![
            vec![e(0), e(1), e(2), e(3)],
            vec![e(2), e(3), e(4), e(5)],
        ]);
        let stats = cover.stats(&ds);
        assert_eq!(stats.neighborhoods, 2);
        assert_eq!(stats.max_size, 4);
        // (a1,a2) + (b1,b2) in C0; (b1,b2) + (c1,c2) in C1.
        assert_eq!(stats.total_candidate_pairs, 4);
    }
}
