//! Score-gap certificates: bounded probe reuse for approximate matchers.
//!
//! Exact supermodular matchers replay memoized conditioned probes
//! soundly because MAP inference factorizes over ground-interaction
//! components — the argument behind [`super::compute_maximal_incremental`].
//! Approximate backends (MaxWalkSAT) have no such factorization: any
//! change to the grounding can, in principle, steer the search to a
//! different local optimum. The fallback so far was probe-everything.
//!
//! A **score-gap certificate** closes most of that gap. When a
//! local-search probe accepts an assignment, the search has also seen a
//! best *rejected* alternative; the difference of their scores is the
//! probe's **gap** — the minimum total clause weight a later delta must
//! move before a different assignment can win. On re-evaluation, the
//! delta's clause footprint (the summed [`touched
//! weight`](crate::matcher::GlobalScorer::touched_weight) of the pairs
//! that changed) is compared against each memoized probe's gap: probes
//! whose gap exceeds the footprint (scaled by the configured slack)
//! are **elided** — their memoized result replays — and only breached
//! certificates force a re-probe.
//!
//! The bound is honest but heuristic: local search does not enumerate
//! all assignments, so the recorded gap is the margin over the
//! alternatives the search *visited*, not a global second-best. The
//! bench harness therefore measures divergence against the
//! probe-everything arm instead of claiming byte-identity; on all
//! committed datasets the measured divergence is zero and CI asserts it
//! stays so. Surviving certificates are *weakened* by each absorbed
//! footprint, so sustained churn eventually breaches them rather than
//! replaying forever against a stale margin.
//!
//! Lifecycle mirrors the probe memos: a [`CertificateSet`] rides next to
//! each neighborhood's [`super::ProbeMemo`] (pooled per run in a
//! [`CertificatePool`], banked across runs in a [`CertificateBank`]
//! parallel to [`super::MemoBank`]). Dropping a certificate is always
//! safe — the pair just re-probes — so recovery paths (shard
//! re-execution, rollback) may discard them freely.

use crate::cover::NeighborhoodId;
use crate::dataset::View;
use crate::entity::EntityId;
use crate::hash::{FxHashMap, FxHashSet};
use crate::matcher::Score;
use crate::pair::{Pair, PairSet};

/// Gap recorded when a probe saw no rejected alternative at all: no
/// finite delta footprint observed so far can breach it. Kept well away
/// from `i64::MAX` so footprint sums cannot overflow comparisons.
pub const UNBOUNDED_GAP: Score = Score(i64::MAX / 4);

/// Whether a delta `footprint` breaches a certificate `gap` under
/// `slack`. Slack scales the footprint: `1.0` is the measured-honest
/// default, larger values breach earlier (more conservative), and an
/// infinite slack breaches every certificate — the probe-everything
/// degradation.
pub fn gap_breached(footprint: Score, gap: Score, slack: f64) -> bool {
    if slack.is_infinite() {
        return true;
    }
    footprint.to_weight() * slack >= gap.to_weight()
}

/// One neighborhood's score-gap certificates: for each probed pair, the
/// margin by which its accepted probe assignment beat the best rejected
/// alternative the search visited.
#[derive(Debug, Default, Clone)]
pub struct CertificateSet {
    gaps: FxHashMap<Pair, Score>,
}

impl CertificateSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of certified pairs.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// Whether no pair is certified.
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Record (or overwrite) a pair's gap.
    pub fn record(&mut self, pair: Pair, gap: Score) {
        self.gaps.insert(pair, gap);
    }

    /// The pair's current gap, if certified.
    pub fn gap(&self, pair: Pair) -> Option<Score> {
        self.gaps.get(&pair).copied()
    }

    /// Drop a pair's certificate (breached, or its probe left the memo).
    pub fn remove(&mut self, pair: Pair) -> Option<Score> {
        self.gaps.remove(&pair)
    }

    /// Weaken a surviving certificate by an absorbed delta footprint:
    /// the margin the footprint may have consumed is subtracted, so
    /// repeated sub-gap deltas accumulate toward a breach instead of
    /// each being judged against the original gap.
    pub fn weaken(&mut self, pair: Pair, spent: Score) {
        if let Some(gap) = self.gaps.get_mut(&pair) {
            gap.0 = gap.0.saturating_sub(spent.0.max(0));
        }
    }

    /// Keep only the certificates whose pair satisfies `keep`.
    pub fn retain(&mut self, mut keep: impl FnMut(Pair) -> bool) {
        self.gaps.retain(|&p, _| keep(p));
    }

    /// Visit every certified pair with its gap (arbitrary order).
    pub fn for_each(&self, mut visit: impl FnMut(Pair, Score)) {
        for (&p, &gap) in &self.gaps {
            visit(p, gap);
        }
    }
}

/// The per-neighborhood [`CertificateSet`]s of one run — the certificate
/// sibling of [`super::MemoPool`]. Certificates are a pair-to-integer
/// map (tiny next to the probe memos), so the pool is unbounded: memo
/// eviction already bounds what a certificate could ever elide.
#[derive(Debug, Clone)]
pub struct CertificatePool {
    sets: Vec<CertificateSet>,
}

impl CertificatePool {
    /// Pool of `n` empty sets.
    pub fn new(n: usize) -> Self {
        Self {
            sets: vec![CertificateSet::new(); n],
        }
    }

    /// Take neighborhood `id`'s set out of the pool (replaced by an
    /// empty one until [`CertificatePool::put`] returns it).
    pub fn take(&mut self, id: NeighborhoodId) -> CertificateSet {
        std::mem::take(&mut self.sets[id.index()])
    }

    /// Store `set` as neighborhood `id`'s.
    pub fn put(&mut self, id: NeighborhoodId, set: CertificateSet) {
        self.sets[id.index()] = set;
    }

    /// Read access to neighborhood `id`'s set.
    pub fn get(&self, id: NeighborhoodId) -> &CertificateSet {
        &self.sets[id.index()]
    }

    /// Drain every non-empty set out of the pool (cross-run
    /// warm-starting moves them into a [`CertificateBank`]).
    pub fn drain(&mut self) -> Vec<(NeighborhoodId, CertificateSet)> {
        self.sets
            .iter_mut()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (NeighborhoodId(i as u32), std::mem::take(s)))
            .collect()
    }
}

/// Cross-run store of per-neighborhood [`CertificateSet`]s, keyed by the
/// view's member list exactly like [`super::MemoBank`] — the certificate
/// half of a warm start.
///
/// A banked certificate is only meaningful next to the probe memo it was
/// recorded with, so callers withdraw certificates **only at the call
/// sites where the memo withdrawal succeeded** (same key discipline);
/// a certificate withdrawn without its memo would certify a probe that
/// is about to be re-issued anyway. Dropping entries is always safe.
#[derive(Debug, Default, Clone)]
pub struct CertificateBank {
    entries: FxHashMap<Vec<EntityId>, CertificateSet>,
}

impl CertificateBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of banked neighborhoods.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bank holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Store `set` under the member list of `view`; empty sets are
    /// dropped rather than banked.
    pub fn deposit(&mut self, view: &View<'_>, set: CertificateSet) {
        if set.is_empty() {
            self.entries.remove(view.members());
        } else {
            self.entries.insert(view.members().to_vec(), set);
        }
    }

    /// Merge another bank's entries into this one (shards deposit into
    /// private banks; the coordinator folds them together).
    pub fn absorb(&mut self, other: CertificateBank) {
        self.entries.extend(other.entries);
    }

    /// Take the set banked for the *predecessor* of `view` in a grown
    /// dataset: the key is the view's members below `entity_floor`, the
    /// same predecessor identity [`super::MemoBank::withdraw_grown`]
    /// resolves. The entry is removed either way. Callers must only use
    /// the result when the corresponding memo withdrawal succeeded.
    pub fn withdraw_grown(&mut self, view: &View<'_>, entity_floor: u32) -> Option<CertificateSet> {
        let old_members: Vec<EntityId> = view
            .members()
            .iter()
            .copied()
            .filter(|e| e.0 < entity_floor)
            .collect();
        self.entries.remove(&old_members)
    }

    /// Visit every banked entry — the member key and its certificate
    /// set — read-only, in arbitrary order. The durable-session encoder
    /// walks this; consumers needing determinism must sort by the
    /// member key.
    pub fn for_each_entry(&self, mut visit: impl FnMut(&[EntityId], &CertificateSet)) {
        for (members, set) in &self.entries {
            visit(members, set);
        }
    }

    /// Insert one banked entry verbatim under `members` — the decode
    /// half of [`CertificateBank::for_each_entry`]. Unlike
    /// [`CertificateBank::deposit`] this keys on the raw member list (no
    /// view needed); empty sets are still dropped.
    pub fn insert_raw(&mut self, members: Vec<EntityId>, set: CertificateSet) {
        if !set.is_empty() {
            self.entries.insert(members, set);
        }
    }

    /// Rollback hygiene after a perturbing delta: entries containing a
    /// `gone` member are re-keyed under their surviving member list, and
    /// every certificate for a pair that mentions a gone entity or sits
    /// in the `invalid` closure is dropped (its probe re-issues, so a
    /// stale gap must not elide it). Entries left empty are removed.
    /// Returns the number of certificates dropped.
    pub fn rollback(&mut self, gone: &FxHashSet<EntityId>, invalid: &PairSet) -> usize {
        let mut dropped = 0;
        let dead_pair =
            |p: Pair| gone.contains(&p.lo()) || gone.contains(&p.hi()) || invalid.contains(p);
        let keys: Vec<Vec<EntityId>> = self.entries.keys().cloned().collect();
        for key in keys {
            let touched_key = key.iter().any(|e| gone.contains(e));
            let mut entry = match self.entries.remove(&key) {
                Some(e) => e,
                None => continue,
            };
            let before = entry.len();
            entry.retain(|p| !dead_pair(p));
            dropped += before - entry.len();
            if entry.is_empty() {
                continue;
            }
            let new_key = if touched_key {
                let survivors: Vec<EntityId> =
                    key.iter().copied().filter(|e| !gone.contains(e)).collect();
                if survivors.is_empty() {
                    continue;
                }
                survivors
            } else {
                key
            };
            self.entries.insert(new_key, entry);
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    #[test]
    fn breach_respects_slack() {
        let gap = Score::from_weight(2.0);
        assert!(!gap_breached(Score::from_weight(1.0), gap, 1.0));
        assert!(gap_breached(Score::from_weight(2.0), gap, 1.0));
        assert!(gap_breached(Score::from_weight(1.0), gap, 2.0));
        // Infinite slack breaches everything, even an unbounded gap.
        assert!(gap_breached(Score::ZERO, UNBOUNDED_GAP, f64::INFINITY));
        assert!(!gap_breached(Score::from_weight(1e6), UNBOUNDED_GAP, 1.0));
    }

    #[test]
    fn weaken_accumulates_toward_breach() {
        let mut set = CertificateSet::new();
        set.record(p(0, 1), Score::from_weight(3.0));
        let footprint = Score::from_weight(2.0);
        assert!(!gap_breached(footprint, set.gap(p(0, 1)).unwrap(), 1.0));
        set.weaken(p(0, 1), footprint);
        // The second identical footprint now breaches the residual gap.
        assert!(gap_breached(footprint, set.gap(p(0, 1)).unwrap(), 1.0));
        // Weakening never underflows.
        set.weaken(p(0, 1), Score(i64::MAX));
        assert!(set.gap(p(0, 1)).unwrap().0 <= 0);
    }

    #[test]
    fn pool_takes_and_puts_by_neighborhood() {
        let mut pool = CertificatePool::new(2);
        let mut set = CertificateSet::new();
        set.record(p(0, 1), Score(500));
        pool.put(NeighborhoodId(1), set);
        assert!(pool.get(NeighborhoodId(0)).is_empty());
        assert_eq!(pool.get(NeighborhoodId(1)).len(), 1);
        let taken = pool.take(NeighborhoodId(1));
        assert_eq!(taken.len(), 1);
        assert!(pool.get(NeighborhoodId(1)).is_empty());
        pool.put(NeighborhoodId(1), taken);
        assert_eq!(pool.drain().len(), 1);
        assert!(pool.get(NeighborhoodId(1)).is_empty());
    }

    #[test]
    fn bank_rollback_rekeys_and_drops_dead_pairs() {
        use crate::dataset::{Dataset, SimLevel};
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..4 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(p(0, 1), SimLevel(2));
        ds.set_similar(p(1, 2), SimLevel(2));
        let mut bank = CertificateBank::new();
        let mut set = CertificateSet::new();
        set.record(p(0, 1), Score(100));
        set.record(p(1, 2), Score(200));
        bank.deposit(&ds.view([EntityId(0), EntityId(1), EntityId(2)]), set);

        let gone: FxHashSet<EntityId> = [EntityId(0)].into_iter().collect();
        let dropped = bank.rollback(&gone, &PairSet::new());
        assert_eq!(dropped, 1, "the pair touching entity 0 is dropped");
        // The survivor re-keys under {1, 2} and withdraws there.
        let view = ds.view([EntityId(1), EntityId(2), EntityId(3)]);
        let got = bank.withdraw_grown(&view, 3).expect("rekeyed entry");
        assert_eq!(got.gap(p(1, 2)), Some(Score(200)));
        assert!(bank.is_empty());
    }

    #[test]
    fn bank_rollback_invalid_closure_drops_certificates_in_place() {
        use crate::dataset::{Dataset, SimLevel};
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..3 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(p(0, 1), SimLevel(2));
        let mut bank = CertificateBank::new();
        let mut set = CertificateSet::new();
        set.record(p(0, 1), Score(100));
        set.record(p(0, 2), Score(300));
        bank.deposit(&ds.view([EntityId(0), EntityId(1), EntityId(2)]), set);
        let invalid: PairSet = [p(0, 1)].into_iter().collect();
        assert_eq!(bank.rollback(&FxHashSet::default(), &invalid), 1);
        let view = ds.view([EntityId(0), EntityId(1), EntityId(2)]);
        let got = bank.withdraw_grown(&view, 3).expect("key unchanged");
        assert_eq!(got.gap(p(0, 1)), None, "invalid pair dropped");
        assert_eq!(got.gap(p(0, 2)), Some(Score(300)));
    }

    #[test]
    fn empty_deposit_clears_the_slot() {
        use crate::dataset::Dataset;
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        ds.entities.add_entity(ty);
        ds.entities.add_entity(ty);
        let view = ds.view([EntityId(0), EntityId(1)]);
        let mut bank = CertificateBank::new();
        let mut set = CertificateSet::new();
        set.record(p(0, 1), Score(1));
        bank.deposit(&view, set);
        assert_eq!(bank.len(), 1);
        bank.deposit(&view, CertificateSet::new());
        assert!(bank.is_empty());
    }
}
