//! The pair → neighborhood dependency index behind the delta scheduler.
//!
//! Message passing converges because new evidence only perturbs the
//! neighborhoods that *share pairs* with the delta (the paper's own
//! scaling argument). Acting on that requires answering "which
//! neighborhoods can use pair `p` as evidence?" for every pair of every
//! delta — previously an ad-hoc `Cover::containing_pair` sorted-list
//! intersection (with a fresh allocation) per pair per message. The
//! [`DependencyIndex`] is built **once** per run from the [`Cover`]:
//!
//! * `pair → neighborhood ids` for every candidate pair of the dataset
//!   (the common case: matcher outputs and messages are candidate pairs);
//! * `entity → neighborhood ids`, for the fallback when user-supplied
//!   evidence mentions non-candidate pairs;
//! * `neighborhood → overlapping neighborhoods` via shared entities — the
//!   coarse adjacency that upper-bounds pair routing, useful for sharding
//!   and diagnostics.
//!
//! [`super::Worklist`] schedules over this index: a delta pair activates
//! exactly the neighborhoods containing both endpoints, and the pair is
//! recorded in each activated neighborhood's dirty set so the evaluation
//! can update its cached local evidence (and, for MMP, invalidate only
//! the conditioned probes the pair can actually affect).

use crate::cover::{Cover, NeighborhoodId};
use crate::dataset::Dataset;
use crate::hash::FxHashMap;
use crate::pair::Pair;

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        parent[ra.max(rb)] = ra.min(rb);
    }
}

/// Immutable pair/entity → neighborhood dependency index of one cover.
#[derive(Debug, Clone)]
pub struct DependencyIndex {
    /// Candidate pair → ids of neighborhoods containing both endpoints,
    /// ascending.
    pair_index: FxHashMap<Pair, Vec<NeighborhoodId>>,
    /// Entity → ids of neighborhoods containing it, ascending (the
    /// fallback for non-candidate evidence pairs).
    entity_index: Vec<Vec<NeighborhoodId>>,
    /// Number of neighborhoods in the cover.
    neighborhoods: usize,
    /// Neighborhood → ids of *other* neighborhoods sharing at least one
    /// entity, ascending. Derived from `entity_index` on first use —
    /// the schedulers never need it, so framework runs do not pay the
    /// quadratic-in-overlap construction.
    overlaps: std::sync::OnceLock<Vec<Vec<NeighborhoodId>>>,
}

impl DependencyIndex {
    /// Build the index for `cover` over `dataset`. One pass over the
    /// candidate pairs plus one over the cover's membership lists.
    pub fn build(dataset: &Dataset, cover: &Cover) -> Self {
        let entity_index: Vec<Vec<NeighborhoodId>> = (0..dataset.entities.len())
            .map(|e| {
                cover
                    .containing_entity(crate::entity::EntityId(e as u32))
                    .to_vec()
            })
            .collect();

        let mut pair_index: FxHashMap<Pair, Vec<NeighborhoodId>> = FxHashMap::default();
        pair_index.reserve(dataset.candidate_count());
        for (pair, _) in dataset.candidate_pairs() {
            let ids = cover.containing_pair(pair);
            if !ids.is_empty() {
                pair_index.insert(pair, ids);
            }
        }

        Self {
            pair_index,
            entity_index,
            neighborhoods: cover.len(),
            overlaps: std::sync::OnceLock::new(),
        }
    }

    /// Derive a **shard-local** index: every neighborhood list of this
    /// index filtered to `members`, so routing a pair through the result
    /// activates only the member neighborhoods. A pure filter over the
    /// already-built structures — O(index size), no dataset re-scan — so
    /// a sharded runtime builds the full index once and restricts it `k`
    /// times. The result still spans the full id space (dirty sets and
    /// worklists stay indexable by global [`NeighborhoodId`]); pairs with
    /// no member neighborhood are simply not indexed and route nowhere.
    pub fn restrict_to(&self, members: &[NeighborhoodId]) -> Self {
        let mut keep = vec![false; self.neighborhoods];
        for id in members {
            keep[id.index()] = true;
        }
        let entity_index: Vec<Vec<NeighborhoodId>> = self
            .entity_index
            .iter()
            .map(|ids| ids.iter().copied().filter(|id| keep[id.index()]).collect())
            .collect();
        let pair_index: FxHashMap<Pair, Vec<NeighborhoodId>> = self
            .pair_index
            .iter()
            .filter_map(|(pair, ids)| {
                let ids: Vec<NeighborhoodId> =
                    ids.iter().copied().filter(|id| keep[id.index()]).collect();
                (!ids.is_empty()).then_some((*pair, ids))
            })
            .collect();

        Self {
            pair_index,
            entity_index,
            neighborhoods: self.neighborhoods,
            overlaps: std::sync::OnceLock::new(),
        }
    }

    /// Connected components of the neighborhood-overlap graph (two
    /// neighborhoods are adjacent when they share an entity), each sorted
    /// ascending, ordered by smallest member id. The *coarse* adjacency:
    /// it upper-bounds every finer notion of interaction, so disjoint
    /// overlap components are fully independent sub-problems. Canopy
    /// covers chain heavily through shared entities, which is why
    /// sharding works on [`DependencyIndex::evidence_components`] — the
    /// exact routing adjacency — instead.
    pub fn overlap_components(&self) -> Vec<Vec<NeighborhoodId>> {
        self.components_of(|parent| {
            for ids in &self.entity_index {
                for w in ids.windows(2) {
                    union(parent, w[0].index(), w[1].index());
                }
            }
        })
    }

    /// Connected components of the **evidence-routing** graph: two
    /// neighborhoods are adjacent when they share a candidate pair (both
    /// endpoints in both neighborhoods) — exactly the condition under
    /// which one neighborhood's output is evidence for the other, and
    /// the condition under which two maximal messages can overlap and
    /// must merge. A partition along these components keeps all
    /// candidate-pair routing and all message merging within a part;
    /// they refine [`DependencyIndex::overlap_components`] (sharing a
    /// pair implies sharing both its endpoints).
    pub fn evidence_components(&self) -> Vec<Vec<NeighborhoodId>> {
        self.components_of(|parent| {
            for ids in self.pair_index.values() {
                for w in ids.windows(2) {
                    union(parent, w[0].index(), w[1].index());
                }
            }
        })
    }

    fn components_of(&self, link: impl FnOnce(&mut [usize])) -> Vec<Vec<NeighborhoodId>> {
        let mut parent: Vec<usize> = (0..self.neighborhoods).collect();
        link(&mut parent);
        let mut by_root: FxHashMap<usize, Vec<NeighborhoodId>> = FxHashMap::default();
        for i in 0..self.neighborhoods {
            let root = find(&mut parent, i);
            by_root
                .entry(root)
                .or_default()
                .push(NeighborhoodId(i as u32));
        }
        let mut components: Vec<Vec<NeighborhoodId>> = by_root.into_values().collect();
        // Members are pushed in ascending id order; sort components by
        // their smallest member for a deterministic listing.
        components.sort_unstable_by_key(|c| c[0]);
        components
    }

    fn compute_overlaps(&self) -> Vec<Vec<NeighborhoodId>> {
        let mut overlaps: Vec<Vec<NeighborhoodId>> = vec![Vec::new(); self.neighborhoods];
        for ids in &self.entity_index {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    overlaps[a.index()].push(b);
                    overlaps[b.index()].push(a);
                }
            }
        }
        for list in &mut overlaps {
            list.sort_unstable();
            list.dedup();
        }
        overlaps
    }

    /// Neighborhoods containing both endpoints of a *candidate* pair,
    /// ascending. Empty for pairs outside the index (non-candidates or
    /// pairs no neighborhood contains); use
    /// [`DependencyIndex::for_each_neighborhood`] when non-candidate
    /// evidence must be routed too.
    pub fn neighborhoods_of(&self, pair: Pair) -> &[NeighborhoodId] {
        self.pair_index.get(&pair).map_or(&[], Vec::as_slice)
    }

    /// Visit every neighborhood containing both endpoints of `pair`,
    /// falling back to an entity-index intersection for pairs outside the
    /// candidate index (user evidence may mention arbitrary pairs).
    pub fn for_each_neighborhood(&self, pair: Pair, mut f: impl FnMut(NeighborhoodId)) {
        if let Some(ids) = self.pair_index.get(&pair) {
            for &id in ids {
                f(id);
            }
            return;
        }
        let a = self.entity_lists(pair.lo());
        let b = self.entity_lists(pair.hi());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    fn entity_lists(&self, e: crate::entity::EntityId) -> &[NeighborhoodId] {
        self.entity_index.get(e.index()).map_or(&[], Vec::as_slice)
    }

    /// Neighborhoods sharing at least one entity with `id` (excluding
    /// `id` itself), ascending. For any pair `p`,
    /// `neighborhoods_of(p)` is contained in `{n} ∪ overlapping(n)` for
    /// every `n` containing `p` — the coarse adjacency bound, useful for
    /// sharding and diagnostics. Computed lazily on first call.
    pub fn overlapping(&self, id: NeighborhoodId) -> &[NeighborhoodId] {
        &self.overlaps.get_or_init(|| self.compute_overlaps())[id.index()]
    }

    /// Number of indexed candidate pairs.
    pub fn indexed_pairs(&self) -> usize {
        self.pair_index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SimLevel;
    use crate::entity::EntityId;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    /// Overlapping canopy-style cover: C0 = {0,1,2}, C1 = {2,3,4},
    /// C2 = {0,4,5} — every adjacent canopy shares an entity.
    fn overlapping_world() -> (Dataset, Cover) {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..6 {
            ds.entities.add_entity(ty);
        }
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (4, 5), (2, 4)] {
            ds.set_similar(Pair::new(e(a), e(b)), SimLevel(2));
        }
        let cover = Cover::from_neighborhoods(vec![
            vec![e(0), e(1), e(2)],
            vec![e(2), e(3), e(4)],
            vec![e(0), e(4), e(5)],
        ]);
        (ds, cover)
    }

    #[test]
    fn pair_index_matches_cover_lookup_on_every_candidate() {
        let (ds, cover) = overlapping_world();
        let index = DependencyIndex::build(&ds, &cover);
        let mut indexed = 0usize;
        for (pair, _) in ds.candidate_pairs() {
            let expected = cover.containing_pair(pair);
            assert_eq!(
                index.neighborhoods_of(pair),
                expected.as_slice(),
                "pair {pair} routed incompletely"
            );
            if !expected.is_empty() {
                indexed += 1;
            }
        }
        assert_eq!(index.indexed_pairs(), indexed);
        // Pairs contained in two overlapping canopies route to both.
        assert_eq!(
            index.neighborhoods_of(Pair::new(e(2), e(4))),
            &[NeighborhoodId(1)],
            "(2,4) is only jointly contained in C1"
        );
        let mut visited = Vec::new();
        index.for_each_neighborhood(Pair::new(e(0), e(4)), |id| visited.push(id));
        assert_eq!(visited, vec![NeighborhoodId(2)]);
    }

    #[test]
    fn non_candidate_pairs_fall_back_to_the_entity_index() {
        let (ds, cover) = overlapping_world();
        let index = DependencyIndex::build(&ds, &cover);
        // (0, 2) is not a candidate pair but lives wholly inside C0.
        let pair = Pair::new(e(0), e(2));
        assert!(index.neighborhoods_of(pair).is_empty(), "not indexed");
        let mut visited = Vec::new();
        index.for_each_neighborhood(pair, |id| visited.push(id));
        assert_eq!(visited, cover.containing_pair(pair));
        assert_eq!(visited, vec![NeighborhoodId(0)]);
        // A pair no neighborhood contains routes nowhere.
        let mut none = Vec::new();
        index.for_each_neighborhood(Pair::new(e(1), e(5)), |id| none.push(id));
        assert!(none.is_empty());
    }

    #[test]
    fn overlaps_list_neighborhoods_sharing_entities() {
        let (ds, cover) = overlapping_world();
        let index = DependencyIndex::build(&ds, &cover);
        assert_eq!(
            index.overlapping(NeighborhoodId(0)),
            &[NeighborhoodId(1), NeighborhoodId(2)]
        );
        assert_eq!(
            index.overlapping(NeighborhoodId(1)),
            &[NeighborhoodId(0), NeighborhoodId(2)]
        );
        // Overlap adjacency bounds pair routing: every neighborhood of a
        // pair is the neighborhood itself or one of its overlaps.
        for (pair, _) in ds.candidate_pairs() {
            let routed = index.neighborhoods_of(pair);
            for &n in routed {
                for &m in routed {
                    assert!(
                        n == m || index.overlapping(n).contains(&m),
                        "{pair}: {n} and {m} must overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_components_merge_transitively() {
        let (ds, cover) = overlapping_world();
        let index = DependencyIndex::build(&ds, &cover);
        // C0–C1 share e2, C1–C2 share e4, C0–C2 share e0: one component.
        assert_eq!(
            index.overlap_components(),
            vec![vec![
                NeighborhoodId(0),
                NeighborhoodId(1),
                NeighborhoodId(2)
            ]]
        );
    }

    #[test]
    fn every_pair_routes_within_one_evidence_component() {
        // The sharding invariant: all neighborhoods of a candidate pair
        // fall in the same evidence component (hence also in the same,
        // coarser, overlap component).
        let (ds, cover) = overlapping_world();
        let index = DependencyIndex::build(&ds, &cover);
        for components in [index.evidence_components(), index.overlap_components()] {
            let component_of = |id: NeighborhoodId| {
                components
                    .iter()
                    .position(|c| c.contains(&id))
                    .expect("every neighborhood is in a component")
            };
            for (pair, _) in ds.candidate_pairs() {
                let routed = index.neighborhoods_of(pair);
                for w in routed.windows(2) {
                    assert_eq!(
                        component_of(w[0]),
                        component_of(w[1]),
                        "{pair} spans components"
                    );
                }
            }
        }
    }

    #[test]
    fn evidence_components_refine_overlap_components() {
        // C0 = {0,1,2} and C2 = {0,4,5} share entity 0 but no candidate
        // pair (no similar pair has both endpoints in both), so the
        // evidence graph separates what the entity-overlap graph chains.
        let (ds, cover) = overlapping_world();
        let index = DependencyIndex::build(&ds, &cover);
        let overlap = index.overlap_components();
        let evidence = index.evidence_components();
        assert_eq!(overlap.len(), 1, "entity overlap chains everything");
        assert!(
            evidence.len() >= overlap.len(),
            "evidence components are at least as fine"
        );
        // Every evidence component is wholly inside one overlap component.
        for ec in &evidence {
            let host = overlap
                .iter()
                .find(|oc| oc.contains(&ec[0]))
                .expect("host overlap component");
            assert!(ec.iter().all(|id| host.contains(id)));
        }
    }

    #[test]
    fn restrict_to_limits_routing_to_members() {
        let (ds, cover) = overlapping_world();
        let full = DependencyIndex::build(&ds, &cover);
        let members = [NeighborhoodId(0), NeighborhoodId(2)];
        let local = full.restrict_to(&members);
        for (pair, _) in ds.candidate_pairs() {
            let expected: Vec<NeighborhoodId> = full
                .neighborhoods_of(pair)
                .iter()
                .copied()
                .filter(|id| members.contains(id))
                .collect();
            assert_eq!(local.neighborhoods_of(pair), expected.as_slice(), "{pair}");
        }
        // The entity fallback is restricted too: (0,2) lives wholly in C0.
        let mut visited = Vec::new();
        local.for_each_neighborhood(Pair::new(e(0), e(2)), |id| visited.push(id));
        assert_eq!(visited, vec![NeighborhoodId(0)]);
        // A pair only contained in the excluded C1 routes nowhere.
        let mut none = Vec::new();
        local.for_each_neighborhood(Pair::new(e(2), e(3)), |id| none.push(id));
        assert!(none.is_empty());
    }

    #[test]
    fn disjoint_neighborhoods_have_no_overlaps() {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..4 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(1));
        ds.set_similar(Pair::new(e(2), e(3)), SimLevel(1));
        let cover = Cover::from_neighborhoods(vec![vec![e(0), e(1)], vec![e(2), e(3)]]);
        let index = DependencyIndex::build(&ds, &cover);
        assert!(index.overlapping(NeighborhoodId(0)).is_empty());
        assert!(index.overlapping(NeighborhoodId(1)).is_empty());
        assert_eq!(
            index.neighborhoods_of(Pair::new(e(0), e(1))),
            &[NeighborhoodId(0)]
        );
        assert_eq!(
            index.overlap_components(),
            vec![vec![NeighborhoodId(0)], vec![NeighborhoodId(1)]]
        );
    }
}
