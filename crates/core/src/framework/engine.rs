//! Delta-driven drivers behind SMP and MMP — the unit a shard runs.
//!
//! The sequential schemes and the sharded runtime share one engine: a
//! driver owns the scope's [`DependencyIndex`] (full for a sequential
//! run, [`DependencyIndex::restrict_to`]-derived for a shard), the
//! worklist over that index, the accumulating evidence replica, and —
//! for MMP — the message store and per-neighborhood probe memos. A
//! sequential run is the degenerate case: one driver over every
//! neighborhood, [`MmpDriver::run`] once, done.
//!
//! A *shard* interleaves the same driver with cross-shard evidence
//! exchange:
//!
//! ```text
//! driver.absorb(&external_delta, scorer);   // peers' pairs: replica ∪=,
//!                                           //   route, mark messages dirty
//! let fence = driver.fence();
//! driver.run(matcher, scorer);              // drain to local quiescence
//! let produced = driver.delta_since(fence); // this epoch's outgoing delta
//! ```
//!
//! Soundness of promoting against a *lagged* replica: the replica only
//! ever under-approximates the global `M+`, and for supermodular models
//! `delta(M+, M)` is non-decreasing in `M+` — so a promotion that fires
//! early is still sound, and one that is missed is retried when the
//! missing evidence arrives (absorb marks the affected messages dirty).
//! The fixpoint is therefore the same as the sequential run's, which is
//! exactly the consistency argument the round-based parallel executor
//! already relies on.

use crate::cover::{Cover, NeighborhoodId};
use crate::dataset::Dataset;
use crate::evidence::{Epoch, Evidence};
use crate::matcher::{GlobalScorer, MatchOutput, Matcher, ProbabilisticMatcher};
use crate::pair::{Pair, PairSet};
use std::time::{Duration, Instant};

use super::certificates::{CertificateBank, CertificatePool, CertificateSet};
use super::mmp::{
    compute_maximal, compute_maximal_certified, mark_dirty_around, promote_dirty, MemoBank,
    MemoPool, MessageStore, MmpConfig, ProbeMemo,
};
use super::{DependencyIndex, RunStats, Worklist};

/// Where a driver's [`DependencyIndex`] comes from: built fresh from the
/// dataset (the one-shot free functions), borrowed pre-built (a
/// [`crate::framework`] session that owns it across runs), or restricted
/// to a shard's members.
enum IndexSource<'i> {
    Build,
    Borrowed(&'i DependencyIndex),
    Restrict(&'i DependencyIndex, &'i [NeighborhoodId]),
}

/// Per-neighborhood evaluation costs recorded by a driver when tracing
/// is enabled (feeds the grid simulator's validation path).
pub type EvalTrace = Vec<(NeighborhoodId, Duration)>;

/// Shared non-MMP state of both drivers.
struct DriverCore<'a> {
    dataset: &'a Dataset,
    cover: &'a Cover,
    index: std::borrow::Cow<'a, DependencyIndex>,
    worklist: Worklist,
    /// Replica of the accumulating global `M+` (plus the negative set),
    /// epoch-tracked so the scope's outgoing deltas are borrowed slices.
    found: Evidence,
    /// Per-neighborhood cached local evidence (first visit restricts the
    /// full sets; revisits apply only the scheduler's dirty pairs).
    local: Vec<Option<Evidence>>,
    stats: RunStats,
    trace: Option<EvalTrace>,
}

impl<'a> DriverCore<'a> {
    fn new(
        dataset: &'a Dataset,
        cover: &'a Cover,
        source: IndexSource<'a>,
        evidence: &Evidence,
        order: Option<&[NeighborhoodId]>,
    ) -> Self {
        // A shard filters the caller's already-built full index (a pure
        // O(index) restriction) instead of re-scanning the dataset; a
        // session lends its long-lived index by reference — no clone.
        let members = match &source {
            IndexSource::Restrict(_, members) => Some(*members),
            _ => None,
        };
        let index = match source {
            IndexSource::Restrict(full, members) => {
                std::borrow::Cow::Owned(full.restrict_to(members))
            }
            IndexSource::Borrowed(index) => std::borrow::Cow::Borrowed(index),
            IndexSource::Build => std::borrow::Cow::Owned(DependencyIndex::build(dataset, cover)),
        };
        let worklist = match (order, members) {
            (Some(order), _) => Worklist::seeded(cover.len(), order.iter().copied()),
            (None, Some(members)) => Worklist::seeded(cover.len(), members.iter().copied()),
            (None, None) => Worklist::full(cover.len()),
        };
        Self {
            dataset,
            cover,
            index,
            worklist,
            found: Evidence::from_parts(evidence.positive.clone(), evidence.negative.clone()),
            local: vec![None; cover.len()],
            stats: RunStats::default(),
            trace: None,
        }
    }

    /// Cached local evidence of `id`, updated with this visit's dirty
    /// pairs (first visits restrict the replica to the view). The
    /// returned borrow is tied to `local` only, so the caller's other
    /// driver fields stay mutable while it is live.
    fn local_evidence<'b>(
        local: &'b mut [Option<Evidence>],
        found: &Evidence,
        view: &crate::dataset::View<'_>,
        id: NeighborhoodId,
        dirty: &PairSet,
    ) -> &'b Evidence {
        match &mut local[id.index()] {
            Some(ev) => {
                for p in dirty.iter() {
                    ev.insert_positive(p);
                }
                ev
            }
            slot @ None => slot.insert(Evidence::untracked(
                view.restrict(&found.positive),
                view.restrict(&found.negative),
            )),
        }
    }

    /// Route the replica pairs inserted since `fence` (an evaluation's
    /// or promotion sweep's delta) through the index, counting them as
    /// messages. `from` suppresses re-activating the producer.
    fn route_delta(&mut self, fence: Epoch, from: Option<NeighborhoodId>) {
        let delta = self.found.delta_since(fence);
        if delta.is_empty() {
            return;
        }
        self.stats.messages_sent += delta.len() as u64;
        for &p in delta {
            self.worklist.route(&self.index, p, from);
        }
    }

    fn record(&mut self, id: NeighborhoodId, started: Option<Instant>) {
        if let (Some(trace), Some(t0)) = (&mut self.trace, started) {
            trace.push((id, t0.elapsed()));
        }
    }

    fn finish(self, start: Instant) -> MatchOutput {
        let negative = self.found.negative.clone();
        let mut matches = self.found.into_positive();
        for p in negative.iter() {
            matches.remove(p);
        }
        let mut stats = self.stats;
        stats.wall_time = start.elapsed();
        MatchOutput { matches, stats }
    }
}

/// The SMP engine (Algorithm 1): evaluate active neighborhoods, fold new
/// matches into the replica, route each epoch delta through the index.
pub struct SmpDriver<'a> {
    core: DriverCore<'a>,
}

impl<'a> SmpDriver<'a> {
    /// Driver over the whole cover (the sequential case).
    pub fn new(dataset: &'a Dataset, cover: &'a Cover, evidence: &Evidence) -> Self {
        Self {
            core: DriverCore::new(dataset, cover, IndexSource::Build, evidence, None),
        }
    }

    /// Driver over the whole cover with an explicit initial evaluation
    /// order (consistency tests).
    pub fn with_order(
        dataset: &'a Dataset,
        cover: &'a Cover,
        evidence: &Evidence,
        order: &[NeighborhoodId],
    ) -> Self {
        Self {
            core: DriverCore::new(dataset, cover, IndexSource::Build, evidence, Some(order)),
        }
    }

    /// Driver over the whole cover with a pre-built [`DependencyIndex`]
    /// (a session that owns the index across runs lends it by reference
    /// instead of paying the dataset scan — or a clone — again).
    pub fn with_index(
        dataset: &'a Dataset,
        cover: &'a Cover,
        index: &'a DependencyIndex,
        evidence: &Evidence,
    ) -> Self {
        Self {
            core: DriverCore::new(dataset, cover, IndexSource::Borrowed(index), evidence, None),
        }
    }

    /// Shard driver: `index` (the full, already-built dependency index)
    /// restricted to `members`, worklist seeded with them.
    pub fn for_members(
        dataset: &'a Dataset,
        cover: &'a Cover,
        index: &'a DependencyIndex,
        members: &'a [NeighborhoodId],
        evidence: &Evidence,
    ) -> Self {
        Self {
            core: DriverCore::new(
                dataset,
                cover,
                IndexSource::Restrict(index, members),
                evidence,
                None,
            ),
        }
    }

    /// Record per-neighborhood evaluation costs from now on.
    pub fn enable_trace(&mut self) {
        self.core.trace.get_or_insert_with(Vec::new);
    }

    /// The recorded evaluation costs so far (empty unless
    /// [`SmpDriver::enable_trace`] was called).
    pub fn take_trace(&mut self) -> EvalTrace {
        self.core.trace.take().unwrap_or_default()
    }

    /// Absorb a cross-shard delta: union new pairs into the replica and
    /// route them (activating only neighborhoods this driver's index
    /// knows). Pairs already known are ignored.
    pub fn absorb(&mut self, delta: &[Pair]) {
        for &p in delta {
            if self.core.found.insert_positive(p) {
                self.core.worklist.route(&self.core.index, p, None);
            }
        }
    }

    /// Fence the replica's insertion log; pairs found by subsequent
    /// [`SmpDriver::run`] calls land after the fence.
    pub fn fence(&mut self) -> Epoch {
        self.core.found.advance_epoch()
    }

    /// The replica pairs inserted at or after `since`, in insertion order.
    pub fn delta_since(&self, since: Epoch) -> &[Pair] {
        self.core.found.delta_since(since)
    }

    /// Whether no neighborhood is active.
    pub fn is_idle(&self) -> bool {
        self.core.worklist.is_empty()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.core.stats
    }

    /// Drain the worklist to quiescence.
    pub fn run(&mut self, matcher: &dyn Matcher) {
        let core = &mut self.core;
        while let Some((id, dirty)) = core.worklist.pop() {
            let started = core.trace.is_some().then(Instant::now);
            let view = core.cover.view(core.dataset, id);
            let local_evidence =
                DriverCore::local_evidence(&mut core.local, &core.found, &view, id, &dirty);
            let undecided = view
                .candidate_pairs()
                .iter()
                .filter(|(p, _)| !local_evidence.positive.contains(*p))
                .count() as u64;
            let matches = matcher.match_view(&view, local_evidence);
            core.stats.matcher_calls += 1;
            core.stats.neighborhoods_processed += 1;
            core.stats.active_pairs_evaluated += undecided;

            // New matches become messages: the epoch delta is routed to
            // the neighborhoods the dependency index says can use it.
            let fence = core.found.advance_epoch();
            let new_matches: PairSet = matches.difference(&core.found.positive);
            if !new_matches.is_empty() {
                core.found.union_positive(&new_matches);
                core.route_delta(fence, Some(id));
            }
            core.record(id, started);
        }
    }

    /// Consume the driver into the final output (wall time measured from
    /// `start`).
    pub fn finish(self, start: Instant) -> MatchOutput {
        self.core.finish(start)
    }
}

/// The MMP engine (Algorithms 2 + 3): the SMP loop plus maximal-message
/// computation, the merge-closed [`MessageStore`], and dirty-driven
/// promotion against the evidence replica.
pub struct MmpDriver<'a> {
    core: DriverCore<'a>,
    config: MmpConfig,
    store: MessageStore,
    /// Messages whose promotion delta may have changed, identified by any
    /// member pair (resolved to the current root when processed).
    dirty_messages: Vec<Pair>,
    memos: MemoPool,
    /// Per-neighborhood score-gap certificates, riding next to the probe
    /// memos (see [`super::certificates`]). Populated only when the
    /// matcher's [`Matcher::probe_certificate`] hook produces gap
    /// evidence; otherwise every set stays empty and the incremental
    /// path behaves exactly as before.
    certs: CertificatePool,
    /// When set, maximal messages are collected into [`MmpDriver::take_outbox`]
    /// instead of being stored and promoted locally. A sharded runtime
    /// that splits an overlap component across shards must centralize
    /// the store — two messages sharing a pair can then originate on
    /// different shards, and the `(T ∪ TC)*` merge closure (which
    /// promotion soundness and completeness both lean on) is only
    /// maintainable where all of them are visible.
    defer_promotions: bool,
    outbox: Vec<Vec<Pair>>,
}

impl<'a> MmpDriver<'a> {
    /// Driver over the whole cover (the sequential case).
    pub fn new(
        dataset: &'a Dataset,
        cover: &'a Cover,
        evidence: &Evidence,
        config: &MmpConfig,
    ) -> Self {
        Self::build(dataset, cover, IndexSource::Build, evidence, config, None)
    }

    /// Driver over the whole cover with a pre-built [`DependencyIndex`]
    /// (a session that owns the index across runs lends it by reference
    /// instead of paying the dataset scan — or a clone — again).
    pub fn with_index(
        dataset: &'a Dataset,
        cover: &'a Cover,
        index: &'a DependencyIndex,
        evidence: &Evidence,
        config: &MmpConfig,
    ) -> Self {
        Self::build(
            dataset,
            cover,
            IndexSource::Borrowed(index),
            evidence,
            config,
            None,
        )
    }

    /// Driver over the whole cover with an explicit initial evaluation
    /// order (consistency tests).
    pub fn with_order(
        dataset: &'a Dataset,
        cover: &'a Cover,
        evidence: &Evidence,
        config: &MmpConfig,
        order: &[NeighborhoodId],
    ) -> Self {
        Self::build(
            dataset,
            cover,
            IndexSource::Build,
            evidence,
            config,
            Some(order),
        )
    }

    /// Shard driver: `index` (the full, already-built dependency index)
    /// restricted to `members`, worklist seeded with them. Local
    /// promotion is sound only when `members` is a union of whole
    /// evidence components (see
    /// [`DependencyIndex::evidence_components`]): maximal messages merge
    /// exactly when they share a pair, and a pair's neighborhoods never
    /// leave their component, so per-shard stores stay closed under the
    /// merge rule. A runtime that splits components must call
    /// [`MmpDriver::defer_promotions`] and centralize the store.
    pub fn for_members(
        dataset: &'a Dataset,
        cover: &'a Cover,
        index: &'a DependencyIndex,
        members: &'a [NeighborhoodId],
        evidence: &Evidence,
        config: &MmpConfig,
    ) -> Self {
        Self::build(
            dataset,
            cover,
            IndexSource::Restrict(index, members),
            evidence,
            config,
            None,
        )
    }

    fn build(
        dataset: &'a Dataset,
        cover: &'a Cover,
        source: IndexSource<'a>,
        evidence: &Evidence,
        config: &MmpConfig,
        order: Option<&[NeighborhoodId]>,
    ) -> Self {
        Self {
            core: DriverCore::new(dataset, cover, source, evidence, order),
            config: *config,
            store: MessageStore::new(),
            dirty_messages: Vec::new(),
            memos: MemoPool::new(cover.len(), config.memo_capacity),
            certs: CertificatePool::new(cover.len()),
            defer_promotions: false,
            outbox: Vec::new(),
        }
    }

    /// Collect maximal messages into the outbox instead of storing and
    /// promoting them locally (see the field docs for when a sharded
    /// caller needs this). The driver's own deltas then contain direct
    /// matches only.
    pub fn defer_promotions(&mut self) {
        self.defer_promotions = true;
    }

    /// Drain the maximal messages collected since the last call (always
    /// empty unless [`MmpDriver::defer_promotions`] is on).
    pub fn take_outbox(&mut self) -> Vec<Vec<Pair>> {
        std::mem::take(&mut self.outbox)
    }

    /// Record per-neighborhood evaluation costs from now on.
    pub fn enable_trace(&mut self) {
        self.core.trace.get_or_insert_with(Vec::new);
    }

    /// The recorded evaluation costs so far (empty unless
    /// [`MmpDriver::enable_trace`] was called).
    pub fn take_trace(&mut self) -> EvalTrace {
        self.core.trace.take().unwrap_or_default()
    }

    /// Seed one neighborhood's probe memo directly (the caller withdrew
    /// it from a [`MemoBank`] — [`MemoBank::withdraw_grown`] — under the
    /// view-identity contract documented there).
    pub fn seed_memo(&mut self, id: NeighborhoodId, memo: ProbeMemo) {
        self.memos.put(id, memo, &mut self.core.stats);
    }

    /// Seed one neighborhood's score-gap certificates (the caller
    /// withdrew them from a [`CertificateBank`] — only meaningful at call
    /// sites where the matching [`MmpDriver::seed_memo`] withdrawal
    /// succeeded; see the bank's key discipline).
    pub fn seed_certificates(&mut self, id: NeighborhoodId, set: CertificateSet) {
        self.certs.put(id, set);
    }

    /// Replace the driver's (empty) message store with a previous
    /// fixpoint's and mark every carried message dirty, so the next
    /// [`MmpDriver::run`] re-checks each one's promotion against the
    /// current evidence and scorer before any evaluation.
    ///
    /// Promotion from a carried message is sound regardless of how the
    /// dataset grew since the store was taken: Theorem 4's argument is
    /// provenance-free (any set whose global score delta is non-negative
    /// is contained in the full run's output, by supermodularity).
    /// Carrying the store is what lets a warm-started run skip
    /// re-evaluating neighborhoods whose view did not change — their
    /// old messages are already here, waiting for new evidence to
    /// promote them.
    pub fn warm_store(&mut self, store: MessageStore) {
        self.dirty_messages = store.roots();
        self.store = store;
    }

    /// Take the message store out of the driver (call after
    /// [`MmpDriver::run`]; the store at quiescence is the input to the
    /// next run's [`MmpDriver::warm_store`]).
    pub fn take_store(&mut self) -> MessageStore {
        std::mem::take(&mut self.store)
    }

    /// Replace the initial worklist: only `ids` start active (their
    /// dirty sets empty). A warm-started caller seeds the neighborhoods
    /// whose views changed since the previous fixpoint; unchanged ones
    /// are activated later only if routed evidence reaches them.
    ///
    /// Sound for warm runs because an unchanged view re-evaluated
    /// against the previous fixpoint's evidence reproduces its quiescent
    /// state: its base matches are already in the evidence and its
    /// maximal messages are already in the carried store.
    pub fn seed_worklist(&mut self, ids: &[NeighborhoodId]) {
        self.core.worklist = Worklist::seeded(self.core.cover.len(), ids.iter().copied());
    }

    /// Deposit the driver's probe memos into `bank` under their current
    /// view identities, for the next run to withdraw
    /// ([`MemoBank::withdraw_grown`]) and [`MmpDriver::seed_memo`] from.
    /// Call after [`MmpDriver::run`] reaches quiescence.
    pub fn bank_memos(&mut self, bank: &mut MemoBank) {
        for (id, memo) in self.memos.drain() {
            let view = self.core.cover.view(self.core.dataset, id);
            bank.deposit(&view, memo);
        }
    }

    /// Deposit the driver's score-gap certificates into `bank` under
    /// their current view identities — the certificate half of
    /// [`MmpDriver::bank_memos`]. Call after [`MmpDriver::run`] reaches
    /// quiescence.
    pub fn bank_certificates(&mut self, bank: &mut CertificateBank) {
        for (id, set) in self.certs.drain() {
            let view = self.core.cover.view(self.core.dataset, id);
            bank.deposit(&view, set);
        }
    }

    /// Absorb a cross-shard delta: union new pairs into the replica,
    /// route them, and mark dirty every stored message whose promotion
    /// delta they can have changed. Promotion itself happens at the
    /// start of the next [`MmpDriver::run`] so its output lands in the
    /// caller's epoch window.
    pub fn absorb(&mut self, delta: &[Pair], scorer: &dyn GlobalScorer) {
        let mut batch = PairSet::new();
        for &p in delta {
            if self.core.found.insert_positive(p) {
                self.core.worklist.route(&self.core.index, p, None);
                batch.insert(p);
            }
        }
        if !batch.is_empty() {
            mark_dirty_around(&batch, scorer, &mut self.store, &mut self.dirty_messages);
        }
    }

    /// Fence the replica's insertion log; pairs found by subsequent
    /// [`MmpDriver::run`] calls land after the fence.
    pub fn fence(&mut self) -> Epoch {
        self.core.found.advance_epoch()
    }

    /// The replica pairs inserted at or after `since`, in insertion order.
    pub fn delta_since(&self, since: Epoch) -> &[Pair] {
        self.core.found.delta_since(since)
    }

    /// Whether no neighborhood is active and no message is pending
    /// re-promotion.
    pub fn is_idle(&self) -> bool {
        self.core.worklist.is_empty() && self.dirty_messages.is_empty()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.core.stats
    }

    /// Drain the worklist to quiescence, promoting dirty messages first
    /// (absorbed cross-shard evidence can enable promotions without
    /// activating any neighborhood).
    pub fn run(&mut self, matcher: &dyn ProbabilisticMatcher, scorer: &dyn GlobalScorer) {
        if !self.dirty_messages.is_empty() {
            let fence = self.core.found.advance_epoch();
            promote_dirty(
                &mut self.store,
                scorer,
                &mut self.core.found,
                &mut self.dirty_messages,
                &mut self.core.stats,
            );
            self.core.route_delta(fence, None);
        }

        while let Some((id, dirty)) = self.core.worklist.pop() {
            let started = self.core.trace.is_some().then(Instant::now);
            let view = self.core.cover.view(self.core.dataset, id);
            let local_evidence = DriverCore::local_evidence(
                &mut self.core.local,
                &self.core.found,
                &view,
                id,
                &dirty,
            );
            let undecided = view
                .candidate_pairs()
                .iter()
                .filter(|(p, _)| !local_evidence.positive.contains(*p))
                .count() as u64;
            let base = matcher.match_view(&view, local_evidence);
            self.core.stats.matcher_calls += 1;
            self.core.stats.neighborhoods_processed += 1;
            self.core.stats.active_pairs_evaluated += undecided;

            // Step 5b: new maximal messages from this neighborhood.
            let (new_messages, new_memo) = if self.config.incremental {
                let mut certs = self.certs.take(id);
                let out = compute_maximal_certified(
                    matcher,
                    &view,
                    local_evidence,
                    &base,
                    &dirty,
                    scorer,
                    self.memos.take(id),
                    &mut certs,
                    &self.config,
                    &mut self.core.stats,
                );
                self.certs.put(id, certs);
                out
            } else {
                (
                    compute_maximal(
                        matcher,
                        &view,
                        local_evidence,
                        &base,
                        &self.config,
                        &mut self.core.stats,
                    ),
                    ProbeMemo::new(),
                )
            };
            self.memos.put(id, new_memo, &mut self.core.stats);
            self.core.stats.maximal_messages_created += new_messages.len() as u64;
            if self.defer_promotions {
                self.outbox.extend(new_messages);
            } else {
                for message in &new_messages {
                    // Messages touching hard negative evidence can never
                    // be all-true; drop them.
                    if message
                        .iter()
                        .any(|p| self.core.found.negative.contains(*p))
                    {
                        continue;
                    }
                    if let Some(root) = self.store.add_message(message) {
                        self.dirty_messages.push(root);
                    }
                }
            }

            // Step 6: fold the direct matches into M+. Each new match
            // makes dirty every message it shares a ground edge with.
            let fence = self.core.found.advance_epoch();
            let new_matches: PairSet = base.difference(&self.core.found.positive);
            self.core.found.union_positive(&new_matches);
            mark_dirty_around(
                &new_matches,
                scorer,
                &mut self.store,
                &mut self.dirty_messages,
            );

            // Step 7: promote messages whose global score delta is
            // non-negative, to fixpoint (a promotion can enable another).
            promote_dirty(
                &mut self.store,
                scorer,
                &mut self.core.found,
                &mut self.dirty_messages,
                &mut self.core.stats,
            );

            // Step 8: route this evaluation's epoch delta (direct matches
            // and promotions alike) to the neighborhoods that can use it.
            self.core.route_delta(fence, Some(id));
            self.core.record(id, started);
        }
    }

    /// Consume the driver into the final output (wall time measured from
    /// `start`).
    pub fn finish(self, start: Instant) -> MatchOutput {
        self.core.finish(start)
    }
}
