//! MMP — Maximal Message Passing (Algorithms 2 and 3), delta-driven.
//!
//! A *maximal message* (Definition 8) is a set of pairs that the full-run
//! matcher either matches entirely or not at all — a "partial inference by
//! a neighborhood, waiting to be completed". SMP cannot discover match sets
//! whose score only becomes positive when *all* of them are matched (the
//! paper's `(a1,a2), (b2,b3), (c2,c3)` chicken-and-egg chain); MMP can:
//!
//! 1. [`compute_maximal`] (Algorithm 2) probes each undecided candidate
//!    pair `p` of a neighborhood with one conditioned matcher call
//!    `E(C, M+ ∪ {p})`; mutual entailment edges define a graph whose
//!    connected components are maximal messages (Lemma 1).
//! 2. [`MessageStore`] keeps the message set `T` closed under the merge
//!    rule of Proposition 3(ii): overlapping maximal messages union into a
//!    bigger maximal message (`T ← (T ∪ TC)*`).
//! 3. Step 7 *promotes* a message `M` to real matches when
//!    `P(M+ ∪ M) ≥ P(M+)`; by supermodularity this implies `M ⊆ E(E)`, so
//!    promotion is sound (Theorem 4).
//!
//! ## Incremental re-probing
//!
//! Re-evaluating a neighborhood used to re-probe *every* undecided pair,
//! even though the revisit was triggered by a handful of new evidence
//! pairs. For an exact supermodular matcher, MAP inference factorizes
//! over the connected components of the ground-interaction graph
//! ([`GlobalScorer::affected_pairs`]): evidence in one component cannot
//! change the optimum — or any conditioned probe — of another. So
//! [`compute_maximal_incremental`] flood-fills the components touched by
//! the neighborhood's evidence delta (plus pairs that changed decision
//! status) and re-probes only those; probes in untouched components are
//! replayed byte-identically from the per-neighborhood [`ProbeMemo`].
//! `--incremental off` in the bench harness disables exactly this replay.

use crate::cover::{Cover, NeighborhoodId};
use crate::dataset::{Dataset, View};
use crate::evidence::Evidence;
use crate::hash::{FxHashMap, FxHashSet};
use crate::matcher::{GlobalScorer, MatchOutput, ProbabilisticMatcher, Score};
use crate::pair::{Pair, PairSet};
use std::time::Instant;

use super::certificates::{gap_breached, CertificateBank, CertificateSet};
use super::RunStats;

/// Tuning knobs for MMP.
#[derive(Debug, Clone, Copy)]
pub struct MmpConfig {
    /// Include single-pair messages. A singleton `{p}` is trivially maximal
    /// and promoting it when its global score delta is non-negative is
    /// sound; disabling this reproduces a strictly more conservative MMP
    /// (useful as an ablation).
    pub singleton_messages: bool,
    /// Upper bound on the number of conditioned probes per neighborhood
    /// evaluation (`COMPUTEMAXIMAL` costs one matcher call per undecided
    /// pair). `usize::MAX` means no bound.
    pub max_probes_per_neighborhood: usize,
    /// Replay conditioned probes whose ground-interaction component was
    /// untouched by the evidence delta (see the module docs). Sound —
    /// byte-identical output — for exact supermodular matchers; for
    /// approximate backends (MaxWalkSAT) whose probe results are not
    /// component-factorizable, turn this off to reproduce the
    /// full-recompute behaviour exactly.
    pub incremental: bool,
    /// Upper bound on the total number of memoized probe entries kept
    /// across all per-neighborhood [`ProbeMemo`]s (the [`MemoPool`]
    /// evicts whole least-recently-evaluated memos past it). Bounds the
    /// memory of DBLP-BIG-scale incremental runs; an evicted
    /// neighborhood simply re-probes on its next visit, so outputs are
    /// unchanged. `usize::MAX` means unbounded. The bound is per run:
    /// `em-shard` divides it across its per-shard pools so a sharded
    /// run respects the same total.
    pub memo_capacity: usize,
    /// Safety knob of the score-gap certificate gate (see
    /// [`super::certificates`]): the delta's clause footprint is scaled
    /// by this factor before being compared against each certificate's
    /// gap, so larger values breach earlier (more conservative).
    ///
    /// The default is [`DEFAULT_CERTIFICATE_SLACK`] (`0.25`). Walksat
    /// gaps are margins over the *best visited* alternative — usually a
    /// single rejected flip, so under one clause weight — while any
    /// delta footprint covers at least one whole clause. At `1.0` the
    /// gate therefore breaches essentially always; `0.25` elides pairs
    /// whose gap exceeds a quarter of the delta's component footprint,
    /// which measured byte-identical to the probe-everything arm on the
    /// committed benchmarks (the bench records the divergence rather
    /// than assuming it is zero). An infinite slack breaches every
    /// certificate, reproducing probe-everything for certificate-gated
    /// backends. Exact matchers never record certificates, so the knob
    /// has no effect on them.
    pub certificate_slack: f64,
}

impl Default for MmpConfig {
    fn default() -> Self {
        Self {
            singleton_messages: true,
            max_probes_per_neighborhood: usize::MAX,
            incremental: true,
            memo_capacity: usize::MAX,
            certificate_slack: DEFAULT_CERTIFICATE_SLACK,
        }
    }
}

/// Default [`MmpConfig::certificate_slack`]: the largest slack (to one
/// significant digit) at which the gate still elides on the committed
/// churn benchmarks. See the field docs for why `1.0` is effectively
/// probe-everything for walksat-derived gaps.
pub const DEFAULT_CERTIFICATE_SLACK: f64 = 0.25;

/// The message set `T`, kept closed under union-of-overlapping-messages.
///
/// Internally a union-find over pairs: each pair belongs to at most one
/// message (Proposition 3 guarantees the closure `T*` is a partition of
/// the covered pairs).
#[derive(Debug, Default, Clone)]
pub struct MessageStore {
    /// Union-find parent pointers; roots map to themselves.
    parent: FxHashMap<Pair, Pair>,
    /// Members of each root's message (only valid for roots).
    members: FxHashMap<Pair, Vec<Pair>>,
}

impl MessageStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn find(&mut self, pair: Pair) -> Option<Pair> {
        let mut root = *self.parent.get(&pair)?;
        while let Some(&next) = self.parent.get(&root) {
            if next == root {
                break;
            }
            root = next;
        }
        // Path compression.
        let mut cur = pair;
        while let Some(&next) = self.parent.get(&cur) {
            if next == root {
                break;
            }
            self.parent.insert(cur, root);
            cur = next;
        }
        Some(root)
    }

    /// Add a maximal message, merging with any existing overlapping
    /// messages (the `(T ∪ TC)*` closure). Returns the root of the merged
    /// message.
    pub fn add_message(&mut self, pairs: &[Pair]) -> Option<Pair> {
        let (&first, rest) = pairs.split_first()?;
        let mut root = match self.find(first) {
            Some(r) => r,
            None => {
                self.parent.insert(first, first);
                self.members.insert(first, vec![first]);
                first
            }
        };
        for &p in rest {
            match self.find(p) {
                Some(other_root) if other_root == root => {}
                Some(other_root) => {
                    // Merge the smaller member list into the larger.
                    let (winner, loser) = {
                        let a = self.members[&root].len();
                        let b = self.members[&other_root].len();
                        if a >= b {
                            (root, other_root)
                        } else {
                            (other_root, root)
                        }
                    };
                    let moved = self.members.remove(&loser).expect("loser is a root");
                    self.parent.insert(loser, winner);
                    self.members
                        .get_mut(&winner)
                        .expect("winner is a root")
                        .extend(moved);
                    root = winner;
                }
                None => {
                    self.parent.insert(p, root);
                    self.members
                        .get_mut(&root)
                        .expect("root has members")
                        .push(p);
                }
            }
        }
        Some(root)
    }

    /// Current root of the message containing `pair`, if any.
    pub fn root_of(&mut self, pair: Pair) -> Option<Pair> {
        self.find(pair)
    }

    /// Remove the message rooted at `root`, returning its members.
    pub fn remove_message(&mut self, root: Pair) -> Option<Vec<Pair>> {
        let members = self.members.remove(&root)?;
        for p in &members {
            self.parent.remove(p);
        }
        Some(members)
    }

    /// Keep only the messages whose member slice satisfies `keep`,
    /// returning the number of messages dropped.
    ///
    /// A union-find cannot un-merge, so the store is **rebuilt from the
    /// retained messages**: surviving messages are re-added (in
    /// deterministic root order) to a fresh store, which reconstructs
    /// the parent forest and re-establishes the `(T ∪ TC)*` closure over
    /// exactly the retained set. This is the message-store half of
    /// component-scoped rollback — messages touching an invalidated
    /// ground component are dropped, everything else survives verbatim.
    pub fn retain_messages(&mut self, mut keep: impl FnMut(&[Pair]) -> bool) -> usize {
        let mut rebuilt = MessageStore::new();
        let mut dropped = 0usize;
        for root in self.roots() {
            let members = self.members.get(&root).expect("root has members");
            if keep(members) {
                rebuilt.add_message(members);
            } else {
                dropped += 1;
            }
        }
        *self = rebuilt;
        dropped
    }

    /// Roots of all current messages (deterministic order for consistency:
    /// sorted by the canonical pair order).
    pub fn roots(&self) -> Vec<Pair> {
        let mut roots: Vec<Pair> = self.members.keys().copied().collect();
        roots.sort_unstable();
        roots
    }

    /// Members of the message rooted at `root`.
    pub fn message(&self, root: Pair) -> Option<&[Pair]> {
        self.members.get(&root).map(Vec::as_slice)
    }

    /// Number of messages currently stored.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the store holds no messages.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Every pair currently covered by some message, in arbitrary order.
    pub fn all_pairs(&self) -> impl Iterator<Item = Pair> + '_ {
        self.members.values().flatten().copied()
    }

    /// Check the union-find closure invariants without mutating the
    /// forest (no path compression — parent chains are chased
    /// read-only, with a step bound in case of a cycle):
    ///
    /// 1. every root in `members` maps to itself in `parent`;
    /// 2. every pair in `parent` reaches a root that owns a member list;
    /// 3. every pair appears in exactly one member list — the one owned
    ///    by the root its parent chain reaches (Proposition 3: `T*` is a
    ///    partition of the covered pairs);
    /// 4. `parent` and the member lists cover exactly the same pairs.
    ///
    /// Returns the number of pairs checked, or a description of the
    /// first violation.
    pub fn validate(&self) -> Result<usize, String> {
        let bound = self.parent.len() + 1;
        let chase = |start: Pair| -> Result<Pair, String> {
            let mut cur = start;
            for _ in 0..bound {
                match self.parent.get(&cur) {
                    Some(&next) if next == cur => return Ok(cur),
                    Some(&next) => cur = next,
                    None => return Err(format!("parent chain of {start:?} dangles at {cur:?}")),
                }
            }
            Err(format!("parent chain of {start:?} cycles"))
        };
        for (&root, members) in &self.members {
            if self.parent.get(&root) != Some(&root) {
                return Err(format!("root {root:?} is not self-parented"));
            }
            if members.is_empty() {
                return Err(format!("root {root:?} owns an empty message"));
            }
            for &p in members {
                let found = chase(p)?;
                if found != root {
                    return Err(format!(
                        "pair {p:?} is listed under root {root:?} but its \
                         chain reaches {found:?}"
                    ));
                }
            }
        }
        let listed: usize = self.members.values().map(Vec::len).sum();
        if listed != self.parent.len() {
            return Err(format!(
                "member lists cover {listed} pairs but the parent forest \
                 holds {} — a pair is missing or double-listed",
                self.parent.len()
            ));
        }
        Ok(listed)
    }
}

/// Per-neighborhood memo of the last `COMPUTEMAXIMAL` evaluation: the
/// undecided pair list that was probed and each pair's entailed set.
/// [`compute_maximal_incremental`] replays entries whose
/// ground-interaction component the evidence delta cannot have touched.
#[derive(Debug, Default, Clone)]
pub struct ProbeMemo {
    /// Whether the neighborhood has been evaluated at least once.
    visited: bool,
    /// Whether the memo crossed runs through a [`MemoBank`]: the view
    /// it meets may then have *gained* candidate pairs, which the
    /// within-run revisit path never sees — gates the entered-pair
    /// seeding in [`compute_maximal_incremental`] off the hot path.
    from_bank: bool,
    /// The (sorted, truncated) undecided pairs of the last evaluation.
    undecided: Vec<Pair>,
    /// Last known entailed set of each probed pair.
    entailed: FxHashMap<Pair, Vec<Pair>>,
}

impl ProbeMemo {
    /// Empty memo (first evaluation probes everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the memo holds a previous evaluation.
    pub fn is_visited(&self) -> bool {
        self.visited
    }

    /// Number of memoized probe entries (the unit [`MemoPool`]'s
    /// capacity is measured in).
    pub fn entries(&self) -> usize {
        self.entailed.len()
    }

    /// Whether the memo crossed runs through a [`MemoBank`] (see the
    /// `from_bank` field). Durable-session capture persists the flag so
    /// a restored memo gates the entered-pair seeding exactly like the
    /// live one.
    pub fn is_from_bank(&self) -> bool {
        self.from_bank
    }

    /// The memoized undecided pair list of the last evaluation,
    /// read-only (sorted, truncated — exactly as evaluated).
    pub fn undecided(&self) -> &[Pair] {
        &self.undecided
    }

    /// Visit every memoized probe entry — the probed pair and its last
    /// known entailed set — in arbitrary order. Consumers needing
    /// determinism (snapshot encoders) must sort what they collect.
    pub fn for_each_entailed(&self, mut visit: impl FnMut(Pair, &[Pair])) {
        for (&p, entailed) in &self.entailed {
            visit(p, entailed);
        }
    }

    /// Reassemble a memo from previously walked parts — the decode half
    /// of durable-session snapshots, symmetric with
    /// [`ProbeMemo::is_visited`] / [`ProbeMemo::is_from_bank`] /
    /// [`ProbeMemo::undecided`] / [`ProbeMemo::for_each_entailed`].
    pub fn from_parts(
        visited: bool,
        from_bank: bool,
        undecided: Vec<Pair>,
        entailed: impl IntoIterator<Item = (Pair, Vec<Pair>)>,
    ) -> Self {
        Self {
            visited,
            from_bank,
            undecided,
            entailed: entailed.into_iter().collect(),
        }
    }
}

/// The per-neighborhood [`ProbeMemo`]s of one run, bounded by
/// [`MmpConfig::memo_capacity`] total entries with least-recently-used
/// eviction at neighborhood granularity: when the pool overflows, the
/// memo whose neighborhood was evaluated longest ago is dropped whole
/// (its next revisit re-probes from scratch — sound, just slower) and
/// the eviction is surfaced in [`RunStats::memo_evictions`].
#[derive(Debug, Clone)]
pub struct MemoPool {
    memos: Vec<ProbeMemo>,
    /// Last evaluation tick of each neighborhood (0 = never).
    stamps: Vec<u64>,
    /// Non-empty memos ordered by `(stamp, id)` — O(log n) LRU victim
    /// selection instead of scanning every neighborhood on the hot
    /// evaluation path (a capacity-bounded pool sits at capacity in
    /// steady state, so eviction runs on nearly every put).
    lru: std::collections::BTreeSet<(u64, usize)>,
    tick: u64,
    capacity: usize,
    total: usize,
}

impl MemoPool {
    /// Pool of `n` empty memos holding at most `capacity` entries.
    pub fn new(n: usize, capacity: usize) -> Self {
        Self {
            memos: vec![ProbeMemo::new(); n],
            stamps: vec![0; n],
            lru: std::collections::BTreeSet::new(),
            tick: 0,
            capacity,
            total: 0,
        }
    }

    /// Whether eviction can ever run; the unbounded default (every
    /// sequential and parallel run unless configured otherwise) skips
    /// all LRU bookkeeping on the hot path.
    fn bounded(&self) -> bool {
        self.capacity != usize::MAX
    }

    /// Take neighborhood `id`'s memo out of the pool (replaced by an
    /// empty one until [`MemoPool::put`] returns it).
    pub fn take(&mut self, id: NeighborhoodId) -> ProbeMemo {
        let memo = std::mem::take(&mut self.memos[id.index()]);
        self.total -= memo.entries();
        if self.bounded() {
            self.lru.remove(&(self.stamps[id.index()], id.index()));
        }
        memo
    }

    /// Read access to neighborhood `id`'s memo (parallel workers clone
    /// their private working copy from this).
    pub fn get(&self, id: NeighborhoodId) -> &ProbeMemo {
        &self.memos[id.index()]
    }

    /// Store `memo` as neighborhood `id`'s, stamping it most recently
    /// used, then evict least-recently-used memos until the pool fits
    /// the capacity again. Evicted entries are counted into
    /// `stats.memo_evictions`.
    pub fn put(&mut self, id: NeighborhoodId, memo: ProbeMemo, stats: &mut RunStats) {
        let old = std::mem::replace(&mut self.memos[id.index()], memo);
        self.total -= old.entries();
        self.total += self.memos[id.index()].entries();
        if !self.bounded() {
            return;
        }
        self.lru.remove(&(self.stamps[id.index()], id.index()));
        self.tick += 1;
        self.stamps[id.index()] = self.tick;
        if self.memos[id.index()].entries() > 0 {
            self.lru.insert((self.tick, id.index()));
        }
        while self.total > self.capacity {
            // Oldest non-empty memo; the just-put one has the newest
            // stamp, so it goes last.
            let Some(&(stamp, victim)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&(stamp, victim));
            let evicted = std::mem::take(&mut self.memos[victim]);
            self.total -= evicted.entries();
            stats.memo_evictions += evicted.entries() as u64;
        }
    }

    /// Memoized probe entries currently held across all neighborhoods.
    pub fn total_entries(&self) -> usize {
        self.total
    }

    /// Drain every non-empty memo out of the pool (cross-run
    /// warm-starting moves them into a [`MemoBank`]).
    pub fn drain(&mut self) -> Vec<(NeighborhoodId, ProbeMemo)> {
        self.lru.clear();
        self.total = 0;
        self.memos
            .iter_mut()
            .enumerate()
            .filter(|(_, m)| m.visited)
            .map(|(i, m)| (NeighborhoodId(i as u32), std::mem::take(m)))
            .collect()
    }
}

/// Everything a warm-started MMP run carries over from the previous
/// fixpoint: the probe-memo bank and the merge-closed message store.
///
/// The two cover complementary halves of "don't recompute":
///
/// * the **store** carries every maximal message alive at the previous
///   fixpoint. Messages are sets of pairs — no neighborhood ids — so
///   they survive re-blocking; a warm run marks them all dirty and
///   re-checks promotion against the current evidence and scorer (sound
///   by Theorem 4's provenance-free argument). Because unchanged
///   neighborhoods' messages are already here, a warm run only needs to
///   *evaluate* neighborhoods whose view changed;
/// * the **bank** carries the per-neighborhood probe memos under view
///   identities, so changed-but-revisited or delta-activated
///   neighborhoods replay the probes their delta cannot have affected.
#[derive(Debug, Default, Clone)]
pub struct WarmStart {
    /// Probe memos keyed by view identity.
    pub bank: MemoBank,
    /// Score-gap certificates keyed by view members, withdrawn only
    /// where the memo withdrawal succeeds (see
    /// [`super::certificates::CertificateBank`]).
    pub certs: CertificateBank,
    /// The message store at the previous fixpoint.
    pub store: MessageStore,
    /// Number of entities the dataset had when the bank was deposited:
    /// entities with ids at or above this floor are *new* since the
    /// previous fixpoint, which is what lets
    /// [`MemoBank::withdraw_grown`] match a grown view to its
    /// predecessor's memo.
    pub entity_floor: u32,
}

impl WarmStart {
    /// An empty warm-start (what a cold run leaves behind before its
    /// first fixpoint).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Cross-run store of per-neighborhood [`ProbeMemo`]s, keyed by the
/// neighborhood's *view identity* — its member entities plus its
/// candidate pairs with levels.
///
/// [`NeighborhoodId`]s are not stable across re-blocking (growing a
/// dataset renumbers the cover), but a probe's result depends only on
/// the view and the local evidence. A memo recorded at a run's fixpoint
/// is therefore valid for a later run's neighborhood exactly when
///
/// 1. the view is *identical* (same members, same candidate pairs at
///    the same levels — checked byte-for-byte at withdrawal), and
/// 2. the new run's starting local evidence equals the old fixpoint's
///    (which warm-started sessions guarantee: they seed the run with
///    the previous fixpoint, whose restriction to an unchanged view is
///    exactly the view's local evidence at quiescence).
///
/// Under those conditions the first visit's evidence delta is empty and
/// the undecided set unchanged, so [`compute_maximal_incremental`]
/// replays every probe and re-probes only what later routed deltas
/// touch. Views that changed in any way miss the bank and re-probe from
/// scratch — stale entries are dropped, never replayed.
#[derive(Debug, Default, Clone)]
pub struct MemoBank {
    entries: FxHashMap<Vec<crate::entity::EntityId>, BankEntry>,
}

#[derive(Debug, Clone)]
struct BankEntry {
    /// The view's candidate pairs with levels, sorted — the rest of the
    /// view-identity check beyond the member key.
    pairs: Vec<(Pair, crate::dataset::SimLevel)>,
    memo: ProbeMemo,
    /// Set by [`MemoBank::taint`]: the view's *evidence* was rolled
    /// back even though its identity is unchanged. A tainted entry is
    /// never treated as "identical → quiescent"; it withdraws as a
    /// changed view so the neighborhood re-evaluates (regenerating its
    /// messages) with probe replay in the components the rollback did
    /// not touch.
    tainted: bool,
}

impl MemoBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of banked neighborhoods.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bank holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Store `memo` under the view identity of `view` (untainted — a
    /// fresh deposit reflects the state the depositing run just
    /// reached).
    pub fn deposit(&mut self, view: &View<'_>, memo: ProbeMemo) {
        let mut pairs = view.candidate_pairs();
        pairs.sort_unstable();
        self.entries.insert(
            view.members().to_vec(),
            BankEntry {
                pairs,
                memo,
                tainted: false,
            },
        );
    }

    /// Merge another bank's entries into this one (shards deposit into
    /// private banks; the coordinator folds them together).
    pub fn absorb(&mut self, other: MemoBank) {
        self.entries.extend(other.entries);
    }

    /// Take the memo banked for `view`, if its identity still matches.
    /// The entry is removed either way — a stale entry can never match
    /// again (views only change by growing), so it is dropped.
    pub fn withdraw(&mut self, view: &View<'_>) -> Option<ProbeMemo> {
        let entry = self.entries.remove(view.members())?;
        let mut pairs = view.candidate_pairs();
        pairs.sort_unstable();
        (entry.pairs == pairs).then_some(entry.memo).map(|mut m| {
            m.from_bank = true;
            m
        })
    }

    /// Drop every banked entry whose view `predicate` marks as touched,
    /// returning the number dropped. The predicate sees the entry's
    /// member list (sorted ascending) and its candidate pairs with
    /// levels (sorted) — the full view identity the bank keys on.
    ///
    /// This is the probe-memo half of component-scoped rollback: a
    /// banked memo whose view lost a member, lost a ground tuple, or
    /// contains an invalidated pair must not be replayed — its probes
    /// were conditioned on structure or evidence that no longer exists.
    /// (Views whose *identity* changed would miss the bank anyway; the
    /// dangerous case is a view that is byte-identical but whose
    /// component's evidence was rolled back — the identity check cannot
    /// see that, so the rollback must evict explicitly.)
    pub fn invalidate(
        &mut self,
        mut predicate: impl FnMut(
            &[crate::entity::EntityId],
            &[(Pair, crate::dataset::SimLevel)],
        ) -> bool,
    ) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|members, entry| !predicate(members, &entry.pairs));
        before - self.entries.len()
    }

    /// Re-key entries whose views *shrank* by entity retraction — the
    /// special case of [`MemoBank::rekey_churned`] with no retracted
    /// candidate pairs beyond those the gone entities imply.
    pub fn rekey_shrunk(
        &mut self,
        gone: &crate::hash::FxHashSet<crate::entity::EntityId>,
        invalid: &crate::pair::PairSet,
    ) -> usize {
        self.rekey_churned(gone, &[], invalid)
    }

    /// Re-key entries whose views churned — shrank by entity retraction
    /// (`gone`), lost candidate pairs (`retracted_pairs`: links a delta
    /// withdrew, including between *surviving* members), or both, even
    /// when the same delta also grows the view (growth resolves later
    /// through [`MemoBank::withdraw_grown`]'s entity floor — the bank
    /// only has to keep the *pre-growth* identity honest here). Every
    /// touched entry is re-indexed under its surviving member list, with
    /// dead candidate pairs removed from the identity and every
    /// `invalid` pair's memoized probe entry deleted (forcing its
    /// re-probe on the next evaluation). The entry is tainted, so the
    /// view re-evaluates rather than being skipped. Returns the number
    /// of entries re-keyed.
    ///
    /// `rekey_shrunk` used to miss the combined case: a delta that
    /// retracts a candidate link between surviving members (no entity
    /// gone) left the banked identity holding the dead pair, so the next
    /// withdrawal mismatched and silently dropped the memo — a full
    /// re-probe where replay was sound.
    ///
    /// Soundness leans on `invalid` being **closed** under the global
    /// ground-interaction adjacency: a surviving pair outside a closed
    /// set shares no within-view ground component with anything inside
    /// it (view grounding is a restriction of global grounding), so its
    /// memoized probe is exact in the churned view too. Probes of pairs
    /// inside the set — the only ones whose conditioning changed — are
    /// deleted here and re-issued. (Retracted candidate pairs are always
    /// part of the caller's closure seeds, so their probe entries go
    /// through `invalid` as well; removing them from the *identity* is
    /// what this method adds.)
    pub fn rekey_churned(
        &mut self,
        gone: &crate::hash::FxHashSet<crate::entity::EntityId>,
        retracted_pairs: &[Pair],
        invalid: &crate::pair::PairSet,
    ) -> usize {
        if gone.is_empty() && retracted_pairs.is_empty() {
            return 0;
        }
        let retracted: FxHashSet<Pair> = retracted_pairs.iter().copied().collect();
        let mut churned: Vec<Vec<crate::entity::EntityId>> = self
            .entries
            .iter()
            .filter(|(members, entry)| {
                members.iter().any(|e| gone.contains(e))
                    || entry.pairs.iter().any(|&(p, _)| retracted.contains(&p))
            })
            .map(|(members, _)| members.clone())
            .collect();
        // Two churned views can collapse onto the same survivor key
        // (their member lists differed only in retracted entities);
        // the later insert wins, so the processing order must not
        // depend on hash-map iteration — a bank restored from a
        // snapshot iterates in a different order than the live bank it
        // captured, and byte-identity across that round trip requires
        // a deterministic winner.
        churned.sort_unstable();
        let mut rekeyed = 0;
        for key in churned {
            let Some(mut entry) = self.entries.remove(&key) else {
                continue;
            };
            let survivors: Vec<crate::entity::EntityId> =
                key.iter().copied().filter(|e| !gone.contains(e)).collect();
            if survivors.is_empty() {
                continue;
            }
            let dead_pair = |p: &Pair| {
                gone.contains(&p.lo()) || gone.contains(&p.hi()) || retracted.contains(p)
            };
            entry.pairs.retain(|(p, _)| !dead_pair(p));
            entry.memo.undecided.retain(|p| !dead_pair(p));
            entry
                .memo
                .entailed
                .retain(|p, _| !dead_pair(p) && !invalid.contains(*p));
            entry.tainted = true;
            rekeyed += 1;
            self.entries.insert(survivors, entry);
        }
        rekeyed
    }

    /// Mark every entry whose view `predicate` selects as **tainted**,
    /// returning the number newly tainted. The gentler sibling of
    /// [`MemoBank::invalidate`]: the memo's probe entries stay usable
    /// for replay (the per-pair probe results in components the
    /// rollback did not touch are still exact), but the view is no
    /// longer quiescent — its carried messages were dropped or its warm
    /// evidence shrank — so withdrawal reports it as changed and the
    /// neighborhood re-evaluates.
    pub fn taint(
        &mut self,
        mut predicate: impl FnMut(
            &[crate::entity::EntityId],
            &[(Pair, crate::dataset::SimLevel)],
        ) -> bool,
    ) -> usize {
        let mut tainted = 0;
        for (members, entry) in &mut self.entries {
            if !entry.tainted && predicate(members, &entry.pairs) {
                entry.tainted = true;
                tainted += 1;
            }
        }
        tainted
    }

    /// Take the memo banked for the *predecessor* of `view` in a grown
    /// dataset. Returns the memo plus whether the view is byte-identical
    /// to the banked one (`true`) or grew (`false`).
    ///
    /// Entities with ids at or above `entity_floor` did not exist when
    /// the bank was deposited. A grown view matches its predecessor
    /// exactly when the below-floor part of its members and candidate
    /// pairs equals a banked entry: every addition is then genuinely new
    /// to the dataset, so every added candidate pair *enters* the
    /// undecided set and seeds its ground component for re-probing
    /// (see [`compute_maximal_incremental`]); probes in components no
    /// new pair reaches replay soundly, because append-only growth
    /// cannot create ground interactions among pre-existing pairs. A
    /// view that gained a pre-existing entity, or a new candidate pair
    /// between pre-existing entities, misses the bank and re-probes in
    /// full.
    pub fn withdraw_grown(
        &mut self,
        view: &View<'_>,
        entity_floor: u32,
    ) -> Option<(ProbeMemo, bool)> {
        let old_members: Vec<crate::entity::EntityId> = view
            .members()
            .iter()
            .copied()
            .filter(|e| e.0 < entity_floor)
            .collect();
        let entry = self.entries.remove(&old_members)?;
        let mut pairs = view.candidate_pairs();
        pairs.sort_unstable();
        let old_pairs: Vec<(Pair, crate::dataset::SimLevel)> = pairs
            .iter()
            .copied()
            .filter(|(p, _)| p.lo().0 < entity_floor && p.hi().0 < entity_floor)
            .collect();
        if entry.pairs != old_pairs {
            return None;
        }
        // A tainted entry is never "identical": its view's evidence was
        // rolled back, so the neighborhood must re-evaluate (with
        // replay) even when the view itself is byte-identical.
        let identical = !entry.tainted
            && old_members.len() == view.members().len()
            && old_pairs.len() == pairs.len();
        let mut memo = entry.memo;
        memo.from_bank = true;
        Some((memo, identical))
    }

    /// Visit every banked view identity — its member list (sorted) and
    /// candidate pairs with levels (sorted) — read-only. The invariant
    /// checker uses this to assert no banked view references a
    /// tombstoned entity.
    pub fn for_each_view(
        &self,
        mut visit: impl FnMut(&[crate::entity::EntityId], &[(Pair, crate::dataset::SimLevel)]),
    ) {
        for (members, entry) in &self.entries {
            visit(members, &entry.pairs);
        }
    }

    /// Visit every banked entry in full — member key, candidate-pair
    /// identity, probe memo, and taint flag — read-only, in arbitrary
    /// order. The durable-session encoder walks this; consumers needing
    /// determinism must sort by the member key.
    pub fn for_each_entry(
        &self,
        mut visit: impl FnMut(
            &[crate::entity::EntityId],
            &[(Pair, crate::dataset::SimLevel)],
            &ProbeMemo,
            bool,
        ),
    ) {
        for (members, entry) in &self.entries {
            visit(members, &entry.pairs, &entry.memo, entry.tainted);
        }
    }

    /// Insert one banked entry verbatim — the decode half of
    /// [`MemoBank::for_each_entry`]. Unlike [`MemoBank::deposit`] this
    /// takes the candidate-pair identity and taint flag as given (a
    /// restored bank must reproduce the live one bit-for-bit, including
    /// taint left by a rollback).
    pub fn insert_raw(
        &mut self,
        members: Vec<crate::entity::EntityId>,
        pairs: Vec<(Pair, crate::dataset::SimLevel)>,
        memo: ProbeMemo,
        tainted: bool,
    ) {
        self.entries.insert(
            members,
            BankEntry {
                pairs,
                memo,
                tainted,
            },
        );
    }
}

/// The undecided candidate pairs of a view: candidates not already
/// matched or excluded, sorted, truncated to the probe budget.
fn undecided_pairs(
    view: &View<'_>,
    evidence: &Evidence,
    base: &PairSet,
    config: &MmpConfig,
) -> Vec<Pair> {
    let mut undecided: Vec<Pair> = view
        .candidate_pairs()
        .into_iter()
        .map(|(p, _)| p)
        .filter(|p| {
            !base.contains(*p) && !evidence.positive.contains(*p) && !evidence.negative.contains(*p)
        })
        .collect();
    undecided.sort_unstable();
    undecided.truncate(config.max_probes_per_neighborhood);
    undecided
}

/// Flood-fill the undecided pairs whose ground-interaction component was
/// touched by `seeds` (the delta pairs and any pair whose decision status
/// changed since the memoized evaluation).
fn invalidated_component(
    seeds: impl Iterator<Item = Pair>,
    undecided_set: &FxHashSet<Pair>,
    scorer: &dyn GlobalScorer,
) -> FxHashSet<Pair> {
    let mut invalid: FxHashSet<Pair> = FxHashSet::default();
    let mut stack: Vec<Pair> = Vec::new();
    for seed in seeds {
        for q in scorer.affected_pairs(seed) {
            if undecided_set.contains(&q) && invalid.insert(q) {
                stack.push(q);
            }
        }
    }
    while let Some(p) = stack.pop() {
        for q in scorer.affected_pairs(p) {
            if undecided_set.contains(&q) && invalid.insert(q) {
                stack.push(q);
            }
        }
    }
    invalid
}

/// Per-pair clause footprint of a delta, scoped to ground-interaction
/// components: each invalidated pair is charged the summed
/// [`GlobalScorer::touched_weight`] of exactly the seeds that reach its
/// component — not the view-global seed weight, which any sizable
/// growth saturates past every finite score gap.
///
/// Components are labelled by flooding `invalid` (the pairs
/// [`invalidated_component`] returned) over the scorer's
/// ground-interaction adjacency; a seed that touches several components
/// (its affected pairs land in disconnected regions of the undecided
/// graph) charges each of them in full, which over-counts never
/// under-counts — sound for a breach test.
fn component_footprint(
    seeds: &[Pair],
    invalid: &FxHashSet<Pair>,
    scorer: &dyn GlobalScorer,
) -> FxHashMap<Pair, Score> {
    // Label the invalidated pairs' components.
    let mut comp_of: FxHashMap<Pair, usize> = FxHashMap::default();
    let mut comps = 0usize;
    let mut stack: Vec<Pair> = Vec::new();
    for &p in invalid {
        if comp_of.contains_key(&p) {
            continue;
        }
        let id = comps;
        comps += 1;
        comp_of.insert(p, id);
        stack.push(p);
        while let Some(q) = stack.pop() {
            for r in scorer.affected_pairs(q) {
                if invalid.contains(&r) && !comp_of.contains_key(&r) {
                    comp_of.insert(r, id);
                    stack.push(r);
                }
            }
        }
    }
    // Charge each seed's touched weight to every component it reaches.
    let mut weight = vec![Score::ZERO; comps];
    let mut seen: FxHashSet<Pair> = FxHashSet::default();
    for &seed in seeds {
        if !seen.insert(seed) {
            continue;
        }
        let w = scorer.touched_weight(seed);
        let mut charged: Vec<bool> = vec![false; comps];
        let targets = std::iter::once(seed).chain(scorer.affected_pairs(seed));
        for q in targets {
            if let Some(&id) = comp_of.get(&q) {
                if !charged[id] {
                    charged[id] = true;
                    weight[id].0 = weight[id].0.saturating_add(w.0);
                }
            }
        }
    }
    comp_of.into_iter().map(|(p, id)| (p, weight[id])).collect()
}

/// Shared core of [`compute_maximal`] / [`compute_maximal_incremental`]:
/// decide which probes to issue, replay the rest, build the
/// mutual-entailment components.
#[allow(clippy::too_many_arguments)]
fn compute_maximal_core(
    matcher: &dyn ProbabilisticMatcher,
    view: &View<'_>,
    evidence: &Evidence,
    base: &PairSet,
    incremental: Option<(&PairSet, &dyn GlobalScorer, ProbeMemo)>,
    mut certified: Option<&mut CertificateSet>,
    config: &MmpConfig,
    stats: &mut RunStats,
) -> (Vec<Vec<Pair>>, ProbeMemo) {
    let undecided = undecided_pairs(view, evidence, base, config);
    if undecided.is_empty() {
        if let Some(certs) = certified {
            // Every pair is decided; nothing is left to certify.
            certs.retain(|_| false);
        }
        return (
            Vec::new(),
            ProbeMemo {
                visited: true,
                from_bank: false,
                undecided,
                entailed: FxHashMap::default(),
            },
        );
    }

    let undecided_set: FxHashSet<Pair> = undecided.iter().copied().collect();
    let mut elided: Vec<Pair> = Vec::new();
    let mut replayed: Vec<(Pair, Vec<Pair>)> = Vec::new();
    let to_probe: Vec<Pair> = match incremental {
        Some((dirty, scorer, mut memo)) => {
            // Isolated pairs — no ground-interaction neighbor among the
            // view's undecided pairs — are singleton components: by
            // supermodular factorization their conditioned probe cannot
            // entail anything undecided, so the probe is elided outright
            // (first visits included) and the entailed set recorded as
            // empty.
            let isolated = |p: &Pair| {
                !scorer
                    .affected_pairs(*p)
                    .iter()
                    .any(|q| q != p && undecided_set.contains(q))
            };
            if memo.visited {
                // Seeds: pairs that became evidence since the last
                // evaluation plus previously-probed pairs that left the
                // undecided set (decided by base growth). Their components
                // must re-probe; everything else replays — the memoized
                // entailed sets are *moved*, not cloned (the caller
                // replaces the memo with the one we return).
                //
                // Pairs that *entered* the undecided set also seed.
                // Within a run the undecided set only shrinks, so the
                // scan is skipped on the classic revisit path — but a
                // memo carried across runs by a [`MemoBank`] can meet a
                // view that gained candidate pairs (dataset growth), and
                // the new pairs' ground components must then re-probe
                // rather than replay around them.
                let entered: Vec<Pair> = if memo.from_bank {
                    let memo_undecided: FxHashSet<Pair> = memo.undecided.iter().copied().collect();
                    undecided
                        .iter()
                        .copied()
                        .filter(|p| !memo_undecided.contains(p))
                        .collect()
                } else {
                    Vec::new()
                };
                let seeds: Vec<Pair> = dirty
                    .iter()
                    .chain(
                        memo.undecided
                            .iter()
                            .copied()
                            .filter(|p| !undecided_set.contains(p)),
                    )
                    .chain(entered.iter().copied())
                    .collect();
                let invalid = invalidated_component(seeds.iter().copied(), &undecided_set, scorer);
                // Clause footprint of the delta, scoped per ground
                // component: by supermodular factorization only the
                // touched weight *inside a pair's own component* can
                // move that pair's score, so each certificate is
                // intersected with its component's seed weight, not the
                // view-global sum (which any sizable growth saturates).
                // Only computed when a certificate set is in play.
                let footprint = certified
                    .as_ref()
                    .map(|_| component_footprint(&seeds, &invalid, scorer));
                let mut probe = Vec::new();
                for &p in &undecided {
                    let mut replay = !invalid.contains(&p);
                    if !replay {
                        // Certificate gate: a delta-touched pair whose
                        // score-gap certificate exceeds its component's
                        // footprint keeps its memoized probe; a breached
                        // (or missing) certificate forces the re-probe.
                        if let (Some(certs), Some(fp_by_pair)) =
                            (certified.as_deref_mut(), footprint.as_ref())
                        {
                            if memo.entailed.contains_key(&p) {
                                if let Some(gap) = certs.gap(p) {
                                    // Every gated pair is in `invalid`,
                                    // so the map covers it; the sentinel
                                    // fallback breaches (sound).
                                    let fp =
                                        fp_by_pair.get(&p).copied().unwrap_or(Score(i64::MAX / 4));
                                    stats.certificates_checked += 1;
                                    if gap_breached(fp, gap, config.certificate_slack) {
                                        stats.certificates_breached += 1;
                                        certs.remove(p);
                                    } else {
                                        stats.probes_elided += 1;
                                        certs.weaken(p, fp);
                                        replay = true;
                                    }
                                }
                            }
                        }
                    }
                    if replay {
                        if let Some(prev) = memo.entailed.remove(&p) {
                            replayed.push((p, prev)); // untouched component
                            continue;
                        }
                    }
                    if isolated(&p) {
                        elided.push(p);
                    } else {
                        probe.push(p);
                    }
                }
                probe
            } else {
                let mut probe = Vec::new();
                for &p in &undecided {
                    if isolated(&p) {
                        elided.push(p);
                    } else {
                        probe.push(p);
                    }
                }
                probe
            }
        }
        _ => undecided.clone(),
    };

    stats.matcher_calls += to_probe.len() as u64;
    stats.conditioned_probes += to_probe.len() as u64;
    stats.probes_replayed += (undecided.len() - to_probe.len()) as u64;

    // When certificates are in play, ask the matcher for gap evidence
    // alongside the entailed sets (one search produces both); matchers
    // without gap evidence fall back to the plain probe and record no
    // certificates — every touched pair then re-probes, which is sound.
    let (probed, gaps) = match (certified.as_ref(), to_probe.is_empty()) {
        (Some(_), false) => match matcher.probe_certificate(view, evidence, base, &to_probe) {
            Some(results) => {
                let mut entailed = Vec::with_capacity(results.len());
                let mut gap_list = Vec::with_capacity(results.len());
                for (e, g) in results {
                    entailed.push(e);
                    gap_list.push(g);
                }
                (entailed, Some(gap_list))
            }
            None => (
                matcher.probe_entailed(view, evidence, base, &to_probe),
                None,
            ),
        },
        _ => (
            matcher.probe_entailed(view, evidence, base, &to_probe),
            None,
        ),
    };
    let mut entailed_by_pair: FxHashMap<Pair, Vec<Pair>> =
        FxHashMap::with_capacity_and_hasher(undecided.len(), Default::default());
    entailed_by_pair.extend(replayed);
    for p in elided {
        entailed_by_pair.insert(p, Vec::new());
    }
    for (p, set) in to_probe.iter().zip(probed) {
        entailed_by_pair.insert(*p, set);
    }
    if let Some(certs) = certified {
        if let Some(gap_list) = gaps {
            for (&p, gap) in to_probe.iter().zip(gap_list) {
                certs.record(p, gap);
            }
        }
        // A certificate is only meaningful next to its memoized probe.
        certs.retain(|p| entailed_by_pair.contains_key(&p));
    }

    // Mutual entailment edges → connected components (union-find on indices).
    let index: FxHashMap<Pair, usize> =
        undecided.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let mut entails: Vec<Vec<usize>> = Vec::with_capacity(undecided.len());
    for p in &undecided {
        let mut entailed: Vec<usize> = entailed_by_pair
            .get(p)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .filter_map(|q| index.get(q).copied())
            .collect();
        entailed.sort_unstable();
        entails.push(entailed);
    }

    let mut parent: Vec<usize> = (0..undecided.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (i, entailed) in entails.iter().enumerate() {
        for &j in entailed {
            if j == i {
                continue;
            }
            // Edge requires entailment in both directions (Algorithm 2).
            if entails[j].binary_search(&i).is_ok() {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    let mut components: FxHashMap<usize, Vec<Pair>> = FxHashMap::default();
    for (i, &pair) in undecided.iter().enumerate() {
        let root = find(&mut parent, i);
        components.entry(root).or_default().push(pair);
    }
    let mut messages: Vec<Vec<Pair>> = components
        .into_values()
        .filter(|m| config.singleton_messages || m.len() > 1)
        .collect();
    for m in &mut messages {
        m.sort_unstable();
    }
    messages.sort_unstable();

    (
        messages,
        ProbeMemo {
            visited: true,
            from_bank: false,
            undecided,
            entailed: entailed_by_pair,
        },
    )
}

/// Algorithm 2: compute the maximal messages of one neighborhood,
/// probing every undecided pair (the non-incremental path).
///
/// `base` must be the matcher's output `E(C, M+)` for the same view and
/// evidence (passed in so MMP does not re-run it). Returns the connected
/// components of the mutual-entailment graph over the undecided candidate
/// pairs.
pub fn compute_maximal(
    matcher: &dyn ProbabilisticMatcher,
    view: &View<'_>,
    evidence: &Evidence,
    base: &PairSet,
    config: &MmpConfig,
    stats: &mut RunStats,
) -> Vec<Vec<Pair>> {
    compute_maximal_core(matcher, view, evidence, base, None, None, config, stats).0
}

/// Algorithm 2 with delta-driven probe invalidation: `dirty` is the set
/// of pairs that became positive evidence for this neighborhood since
/// `memo` was recorded; only undecided pairs in a ground-interaction
/// component touched by the delta (per `scorer`) are re-probed, the rest
/// replay from `memo`. The memo is consumed (replayed entailed sets are
/// moved into the returned one); callers keep the returned memo for the
/// next revisit.
#[allow(clippy::too_many_arguments)]
pub fn compute_maximal_incremental(
    matcher: &dyn ProbabilisticMatcher,
    view: &View<'_>,
    evidence: &Evidence,
    base: &PairSet,
    dirty: &PairSet,
    scorer: &dyn GlobalScorer,
    memo: ProbeMemo,
    config: &MmpConfig,
    stats: &mut RunStats,
) -> (Vec<Vec<Pair>>, ProbeMemo) {
    compute_maximal_core(
        matcher,
        view,
        evidence,
        base,
        Some((dirty, scorer, memo)),
        None,
        config,
        stats,
    )
}

/// [`compute_maximal_incremental`] with a score-gap certificate set in
/// play (see [`super::certificates`]): delta-touched pairs whose
/// certificate gap exceeds the delta's clause footprint (scaled by
/// [`MmpConfig::certificate_slack`]) replay instead of re-probing, and
/// freshly issued probes record new certificates through
/// [`crate::matcher::Matcher::probe_certificate`]. `certs` is updated in
/// place; callers keep it next to the returned memo for the next
/// revisit. With a matcher that yields no gap evidence (exact backends)
/// this is byte-identical to [`compute_maximal_incremental`].
#[allow(clippy::too_many_arguments)]
pub fn compute_maximal_certified(
    matcher: &dyn ProbabilisticMatcher,
    view: &View<'_>,
    evidence: &Evidence,
    base: &PairSet,
    dirty: &PairSet,
    scorer: &dyn GlobalScorer,
    memo: ProbeMemo,
    certs: &mut CertificateSet,
    config: &MmpConfig,
    stats: &mut RunStats,
) -> (Vec<Vec<Pair>>, ProbeMemo) {
    compute_maximal_core(
        matcher,
        view,
        evidence,
        base,
        Some((dirty, scorer, memo)),
        Some(certs),
        config,
        stats,
    )
}

/// Algorithm 3: run MMP over a cover.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate); `mmp_with_order` / `MmpDriver` are the engine hooks"
)]
pub fn mmp(
    matcher: &dyn ProbabilisticMatcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &MmpConfig,
) -> MatchOutput {
    mmp_with_order(matcher, dataset, cover, evidence, config, None)
}

/// MMP with an explicit initial evaluation order (consistency tests).
/// A thin wrapper over [`super::MmpDriver`]: one driver spanning the
/// whole cover, run to quiescence once.
pub fn mmp_with_order(
    matcher: &dyn ProbabilisticMatcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &MmpConfig,
    order: Option<&[NeighborhoodId]>,
) -> MatchOutput {
    let start = Instant::now();
    let scorer = matcher.global_scorer(dataset);
    let mut driver = match order {
        Some(order) => super::MmpDriver::with_order(dataset, cover, evidence, config, order),
        None => super::MmpDriver::new(dataset, cover, evidence, config),
    };
    driver.run(matcher, scorer.as_ref());
    driver.finish(start)
}

/// Mark dirty every stored message containing a pair that interacts with
/// one of `new_matches` (including messages containing the match itself:
/// its remaining members' delta changed too). No-op while the store is
/// empty, so SMP-like phases skip the scorer adjacency scan entirely.
pub fn mark_dirty_around(
    new_matches: &PairSet,
    scorer: &dyn GlobalScorer,
    store: &mut MessageStore,
    dirty: &mut Vec<Pair>,
) {
    if store.is_empty() {
        return;
    }
    for p in new_matches.iter() {
        if store.root_of(p).is_some() {
            dirty.push(p);
        }
        for q in scorer.affected_pairs(p) {
            if store.root_of(q).is_some() {
                dirty.push(q);
            }
        }
    }
}

/// Dirty-driven promotion: pop message handles until none qualify.
/// Promoting a message marks dirty everything its new matches interact
/// with, so the loop reaches the same fixpoint as a full scan —
/// `delta(M+, M)` can only change when a new match shares a ground term
/// with `M` (supermodularity), which is exactly what
/// [`GlobalScorer::affected_pairs`] reports. Promoted pairs are inserted
/// into `found` through the tracked mutator, so they land in the current
/// epoch's delta. Returns the promoted pairs.
pub fn promote_dirty(
    store: &mut MessageStore,
    scorer: &dyn GlobalScorer,
    found: &mut Evidence,
    dirty: &mut Vec<Pair>,
    stats: &mut RunStats,
) -> PairSet {
    let mut promoted = PairSet::new();
    while let Some(handle) = dirty.pop() {
        let Some(root) = store.root_of(handle) else {
            continue; // message already promoted or retired
        };
        let members = store.message(root).expect("root has members");
        let mut fresh: Vec<Pair> = members
            .iter()
            .copied()
            .filter(|p| !found.positive.contains(*p))
            .collect();
        if fresh.is_empty() {
            // Entirely subsumed by M+; retire it.
            store.remove_message(root);
            continue;
        }
        stats.score_delta_calls += 1;
        if scorer.delta(&found.positive, &fresh) >= Score::ZERO {
            store.remove_message(root);
            fresh.sort_unstable();
            let mut batch = PairSet::with_capacity(fresh.len());
            for p in fresh {
                found.insert_positive(p);
                promoted.insert(p);
                batch.insert(p);
            }
            stats.promotions += 1;
            mark_dirty_around(&batch, scorer, store, dirty);
        }
    }
    promoted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;
    use crate::testing::paper_example;

    fn run_mmp(
        matcher: &dyn ProbabilisticMatcher,
        ds: &Dataset,
        cover: &Cover,
        ev: &Evidence,
        config: &MmpConfig,
    ) -> MatchOutput {
        mmp_with_order(matcher, ds, cover, ev, config, None)
    }

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    #[test]
    fn message_store_merges_overlaps() {
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(2, 3)]);
        store.add_message(&[p(4, 5), p(6, 7)]);
        assert_eq!(store.len(), 2);
        // Overlaps both → all merge into one message (Prop. 3(ii)).
        store.add_message(&[p(2, 3), p(4, 5)]);
        assert_eq!(store.len(), 1);
        let root = store.roots()[0];
        let mut members = store.message(root).unwrap().to_vec();
        members.sort_unstable();
        assert_eq!(members, vec![p(0, 1), p(2, 3), p(4, 5), p(6, 7)]);
    }

    #[test]
    fn message_store_remove_clears_members() {
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(2, 3)]);
        let root = store.roots()[0];
        let members = store.remove_message(root).unwrap();
        assert_eq!(members.len(), 2);
        assert!(store.is_empty());
        // Pairs are free to join new messages afterwards.
        store.add_message(&[p(0, 1)]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn message_store_dedups_within_message() {
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(0, 1), p(2, 3)]);
        assert_eq!(store.len(), 1);
        let root = store.roots()[0];
        assert_eq!(store.message(root).unwrap().len(), 2);
    }

    #[test]
    fn empty_message_is_ignored() {
        let mut store = MessageStore::new();
        assert!(store.add_message(&[]).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn merge_closure_property_holds_for_chained_overlaps() {
        // Proposition 3(ii): the store must equal the closure (T ∪ TC)*
        // regardless of insertion order. Insert k two-pair messages that
        // chain through shared pairs, in several orders; the closure is
        // always one message holding every pair.
        let chain: Vec<[Pair; 2]> = (0..6u32)
            .map(|i| [p(2 * i, 2 * i + 1), p(2 * i + 2, 2 * i + 3)])
            .collect();
        let orders: Vec<Vec<usize>> = vec![
            (0..6).collect(),
            (0..6).rev().collect(),
            vec![0, 2, 4, 1, 3, 5], // merge islands, then bridge them
        ];
        for order in orders {
            let mut store = MessageStore::new();
            for &i in &order {
                store.add_message(&chain[i]);
            }
            assert_eq!(
                store.len(),
                1,
                "order {order:?} must close into one message"
            );
            let root = store.roots()[0];
            let mut members = store.message(root).unwrap().to_vec();
            members.sort_unstable();
            let mut expected: Vec<Pair> = (0..7u32).map(|i| p(2 * i, 2 * i + 1)).collect();
            expected.sort_unstable();
            assert_eq!(members, expected);
        }
    }

    #[test]
    fn path_compression_is_idempotent_and_consistent() {
        // Build a long union chain so find() exercises compression, then
        // check repeated root queries agree for every member — before and
        // after further merges.
        let mut store = MessageStore::new();
        for i in 0..10u32 {
            store.add_message(&[p(i, 100 + i), p(i + 1, 101 + i)]);
        }
        assert_eq!(store.len(), 1);
        let root = store.roots()[0];
        for i in 0..10u32 {
            let first = store.root_of(p(i, 100 + i));
            let second = store.root_of(p(i, 100 + i));
            assert_eq!(first, Some(root), "member {i} resolves to the root");
            assert_eq!(first, second, "resolution is idempotent");
        }
        // A later merge through an existing member keeps one root for all.
        store.add_message(&[p(5, 105), p(200, 201)]);
        let new_root = store.root_of(p(200, 201)).unwrap();
        for i in 0..10u32 {
            assert_eq!(store.root_of(p(i, 100 + i)), Some(new_root));
        }
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn promotion_after_merge_preserves_membership() {
        // Regression: removing (= promoting) a message that was built from
        // several merges must return *every* transitive member exactly
        // once, and leave the store genuinely empty — stale parent
        // pointers must not resurrect pairs or panic later operations.
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(2, 3)]);
        store.add_message(&[p(4, 5), p(6, 7)]);
        store.add_message(&[p(2, 3), p(4, 5)]); // bridges the two
        store.add_message(&[p(6, 7), p(8, 9)]); // extends the merged one
        assert_eq!(store.len(), 1);
        let root = store.root_of(p(8, 9)).unwrap();
        let mut members = store.remove_message(root).unwrap();
        members.sort_unstable();
        assert_eq!(
            members,
            vec![p(0, 1), p(2, 3), p(4, 5), p(6, 7), p(8, 9)],
            "promotion must carry every merged member"
        );
        assert!(store.is_empty());
        for pair in [p(0, 1), p(2, 3), p(4, 5), p(6, 7), p(8, 9)] {
            assert_eq!(store.root_of(pair), None, "{pair} must be fully retired");
        }
        // Retired pairs are free to seed fresh messages.
        store.add_message(&[p(2, 3), p(8, 9)]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.message(store.roots()[0]).unwrap().len(), 2);
    }

    #[test]
    fn retain_messages_rebuilds_the_union_find_from_survivors() {
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(2, 3)]);
        store.add_message(&[p(4, 5), p(6, 7)]);
        store.add_message(&[p(8, 9)]);
        assert_eq!(store.len(), 3);
        // Drop the message holding (4,5); the others survive verbatim.
        let dropped = store.retain_messages(|m| !m.contains(&p(4, 5)));
        assert_eq!(dropped, 1);
        assert_eq!(store.len(), 2);
        assert!(store.root_of(p(4, 5)).is_none(), "fully retired");
        assert!(store.root_of(p(6, 7)).is_none(), "whole message gone");
        let surviving = store.root_of(p(0, 1)).expect("survivor");
        let mut members = store.message(surviving).unwrap().to_vec();
        members.sort_unstable();
        assert_eq!(members, vec![p(0, 1), p(2, 3)]);
        // The rebuilt forest still merges correctly.
        store.add_message(&[p(2, 3), p(8, 9)]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.message(store.roots()[0]).unwrap().len(), 3);
        // Retaining everything is a no-op; dropping everything empties.
        assert_eq!(store.retain_messages(|_| true), 0);
        assert_eq!(store.retain_messages(|_| false), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn memo_bank_invalidate_drops_touched_views() {
        use crate::dataset::{Dataset, SimLevel};
        use crate::entity::EntityId;
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..4 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(p(0, 1), SimLevel(2));
        ds.set_similar(p(2, 3), SimLevel(1));
        let mut bank = MemoBank::new();
        bank.deposit(
            &ds.view([EntityId(0), EntityId(1)]),
            memo_with_entries(&[p(0, 1)]),
        );
        bank.deposit(
            &ds.view([EntityId(2), EntityId(3)]),
            memo_with_entries(&[p(2, 3)]),
        );
        assert_eq!(bank.len(), 2);
        let dropped = bank.invalidate(|members, pairs| {
            members.contains(&EntityId(0)) || pairs.iter().any(|&(q, _)| q == p(9, 10))
        });
        assert_eq!(dropped, 1);
        assert_eq!(bank.len(), 1);
        // The surviving entry still withdraws for its identical view.
        assert!(bank
            .withdraw(&ds.view([EntityId(2), EntityId(3)]))
            .is_some());
    }

    #[test]
    fn rekey_churned_survives_a_delta_that_shrinks_and_grows_one_view() {
        use crate::dataset::{Dataset, SimLevel};
        use crate::entity::EntityId;
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..3 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(p(0, 1), SimLevel(2));
        ds.set_similar(p(0, 2), SimLevel(2));
        let mut bank = MemoBank::new();
        bank.deposit(
            &ds.view([EntityId(0), EntityId(1), EntityId(2)]),
            memo_with_entries(&[p(0, 1), p(0, 2)]),
        );

        // One delta: entity 2 retracted AND entity 3 added to the same
        // view. The rekey sees only the shrink half; the grow half
        // resolves at withdrawal through the entity floor.
        let gone: FxHashSet<EntityId> = [EntityId(2)].into_iter().collect();
        let invalid: PairSet = [p(0, 2)].into_iter().collect();
        assert_eq!(bank.rekey_churned(&gone, &[], &invalid), 1);

        ds.retract_similar(p(0, 2)).expect("asserted above");
        ds.entities.add_entity(ty);
        ds.set_similar(p(0, 3), SimLevel(2));
        let view = ds.view([EntityId(0), EntityId(1), EntityId(3)]);
        let (memo, identical) = bank
            .withdraw_grown(&view, 3)
            .expect("the rekeyed entry must withdraw for the churned view");
        assert!(!identical, "a churned view re-evaluates");
        assert!(
            memo.entailed.contains_key(&p(0, 1)),
            "the surviving probe replays"
        );
        assert!(
            !memo.entailed.contains_key(&p(0, 2)),
            "the dead probe re-issues"
        );
    }

    #[test]
    fn rekey_churned_rekeys_link_only_retraction_where_rekey_shrunk_cannot() {
        use crate::dataset::{Dataset, SimLevel};
        use crate::entity::EntityId;
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..3 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(p(0, 1), SimLevel(3));
        ds.set_similar(p(1, 2), SimLevel(2));
        let mut bank = MemoBank::new();
        bank.deposit(
            &ds.view([EntityId(0), EntityId(1), EntityId(2)]),
            memo_with_entries(&[p(0, 1), p(1, 2)]),
        );

        // A delta retracting only the (0,1) candidate link: no entity is
        // gone, so the old rekey path cannot touch the entry...
        let invalid: PairSet = [p(0, 1)].into_iter().collect();
        let mut via_shrunk = bank.clone();
        assert_eq!(
            via_shrunk.rekey_shrunk(&FxHashSet::default(), &invalid),
            0,
            "rekey_shrunk misses link-only churn by construction"
        );
        // ...and the stale identity then mismatches the churned view,
        // silently dropping the memo.
        let mut churned = ds.clone();
        churned.retract_similar(p(0, 1)).expect("asserted above");
        assert!(via_shrunk
            .withdraw_grown(&churned.view([EntityId(0), EntityId(1), EntityId(2)]), 3)
            .is_none());

        // rekey_churned keeps the identity honest, so the memo survives.
        assert_eq!(
            bank.rekey_churned(&FxHashSet::default(), &[p(0, 1)], &invalid),
            1
        );
        let (memo, identical) = bank
            .withdraw_grown(&churned.view([EntityId(0), EntityId(1), EntityId(2)]), 3)
            .expect("identity stays honest after link retraction");
        assert!(!identical, "tainted entries re-evaluate");
        assert!(memo.entailed.contains_key(&p(1, 2)), "survivor replays");
        assert!(!memo.entailed.contains_key(&p(0, 1)), "retracted re-issues");
    }

    fn memo_with_entries(pairs: &[Pair]) -> ProbeMemo {
        ProbeMemo {
            visited: true,
            from_bank: false,
            undecided: pairs.to_vec(),
            entailed: pairs.iter().map(|&p| (p, Vec::new())).collect(),
        }
    }

    #[test]
    fn memo_pool_evicts_least_recently_used_first() {
        use crate::cover::NeighborhoodId;
        let mut stats = RunStats::default();
        let mut pool = MemoPool::new(3, 4);
        pool.put(
            NeighborhoodId(0),
            memo_with_entries(&[p(0, 1), p(2, 3)]),
            &mut stats,
        );
        pool.put(
            NeighborhoodId(1),
            memo_with_entries(&[p(4, 5), p(6, 7)]),
            &mut stats,
        );
        assert_eq!(pool.total_entries(), 4);
        assert_eq!(stats.memo_evictions, 0);
        // Overflow: neighborhood 0 is the least recently used, so its two
        // entries go; 1 and 2 stay.
        pool.put(NeighborhoodId(2), memo_with_entries(&[p(8, 9)]), &mut stats);
        assert_eq!(stats.memo_evictions, 2);
        assert_eq!(pool.total_entries(), 3);
        assert_eq!(pool.get(NeighborhoodId(0)).entries(), 0);
        assert!(!pool.get(NeighborhoodId(0)).is_visited(), "evicted whole");
        assert_eq!(pool.get(NeighborhoodId(1)).entries(), 2);
        assert_eq!(pool.get(NeighborhoodId(2)).entries(), 1);
        // take() releases capacity; putting back re-accounts it.
        let taken = pool.take(NeighborhoodId(1));
        assert_eq!(pool.total_entries(), 1);
        pool.put(NeighborhoodId(1), taken, &mut stats);
        assert_eq!(pool.total_entries(), 3);
        assert_eq!(stats.memo_evictions, 2, "no further evictions");
    }

    #[test]
    fn memo_pool_evicts_even_the_just_put_memo_when_alone_over_capacity() {
        use crate::cover::NeighborhoodId;
        let mut stats = RunStats::default();
        let mut pool = MemoPool::new(2, 1);
        pool.put(
            NeighborhoodId(0),
            memo_with_entries(&[p(0, 1), p(2, 3), p(4, 5)]),
            &mut stats,
        );
        // A single memo larger than the whole capacity cannot be kept:
        // the memory bound wins over the replay opportunity.
        assert_eq!(stats.memo_evictions, 3);
        assert_eq!(pool.total_entries(), 0);
    }

    #[test]
    fn bounded_memo_capacity_is_byte_identical_and_surfaces_evictions() {
        let (ds, cover, matcher, expected) = paper_example();
        let unbounded = run_mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
        );
        assert_eq!(unbounded.stats.memo_evictions, 0);
        let bounded = run_mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig {
                memo_capacity: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            bounded.matches, expected,
            "eviction must not change outputs"
        );
        assert!(
            bounded.stats.memo_evictions > 0,
            "a one-entry capacity must evict on this workload"
        );
        assert!(
            bounded.stats.conditioned_probes >= unbounded.stats.conditioned_probes,
            "lost memos can only cost extra probes"
        );
    }

    #[test]
    fn incremental_mmp_matches_full_recompute_on_the_paper_example() {
        let (ds, cover, matcher, expected) = paper_example();
        let full_cfg = MmpConfig {
            incremental: false,
            ..Default::default()
        };
        let full = run_mmp(&matcher, &ds, &cover, &Evidence::none(), &full_cfg);
        let incr = run_mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
        );
        assert_eq!(full.matches, expected);
        assert_eq!(incr.matches, expected, "incremental must be byte-identical");
        assert!(
            incr.stats.conditioned_probes <= full.stats.conditioned_probes,
            "incremental issues no more probes ({} vs {})",
            incr.stats.conditioned_probes,
            full.stats.conditioned_probes
        );
        assert_eq!(full.stats.probes_replayed, 0);
    }

    #[test]
    fn replayed_probes_are_counted() {
        // Two disjoint components inside one neighborhood: re-activating
        // the neighborhood through one component must not re-probe the
        // other.
        let (ds, cover, matcher, _) = paper_example();
        let out = run_mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
        );
        // The paper example revisits C1 after C2's (c1,c2) message; the
        // chain component re-probes but at least the bookkeeping holds.
        assert_eq!(
            out.stats.conditioned_probes + out.stats.probes_replayed,
            run_mmp(
                &matcher,
                &ds,
                &cover,
                &Evidence::none(),
                &MmpConfig {
                    incremental: false,
                    ..Default::default()
                }
            )
            .stats
            .conditioned_probes,
            "probes issued + replayed must equal the full-recompute count"
        );
    }
}
