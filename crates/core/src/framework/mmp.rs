//! MMP — Maximal Message Passing (Algorithms 2 and 3).
//!
//! A *maximal message* (Definition 8) is a set of pairs that the full-run
//! matcher either matches entirely or not at all — a "partial inference by
//! a neighborhood, waiting to be completed". SMP cannot discover match sets
//! whose score only becomes positive when *all* of them are matched (the
//! paper's `(a1,a2), (b2,b3), (c2,c3)` chicken-and-egg chain); MMP can:
//!
//! 1. [`compute_maximal`] (Algorithm 2) probes each undecided candidate
//!    pair `p` of a neighborhood with one conditioned matcher call
//!    `E(C, M+ ∪ {p})`; mutual entailment edges define a graph whose
//!    connected components are maximal messages (Lemma 1).
//! 2. [`MessageStore`] keeps the message set `T` closed under the merge
//!    rule of Proposition 3(ii): overlapping maximal messages union into a
//!    bigger maximal message (`T ← (T ∪ TC)*`).
//! 3. Step 7 *promotes* a message `M` to real matches when
//!    `P(M+ ∪ M) ≥ P(M+)`; by supermodularity this implies `M ⊆ E(E)`, so
//!    promotion is sound (Theorem 4).

use crate::cover::{Cover, NeighborhoodId};
use crate::dataset::{Dataset, View};
use crate::evidence::Evidence;
use crate::hash::FxHashMap;
use crate::matcher::{GlobalScorer, MatchOutput, ProbabilisticMatcher, Score};
use crate::pair::{Pair, PairSet};
use std::time::Instant;

use super::{RunStats, Worklist};

/// Tuning knobs for MMP.
#[derive(Debug, Clone, Copy)]
pub struct MmpConfig {
    /// Include single-pair messages. A singleton `{p}` is trivially maximal
    /// and promoting it when its global score delta is non-negative is
    /// sound; disabling this reproduces a strictly more conservative MMP
    /// (useful as an ablation).
    pub singleton_messages: bool,
    /// Upper bound on the number of conditioned probes per neighborhood
    /// evaluation (`COMPUTEMAXIMAL` costs one matcher call per undecided
    /// pair). `usize::MAX` means no bound.
    pub max_probes_per_neighborhood: usize,
}

impl Default for MmpConfig {
    fn default() -> Self {
        Self {
            singleton_messages: true,
            max_probes_per_neighborhood: usize::MAX,
        }
    }
}

/// The message set `T`, kept closed under union-of-overlapping-messages.
///
/// Internally a union-find over pairs: each pair belongs to at most one
/// message (Proposition 3 guarantees the closure `T*` is a partition of
/// the covered pairs).
#[derive(Debug, Default, Clone)]
pub struct MessageStore {
    /// Union-find parent pointers; roots map to themselves.
    parent: FxHashMap<Pair, Pair>,
    /// Members of each root's message (only valid for roots).
    members: FxHashMap<Pair, Vec<Pair>>,
}

impl MessageStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn find(&mut self, pair: Pair) -> Option<Pair> {
        let mut root = *self.parent.get(&pair)?;
        while let Some(&next) = self.parent.get(&root) {
            if next == root {
                break;
            }
            root = next;
        }
        // Path compression.
        let mut cur = pair;
        while let Some(&next) = self.parent.get(&cur) {
            if next == root {
                break;
            }
            self.parent.insert(cur, root);
            cur = next;
        }
        Some(root)
    }

    /// Add a maximal message, merging with any existing overlapping
    /// messages (the `(T ∪ TC)*` closure). Returns the root of the merged
    /// message.
    pub fn add_message(&mut self, pairs: &[Pair]) -> Option<Pair> {
        let (&first, rest) = pairs.split_first()?;
        let mut root = match self.find(first) {
            Some(r) => r,
            None => {
                self.parent.insert(first, first);
                self.members.insert(first, vec![first]);
                first
            }
        };
        for &p in rest {
            match self.find(p) {
                Some(other_root) if other_root == root => {}
                Some(other_root) => {
                    // Merge the smaller member list into the larger.
                    let (winner, loser) = {
                        let a = self.members[&root].len();
                        let b = self.members[&other_root].len();
                        if a >= b {
                            (root, other_root)
                        } else {
                            (other_root, root)
                        }
                    };
                    let moved = self.members.remove(&loser).expect("loser is a root");
                    self.parent.insert(loser, winner);
                    self.members
                        .get_mut(&winner)
                        .expect("winner is a root")
                        .extend(moved);
                    root = winner;
                }
                None => {
                    self.parent.insert(p, root);
                    self.members
                        .get_mut(&root)
                        .expect("root has members")
                        .push(p);
                }
            }
        }
        Some(root)
    }

    /// Current root of the message containing `pair`, if any.
    pub fn root_of(&mut self, pair: Pair) -> Option<Pair> {
        self.find(pair)
    }

    /// Remove the message rooted at `root`, returning its members.
    pub fn remove_message(&mut self, root: Pair) -> Option<Vec<Pair>> {
        let members = self.members.remove(&root)?;
        for p in &members {
            self.parent.remove(p);
        }
        Some(members)
    }

    /// Roots of all current messages (deterministic order for consistency:
    /// sorted by the canonical pair order).
    pub fn roots(&self) -> Vec<Pair> {
        let mut roots: Vec<Pair> = self.members.keys().copied().collect();
        roots.sort_unstable();
        roots
    }

    /// Members of the message rooted at `root`.
    pub fn message(&self, root: Pair) -> Option<&[Pair]> {
        self.members.get(&root).map(Vec::as_slice)
    }

    /// Number of messages currently stored.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the store holds no messages.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Algorithm 2: compute the maximal messages of one neighborhood.
///
/// `base` must be the matcher's output `E(C, M+)` for the same view and
/// evidence (passed in so MMP does not re-run it). Returns the connected
/// components of the mutual-entailment graph over the undecided candidate
/// pairs.
pub fn compute_maximal(
    matcher: &dyn ProbabilisticMatcher,
    view: &View<'_>,
    evidence: &Evidence,
    base: &PairSet,
    config: &MmpConfig,
    stats: &mut RunStats,
) -> Vec<Vec<Pair>> {
    // Undecided pairs: candidates not already matched or excluded.
    let mut undecided: Vec<Pair> = view
        .candidate_pairs()
        .into_iter()
        .map(|(p, _)| p)
        .filter(|p| {
            !base.contains(*p) && !evidence.positive.contains(*p) && !evidence.negative.contains(*p)
        })
        .collect();
    undecided.sort_unstable();
    undecided.truncate(config.max_probes_per_neighborhood);
    if undecided.is_empty() {
        return Vec::new();
    }

    // One conditioned probe per undecided pair: entails[i] = pairs newly
    // matched when pair i is assumed true.
    let index: FxHashMap<Pair, usize> =
        undecided.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let entailed_sets = matcher.probe_entailed(view, evidence, base, &undecided);
    stats.matcher_calls += undecided.len() as u64;
    let mut entails: Vec<Vec<usize>> = Vec::with_capacity(undecided.len());
    for set in &entailed_sets {
        let mut entailed: Vec<usize> = set.iter().filter_map(|q| index.get(q).copied()).collect();
        entailed.sort_unstable();
        entails.push(entailed);
    }

    // Mutual entailment edges → connected components (union-find on indices).
    let mut parent: Vec<usize> = (0..undecided.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (i, entailed) in entails.iter().enumerate() {
        for &j in entailed {
            if j == i {
                continue;
            }
            // Edge requires entailment in both directions (Algorithm 2).
            if entails[j].binary_search(&i).is_ok() {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    let mut components: FxHashMap<usize, Vec<Pair>> = FxHashMap::default();
    for (i, &pair) in undecided.iter().enumerate() {
        let root = find(&mut parent, i);
        components.entry(root).or_default().push(pair);
    }
    let mut messages: Vec<Vec<Pair>> = components
        .into_values()
        .filter(|m| config.singleton_messages || m.len() > 1)
        .collect();
    for m in &mut messages {
        m.sort_unstable();
    }
    messages.sort_unstable();
    messages
}

/// Algorithm 3: run MMP over a cover.
pub fn mmp(
    matcher: &dyn ProbabilisticMatcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &MmpConfig,
) -> MatchOutput {
    mmp_with_order(matcher, dataset, cover, evidence, config, None)
}

/// MMP with an explicit initial evaluation order (consistency tests).
pub fn mmp_with_order(
    matcher: &dyn ProbabilisticMatcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &MmpConfig,
    order: Option<&[NeighborhoodId]>,
) -> MatchOutput {
    let start = Instant::now();
    let scorer = matcher.global_scorer(dataset);
    let mut worklist = match order {
        Some(order) => Worklist::with_order(cover.len(), order),
        None => Worklist::full(cover.len()),
    };
    let mut out = MatchOutput::default();
    let mut found = evidence.positive.clone();
    let mut store = MessageStore::new();
    // Messages whose promotion delta may have changed, identified by any
    // member pair (resolved to the current root when processed).
    let mut dirty: Vec<Pair> = Vec::new();

    while let Some(id) = worklist.pop() {
        let view = cover.view(dataset, id);
        let local_evidence = Evidence {
            positive: view.restrict(&found),
            negative: view.restrict(&evidence.negative),
        };
        let undecided = view
            .candidate_pairs()
            .iter()
            .filter(|(p, _)| !local_evidence.positive.contains(*p))
            .count() as u64;
        let base = matcher.match_view(&view, &local_evidence);
        out.stats.matcher_calls += 1;
        out.stats.neighborhoods_processed += 1;
        out.stats.active_pairs_evaluated += undecided;

        // Step 5b: new maximal messages from this neighborhood.
        let new_messages = compute_maximal(
            matcher,
            &view,
            &local_evidence,
            &base,
            config,
            &mut out.stats,
        );
        out.stats.maximal_messages_created += new_messages.len() as u64;
        for message in &new_messages {
            // Messages touching hard negative evidence can never be
            // all-true; drop them.
            if message.iter().any(|p| evidence.negative.contains(*p)) {
                continue;
            }
            if let Some(root) = store.add_message(message) {
                dirty.push(root);
            }
        }

        // Step 6: fold the direct matches into M+. Each new match makes
        // dirty every message it shares a ground edge with.
        let mut new_matches: PairSet = base.difference(&found);
        found.union_with(&new_matches);
        mark_dirty_around(&new_matches, scorer.as_ref(), &mut store, &mut dirty);

        // Step 7: promote messages whose global score delta is
        // non-negative, to fixpoint (a promotion can enable another).
        let promoted = promote_dirty(
            &mut store,
            scorer.as_ref(),
            &mut found,
            &mut dirty,
            &mut out.stats,
        );
        new_matches.extend(promoted.iter());

        // Step 8: reactivate neighborhoods that can use the new evidence.
        if !new_matches.is_empty() {
            out.stats.messages_sent += new_matches.len() as u64;
            for pair in new_matches.iter() {
                for affected in cover.containing_pair(pair) {
                    if affected != id {
                        worklist.push(affected);
                    }
                }
            }
        }
    }

    for p in evidence.negative.iter() {
        found.remove(p);
    }
    out.matches = found;
    out.stats.wall_time = start.elapsed();
    out
}

/// Mark dirty every stored message containing a pair that interacts with
/// one of `new_matches` (including messages containing the match itself:
/// its remaining members' delta changed too).
pub fn mark_dirty_around(
    new_matches: &PairSet,
    scorer: &dyn GlobalScorer,
    store: &mut MessageStore,
    dirty: &mut Vec<Pair>,
) {
    for p in new_matches.iter() {
        if store.root_of(p).is_some() {
            dirty.push(p);
        }
        for q in scorer.affected_pairs(p) {
            if store.root_of(q).is_some() {
                dirty.push(q);
            }
        }
    }
}

/// Dirty-driven promotion: pop message handles until none qualify.
/// Promoting a message marks dirty everything its new matches interact
/// with, so the loop reaches the same fixpoint as a full scan —
/// `delta(M+, M)` can only change when a new match shares a ground term
/// with `M` (supermodularity), which is exactly what
/// [`GlobalScorer::affected_pairs`] reports. Returns the promoted pairs.
pub fn promote_dirty(
    store: &mut MessageStore,
    scorer: &dyn GlobalScorer,
    found: &mut PairSet,
    dirty: &mut Vec<Pair>,
    stats: &mut RunStats,
) -> PairSet {
    let mut promoted = PairSet::new();
    while let Some(handle) = dirty.pop() {
        let Some(root) = store.root_of(handle) else {
            continue; // message already promoted or retired
        };
        let members = store.message(root).expect("root has members");
        let fresh: Vec<Pair> = members
            .iter()
            .copied()
            .filter(|p| !found.contains(*p))
            .collect();
        if fresh.is_empty() {
            // Entirely subsumed by M+; retire it.
            store.remove_message(root);
            continue;
        }
        stats.score_delta_calls += 1;
        if scorer.delta(found, &fresh) >= Score::ZERO {
            store.remove_message(root);
            let mut batch = PairSet::with_capacity(fresh.len());
            for p in fresh {
                found.insert(p);
                promoted.insert(p);
                batch.insert(p);
            }
            stats.promotions += 1;
            mark_dirty_around(&batch, scorer, store, dirty);
        }
    }
    promoted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityId;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    #[test]
    fn message_store_merges_overlaps() {
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(2, 3)]);
        store.add_message(&[p(4, 5), p(6, 7)]);
        assert_eq!(store.len(), 2);
        // Overlaps both → all merge into one message (Prop. 3(ii)).
        store.add_message(&[p(2, 3), p(4, 5)]);
        assert_eq!(store.len(), 1);
        let root = store.roots()[0];
        let mut members = store.message(root).unwrap().to_vec();
        members.sort_unstable();
        assert_eq!(members, vec![p(0, 1), p(2, 3), p(4, 5), p(6, 7)]);
    }

    #[test]
    fn message_store_remove_clears_members() {
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(2, 3)]);
        let root = store.roots()[0];
        let members = store.remove_message(root).unwrap();
        assert_eq!(members.len(), 2);
        assert!(store.is_empty());
        // Pairs are free to join new messages afterwards.
        store.add_message(&[p(0, 1)]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn message_store_dedups_within_message() {
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(0, 1), p(2, 3)]);
        assert_eq!(store.len(), 1);
        let root = store.roots()[0];
        assert_eq!(store.message(root).unwrap().len(), 2);
    }

    #[test]
    fn empty_message_is_ignored() {
        let mut store = MessageStore::new();
        assert!(store.add_message(&[]).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn merge_closure_property_holds_for_chained_overlaps() {
        // Proposition 3(ii): the store must equal the closure (T ∪ TC)*
        // regardless of insertion order. Insert k two-pair messages that
        // chain through shared pairs, in several orders; the closure is
        // always one message holding every pair.
        let chain: Vec<[Pair; 2]> = (0..6u32)
            .map(|i| [p(2 * i, 2 * i + 1), p(2 * i + 2, 2 * i + 3)])
            .collect();
        let orders: Vec<Vec<usize>> = vec![
            (0..6).collect(),
            (0..6).rev().collect(),
            vec![0, 2, 4, 1, 3, 5], // merge islands, then bridge them
        ];
        for order in orders {
            let mut store = MessageStore::new();
            for &i in &order {
                store.add_message(&chain[i]);
            }
            assert_eq!(
                store.len(),
                1,
                "order {order:?} must close into one message"
            );
            let root = store.roots()[0];
            let mut members = store.message(root).unwrap().to_vec();
            members.sort_unstable();
            let mut expected: Vec<Pair> = (0..7u32).map(|i| p(2 * i, 2 * i + 1)).collect();
            expected.sort_unstable();
            assert_eq!(members, expected);
        }
    }

    #[test]
    fn path_compression_is_idempotent_and_consistent() {
        // Build a long union chain so find() exercises compression, then
        // check repeated root queries agree for every member — before and
        // after further merges.
        let mut store = MessageStore::new();
        for i in 0..10u32 {
            store.add_message(&[p(i, 100 + i), p(i + 1, 101 + i)]);
        }
        assert_eq!(store.len(), 1);
        let root = store.roots()[0];
        for i in 0..10u32 {
            let first = store.root_of(p(i, 100 + i));
            let second = store.root_of(p(i, 100 + i));
            assert_eq!(first, Some(root), "member {i} resolves to the root");
            assert_eq!(first, second, "resolution is idempotent");
        }
        // A later merge through an existing member keeps one root for all.
        store.add_message(&[p(5, 105), p(200, 201)]);
        let new_root = store.root_of(p(200, 201)).unwrap();
        for i in 0..10u32 {
            assert_eq!(store.root_of(p(i, 100 + i)), Some(new_root));
        }
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn promotion_after_merge_preserves_membership() {
        // Regression: removing (= promoting) a message that was built from
        // several merges must return *every* transitive member exactly
        // once, and leave the store genuinely empty — stale parent
        // pointers must not resurrect pairs or panic later operations.
        let mut store = MessageStore::new();
        store.add_message(&[p(0, 1), p(2, 3)]);
        store.add_message(&[p(4, 5), p(6, 7)]);
        store.add_message(&[p(2, 3), p(4, 5)]); // bridges the two
        store.add_message(&[p(6, 7), p(8, 9)]); // extends the merged one
        assert_eq!(store.len(), 1);
        let root = store.root_of(p(8, 9)).unwrap();
        let mut members = store.remove_message(root).unwrap();
        members.sort_unstable();
        assert_eq!(
            members,
            vec![p(0, 1), p(2, 3), p(4, 5), p(6, 7), p(8, 9)],
            "promotion must carry every merged member"
        );
        assert!(store.is_empty());
        for pair in [p(0, 1), p(2, 3), p(4, 5), p(6, 7), p(8, 9)] {
            assert_eq!(store.root_of(pair), None, "{pair} must be fully retired");
        }
        // Retired pairs are free to seed fresh messages.
        store.add_message(&[p(2, 3), p(8, 9)]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.message(store.roots()[0]).unwrap().len(), 2);
    }
}
