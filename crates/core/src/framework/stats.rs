//! Execution statistics for framework runs.

use std::time::Duration;

/// Counters collected during a framework run.
///
/// The interesting ones mirror the paper's cost model: `matcher_calls`
/// dominates total time (§6.2: "the total running time is dominated by the
/// sum of running times of MLN on all the neighborhoods; the actual
/// overhead of message passing is minimal"), and `active_pairs_evaluated`
/// explains why SMP/MMP can be *faster* than NO-MP — evidence shrinks the
/// active size of revisited neighborhoods. `conditioned_probes` vs
/// `probes_replayed` is the incremental-MMP ledger: probes whose
/// conditioning set provably did not change are replayed from the
/// per-neighborhood memo instead of re-running inference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Invocations of the black-box matcher (including `COMPUTEMAXIMAL`'s
    /// conditioned probes actually issued to the matcher).
    pub matcher_calls: u64,
    /// Neighborhood evaluations (≥ number of neighborhoods when revisits
    /// happen).
    pub neighborhoods_processed: u64,
    /// Sum over matcher calls of the number of *undecided* candidate pairs
    /// in the view — the "active size" the paper credits for SMP's speed.
    pub active_pairs_evaluated: u64,
    /// Simple messages passed (new matches that reactivated at least one
    /// neighborhood).
    pub messages_sent: u64,
    /// Maximal messages created by `COMPUTEMAXIMAL` (before merging).
    pub maximal_messages_created: u64,
    /// Maximal messages promoted to matches in step 7.
    pub promotions: u64,
    /// Global score-delta evaluations (MMP step 7 probes).
    pub score_delta_calls: u64,
    /// Conditioned probes issued to the matcher by `COMPUTEMAXIMAL`.
    pub conditioned_probes: u64,
    /// Conditioned probes answered without inference (incremental MMP):
    /// replayed from the per-neighborhood memo because the delta could
    /// not have changed them, or elided because the pair is a singleton
    /// ground-interaction component.
    pub probes_replayed: u64,
    /// Memoized probe entries dropped by the [`super::MemoPool`]'s LRU
    /// eviction (`MmpConfig::memo_capacity`); each evicted entry costs
    /// one extra conditioned probe on the neighborhood's next revisit.
    pub memo_evictions: u64,
    /// Parallel rounds executed (0 for sequential runs).
    pub rounds: u64,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
}

impl RunStats {
    /// Merge counters from another run (used by the parallel executor when
    /// combining per-worker stats; wall time takes the max since workers
    /// overlap, rounds take the max since workers share the round loop).
    pub fn merge(&mut self, other: &RunStats) {
        self.matcher_calls += other.matcher_calls;
        self.neighborhoods_processed += other.neighborhoods_processed;
        self.active_pairs_evaluated += other.active_pairs_evaluated;
        self.messages_sent += other.messages_sent;
        self.maximal_messages_created += other.maximal_messages_created;
        self.promotions += other.promotions;
        self.score_delta_calls += other.score_delta_calls;
        self.conditioned_probes += other.conditioned_probes;
        self.probes_replayed += other.probes_replayed;
        self.memo_evictions += other.memo_evictions;
        self.rounds = self.rounds.max(other.rounds);
        self.wall_time = self.wall_time.max(other.wall_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counts_and_maxes_wall_time() {
        let mut a = RunStats {
            matcher_calls: 3,
            neighborhoods_processed: 2,
            active_pairs_evaluated: 10,
            messages_sent: 1,
            maximal_messages_created: 4,
            promotions: 1,
            score_delta_calls: 5,
            conditioned_probes: 2,
            probes_replayed: 1,
            memo_evictions: 0,
            rounds: 3,
            wall_time: Duration::from_millis(10),
        };
        let b = RunStats {
            matcher_calls: 7,
            conditioned_probes: 5,
            probes_replayed: 2,
            rounds: 1,
            wall_time: Duration::from_millis(25),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.matcher_calls, 10);
        assert_eq!(a.neighborhoods_processed, 2);
        assert_eq!(a.conditioned_probes, 7);
        assert_eq!(a.probes_replayed, 3);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.wall_time, Duration::from_millis(25));
    }
}
