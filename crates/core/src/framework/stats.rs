//! Execution statistics for framework runs.

use std::time::Duration;

/// Counters collected during a framework run.
///
/// The interesting ones mirror the paper's cost model: `matcher_calls`
/// dominates total time (§6.2: "the total running time is dominated by the
/// sum of running times of MLN on all the neighborhoods; the actual
/// overhead of message passing is minimal"), and `active_pairs_evaluated`
/// explains why SMP/MMP can be *faster* than NO-MP — evidence shrinks the
/// active size of revisited neighborhoods. `conditioned_probes` vs
/// `probes_replayed` is the incremental-MMP ledger: probes whose
/// conditioning set provably did not change are replayed from the
/// per-neighborhood memo instead of re-running inference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Invocations of the black-box matcher (including `COMPUTEMAXIMAL`'s
    /// conditioned probes actually issued to the matcher).
    pub matcher_calls: u64,
    /// Neighborhood evaluations (≥ number of neighborhoods when revisits
    /// happen).
    pub neighborhoods_processed: u64,
    /// Sum over matcher calls of the number of *undecided* candidate pairs
    /// in the view — the "active size" the paper credits for SMP's speed.
    pub active_pairs_evaluated: u64,
    /// Simple messages passed (new matches that reactivated at least one
    /// neighborhood).
    pub messages_sent: u64,
    /// Maximal messages created by `COMPUTEMAXIMAL` (before merging).
    pub maximal_messages_created: u64,
    /// Maximal messages promoted to matches in step 7.
    pub promotions: u64,
    /// Global score-delta evaluations (MMP step 7 probes).
    pub score_delta_calls: u64,
    /// Conditioned probes issued to the matcher by `COMPUTEMAXIMAL`.
    pub conditioned_probes: u64,
    /// Conditioned probes answered without inference (incremental MMP):
    /// replayed from the per-neighborhood memo because the delta could
    /// not have changed them, or elided because the pair is a singleton
    /// ground-interaction component.
    pub probes_replayed: u64,
    /// Score-gap certificates inspected because their pair sat in a
    /// delta-touched ground component (the `Approximate` arm; see
    /// [`super::certificates`]). Each check ends as exactly one of
    /// `certificates_breached` or `probes_elided`, so
    /// `certificates_checked == certificates_breached + probes_elided`
    /// — the certificate ledger the invariant sweep asserts.
    pub certificates_checked: u64,
    /// Certificates whose gap the delta footprint breached: the pair's
    /// memoized probe was discarded and the probe re-issued.
    pub certificates_breached: u64,
    /// Delta-touched probes elided because their certificate held: the
    /// memoized result replayed without re-running the matcher. A
    /// subset of `probes_replayed`.
    pub probes_elided: u64,
    /// Memoized probe entries dropped by the [`super::MemoPool`]'s LRU
    /// eviction (`MmpConfig::memo_capacity`); each evicted entry costs
    /// one extra conditioned probe on the neighborhood's next revisit.
    pub memo_evictions: u64,
    /// Parallel rounds executed (0 for sequential runs).
    pub rounds: u64,
    /// Ground-interaction components whose carried state a session
    /// rollback dropped before this run (`MatchSession::update` with
    /// retractions; 0 otherwise).
    pub components_invalidated: u64,
    /// Carried maximal messages dropped by that rollback.
    pub messages_dropped: u64,
    /// Banked probe memos dropped by that rollback.
    pub memos_dropped: u64,
    /// Candidate pairs whose similarity the delta re-block re-scored
    /// (new pairs plus pairs whose canopy changed).
    pub pairs_reblocked: u64,
    /// Shard driver threads lost to a panic (injected or organic) that
    /// the epoch coordinator observed and survived.
    pub shard_panics: u64,
    /// Epoch-fence waits that exhausted their bounded timeout (each retry
    /// that expired counts once; a stalled shard typically accumulates
    /// several before being declared dead).
    pub fence_timeouts: u64,
    /// Dead or stalled shards whose epoch work the coordinator re-executed
    /// sequentially from the broadcast history (graceful degradation).
    pub shards_recovered: u64,
    /// Invariant-checker sweeps executed (per fence in the sharded
    /// runtime, per run/update at the session level).
    pub invariant_checks: u64,
    /// Invariant violations detected across those sweeps. Zero in any
    /// healthy run; a nonzero value means a structural bug, not a fault.
    pub invariant_violations: u64,
    /// Bytes of durable-session snapshots written (checkpoints) or
    /// loaded (recovery) since the previous run. Zero for sessions
    /// without an attached store.
    pub snapshot_bytes: u64,
    /// Write-ahead-log frames a recovery replayed to rebuild this
    /// session (each frame re-executes one journaled update, run, or
    /// warm reset).
    pub wal_frames_replayed: u64,
    /// Wall-clock milliseconds a recovery spent loading the snapshot
    /// and replaying the WAL tail.
    pub recovery_ms: u64,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
}

impl RunStats {
    /// Merge counters from another run. This is the **one** aggregation
    /// rule every backend uses — the sequential drivers, the round-based
    /// parallel executor, and the sharded runtime all combine per-worker
    /// stats through it: counters sum, wall time takes the max (workers
    /// overlap), rounds take the max (workers share the round loop).
    /// Backends that know the true wall time / round count of the whole
    /// run fix them up afterwards with [`RunStats::finalize`].
    ///
    /// ## Degraded-shard accounting
    ///
    /// When the shard coordinator recovers a dead shard by re-executing
    /// its epoch work inline, exactly one stats object per shard slot may
    /// enter this fold: the replacement's. A panicked driver's partial
    /// counters die with its thread (its `ShardOutcome` is never
    /// produced), and a *stalled* driver that eventually joins cleanly
    /// has its outcome **discarded** by the coordinator — merging both it
    /// and its replacement would double-count every neighborhood the two
    /// evaluated in common and break the probe ledger
    /// (`matcher_calls == neighborhoods_processed + conditioned_probes`),
    /// which holds for each surviving stats object individually and is
    /// therefore preserved by this sum.
    pub fn merge(&mut self, other: &RunStats) {
        self.matcher_calls += other.matcher_calls;
        self.neighborhoods_processed += other.neighborhoods_processed;
        self.active_pairs_evaluated += other.active_pairs_evaluated;
        self.messages_sent += other.messages_sent;
        self.maximal_messages_created += other.maximal_messages_created;
        self.promotions += other.promotions;
        self.score_delta_calls += other.score_delta_calls;
        self.conditioned_probes += other.conditioned_probes;
        self.probes_replayed += other.probes_replayed;
        self.certificates_checked += other.certificates_checked;
        self.certificates_breached += other.certificates_breached;
        self.probes_elided += other.probes_elided;
        self.memo_evictions += other.memo_evictions;
        self.components_invalidated += other.components_invalidated;
        self.messages_dropped += other.messages_dropped;
        self.memos_dropped += other.memos_dropped;
        self.pairs_reblocked += other.pairs_reblocked;
        self.shard_panics += other.shard_panics;
        self.fence_timeouts += other.fence_timeouts;
        self.shards_recovered += other.shards_recovered;
        self.invariant_checks += other.invariant_checks;
        self.invariant_violations += other.invariant_violations;
        self.snapshot_bytes += other.snapshot_bytes;
        self.wal_frames_replayed += other.wal_frames_replayed;
        self.recovery_ms += other.recovery_ms;
        self.rounds = self.rounds.max(other.rounds);
        self.wall_time = self.wall_time.max(other.wall_time);
    }

    /// Overwrite the run-level fields after a [`RunStats::merge`] fold:
    /// the coordinator (parallel reduce loop, shard epoch loop, session)
    /// knows the real wall clock and round/epoch count; worker-side
    /// values were only placeholders.
    pub fn finalize(&mut self, wall_time: Duration, rounds: u64) {
        self.wall_time = wall_time;
        self.rounds = rounds;
    }
}

/// One-line human-readable summary, so examples and bench binaries stop
/// hand-formatting the same fields. Omits zero-valued MMP counters for
/// NO-MP/SMP runs.
impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} matcher calls | {} evaluations | {} active pairs | {} messages",
            self.matcher_calls,
            self.neighborhoods_processed,
            self.active_pairs_evaluated,
            self.messages_sent,
        )?;
        if self.conditioned_probes > 0 || self.probes_replayed > 0 {
            write!(
                f,
                " | {} probes ({} replayed)",
                self.conditioned_probes, self.probes_replayed
            )?;
        }
        if self.maximal_messages_created > 0 || self.promotions > 0 {
            write!(
                f,
                " | {} maximal messages, {} promoted",
                self.maximal_messages_created, self.promotions
            )?;
        }
        if self.certificates_checked > 0 {
            write!(
                f,
                " | certificates: {} checked, {} breached, {} probes elided",
                self.certificates_checked, self.certificates_breached, self.probes_elided
            )?;
        }
        if self.memo_evictions > 0 {
            write!(f, " | {} memo evictions", self.memo_evictions)?;
        }
        if self.components_invalidated > 0
            || self.messages_dropped > 0
            || self.memos_dropped > 0
            || self.pairs_reblocked > 0
        {
            write!(
                f,
                " | rollback: {} components, {} messages, {} memos dropped, {} pairs re-blocked",
                self.components_invalidated,
                self.messages_dropped,
                self.memos_dropped,
                self.pairs_reblocked
            )?;
        }
        if self.shard_panics > 0 || self.fence_timeouts > 0 || self.shards_recovered > 0 {
            write!(
                f,
                " | faults: {} panics, {} fence timeouts, {} shards recovered",
                self.shard_panics, self.fence_timeouts, self.shards_recovered
            )?;
        }
        if self.invariant_checks > 0 || self.invariant_violations > 0 {
            write!(
                f,
                " | invariants: {} checks, {} violations",
                self.invariant_checks, self.invariant_violations
            )?;
        }
        if self.snapshot_bytes > 0 || self.wal_frames_replayed > 0 || self.recovery_ms > 0 {
            write!(
                f,
                " | store: {} snapshot bytes, {} frames replayed, {} ms recovery",
                self.snapshot_bytes, self.wal_frames_replayed, self.recovery_ms
            )?;
        }
        if self.rounds > 0 {
            write!(f, " | {} rounds", self.rounds)?;
        }
        write!(f, " | wall {:.1?}", self.wall_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counts_and_maxes_wall_time() {
        let mut a = RunStats {
            matcher_calls: 3,
            neighborhoods_processed: 2,
            active_pairs_evaluated: 10,
            messages_sent: 1,
            maximal_messages_created: 4,
            promotions: 1,
            score_delta_calls: 5,
            conditioned_probes: 2,
            probes_replayed: 1,
            memo_evictions: 0,
            rounds: 3,
            wall_time: Duration::from_millis(10),
            ..Default::default()
        };
        let b = RunStats {
            matcher_calls: 7,
            conditioned_probes: 5,
            probes_replayed: 2,
            rounds: 1,
            wall_time: Duration::from_millis(25),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.matcher_calls, 10);
        assert_eq!(a.neighborhoods_processed, 2);
        assert_eq!(a.conditioned_probes, 7);
        assert_eq!(a.probes_replayed, 3);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.wall_time, Duration::from_millis(25));
    }

    #[test]
    fn finalize_overwrites_run_level_fields_only() {
        let mut s = RunStats {
            matcher_calls: 9,
            rounds: 2,
            wall_time: Duration::from_millis(4),
            ..Default::default()
        };
        s.finalize(Duration::from_millis(100), 7);
        assert_eq!(s.matcher_calls, 9, "counters untouched");
        assert_eq!(s.rounds, 7);
        assert_eq!(s.wall_time, Duration::from_millis(100));
    }

    #[test]
    fn display_elides_zero_mmp_counters() {
        let smp_like = RunStats {
            matcher_calls: 5,
            neighborhoods_processed: 5,
            messages_sent: 2,
            ..Default::default()
        };
        let line = smp_like.to_string();
        assert!(line.contains("5 matcher calls"));
        assert!(!line.contains("probes"), "no probe clause for SMP: {line}");
        assert!(!line.contains("maximal"), "no MMP clause: {line}");

        let mmp_like = RunStats {
            matcher_calls: 5,
            conditioned_probes: 3,
            probes_replayed: 1,
            maximal_messages_created: 2,
            promotions: 1,
            rounds: 4,
            ..Default::default()
        };
        let line = mmp_like.to_string();
        assert!(line.contains("3 probes (1 replayed)"), "{line}");
        assert!(line.contains("2 maximal messages, 1 promoted"), "{line}");
        assert!(line.contains("4 rounds"), "{line}");
    }

    #[test]
    fn certificate_counters_merge_and_display() {
        let mut a = RunStats {
            certificates_checked: 4,
            certificates_breached: 1,
            probes_elided: 3,
            probes_replayed: 5,
            ..Default::default()
        };
        let b = RunStats {
            certificates_checked: 2,
            probes_elided: 2,
            probes_replayed: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.certificates_checked, 6);
        assert_eq!(a.certificates_breached, 1);
        assert_eq!(a.probes_elided, 5);
        // The certificate ledger survives the merge: every check ends as
        // a breach or an elision, and elisions replay.
        assert_eq!(
            a.certificates_checked,
            a.certificates_breached + a.probes_elided
        );
        assert!(a.probes_elided <= a.probes_replayed);
        let line = a.to_string();
        assert!(
            line.contains("certificates: 6 checked, 1 breached, 5 probes elided"),
            "{line}"
        );
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("certificates"), "{clean}");
    }

    #[test]
    fn rollback_counters_merge_and_display() {
        let mut a = RunStats {
            components_invalidated: 2,
            messages_dropped: 5,
            memos_dropped: 3,
            pairs_reblocked: 40,
            ..Default::default()
        };
        let b = RunStats {
            components_invalidated: 1,
            pairs_reblocked: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.components_invalidated, 3);
        assert_eq!(a.pairs_reblocked, 42);
        let line = a.to_string();
        assert!(
            line.contains(
                "rollback: 3 components, 5 messages, 3 memos dropped, 42 pairs re-blocked"
            ),
            "{line}"
        );
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("rollback"), "{clean}");
    }

    #[test]
    fn fault_and_invariant_counters_merge_and_display() {
        let mut a = RunStats {
            shard_panics: 1,
            fence_timeouts: 2,
            shards_recovered: 1,
            invariant_checks: 10,
            ..Default::default()
        };
        let b = RunStats {
            fence_timeouts: 1,
            shards_recovered: 1,
            invariant_checks: 5,
            invariant_violations: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.shard_panics, 1);
        assert_eq!(a.fence_timeouts, 3);
        assert_eq!(a.shards_recovered, 2);
        assert_eq!(a.invariant_checks, 15);
        assert_eq!(a.invariant_violations, 1);
        let line = a.to_string();
        assert!(
            line.contains("faults: 1 panics, 3 fence timeouts, 2 shards recovered"),
            "{line}"
        );
        assert!(
            line.contains("invariants: 15 checks, 1 violations"),
            "{line}"
        );
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("faults"), "{clean}");
        assert!(!clean.contains("invariants"), "{clean}");
        // finalize must leave fault counters alone — they are counters,
        // not run-level fields.
        a.finalize(Duration::from_millis(1), 2);
        assert_eq!(a.shards_recovered, 2);
        assert_eq!(a.invariant_checks, 15);
    }

    #[test]
    fn store_counters_merge_finalize_and_display() {
        let mut a = RunStats {
            snapshot_bytes: 1024,
            wal_frames_replayed: 3,
            recovery_ms: 12,
            ..Default::default()
        };
        let b = RunStats {
            snapshot_bytes: 512,
            wal_frames_replayed: 2,
            recovery_ms: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.snapshot_bytes, 1536);
        assert_eq!(a.wal_frames_replayed, 5);
        assert_eq!(a.recovery_ms, 17);
        let line = a.to_string();
        assert!(
            line.contains("store: 1536 snapshot bytes, 5 frames replayed, 17 ms recovery"),
            "{line}"
        );
        // finalize touches only wall time / rounds, not store counters.
        a.finalize(Duration::from_millis(9), 1);
        assert_eq!(a.snapshot_bytes, 1536);
        assert_eq!(a.wal_frames_replayed, 5);
        // Sessions without a store print no store clause.
        let clean = RunStats::default().to_string();
        assert!(!clean.contains("store"), "{clean}");
    }
}
