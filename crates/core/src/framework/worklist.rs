//! Delta-driven scheduler over the [`DependencyIndex`].
//!
//! Both SMP and MMP maintain the set `A` of active neighborhoods. The
//! pre-epoch worklist was a FIFO + "is queued" bitmap fed by ad-hoc
//! `Cover::containing_pair` scans; the scheduler keeps that dedup (which
//! is what bounds revisits by the `k²` argument of Theorem 3) and adds
//! *routing*: [`Worklist::route`] pushes a new evidence pair to exactly
//! the neighborhoods the dependency index says can use it, recording the
//! pair in each one's **dirty set**. [`Worklist::pop`] hands the
//! evaluation the neighborhood together with everything that became
//! evidence for it since its last evaluation, so the caller can update a
//! cached local-evidence set (instead of re-restricting the full `M+`)
//! and re-probe only what the delta can affect.

use super::DependencyIndex;
use crate::cover::NeighborhoodId;
use crate::pair::{Pair, PairSet};
use std::collections::VecDeque;

#[derive(Debug, Clone)]
pub(crate) struct Worklist<'a> {
    index: &'a DependencyIndex,
    queue: VecDeque<NeighborhoodId>,
    queued: Vec<bool>,
    /// Pairs that became positive evidence for each neighborhood since
    /// its last evaluation.
    dirty: Vec<PairSet>,
}

impl<'a> Worklist<'a> {
    /// Worklist initially containing all `n` neighborhoods in id order.
    pub(crate) fn full(index: &'a DependencyIndex, n: usize) -> Self {
        Self {
            index,
            queue: (0..n as u32).map(NeighborhoodId).collect(),
            queued: vec![true; n],
            dirty: vec![PairSet::new(); n],
        }
    }

    /// Worklist over `n` neighborhoods seeded with an explicit order
    /// (used by consistency tests to permute evaluation order).
    pub(crate) fn with_order(
        index: &'a DependencyIndex,
        n: usize,
        order: &[NeighborhoodId],
    ) -> Self {
        let mut wl = Self {
            index,
            queue: VecDeque::with_capacity(n),
            queued: vec![false; n],
            dirty: vec![PairSet::new(); n],
        };
        for &id in order {
            wl.push(id);
        }
        wl
    }

    /// Enqueue if not already queued.
    pub(crate) fn push(&mut self, id: NeighborhoodId) {
        if !self.queued[id.index()] {
            self.queued[id.index()] = true;
            self.queue.push_back(id);
        }
    }

    /// Route a new evidence pair: record it in the dirty set of every
    /// neighborhood containing both endpoints and activate each of them —
    /// except `from`, the neighborhood that produced the pair (its own
    /// output is not news to it, but its dirty set still records the pair
    /// so its cached local evidence catches up on the next visit).
    pub(crate) fn route(&mut self, pair: Pair, from: Option<NeighborhoodId>) {
        let mut activate: Vec<NeighborhoodId> = Vec::new();
        self.index.for_each_neighborhood(pair, |id| {
            self.dirty[id.index()].insert(pair);
            if Some(id) != from {
                activate.push(id);
            }
        });
        for id in activate {
            self.push(id);
        }
    }

    /// Dequeue the next active neighborhood together with its accumulated
    /// dirty pairs (ownership transferred; the stored set is reset).
    pub(crate) fn pop(&mut self) -> Option<(NeighborhoodId, PairSet)> {
        let id = self.queue.pop_front()?;
        self.queued[id.index()] = false;
        let dirty = std::mem::take(&mut self.dirty[id.index()]);
        Some((id, dirty))
    }

    /// Whether no neighborhood is active.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cover;
    use crate::dataset::{Dataset, SimLevel};
    use crate::entity::EntityId;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn world() -> (Dataset, Cover) {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..5 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2));
        ds.set_similar(Pair::new(e(1), e(2)), SimLevel(2));
        let cover = Cover::from_neighborhoods(vec![
            vec![e(0), e(1), e(2)],
            vec![e(1), e(2), e(3)],
            vec![e(4)],
        ]);
        (ds, cover)
    }

    #[test]
    fn dedups_enqueues() {
        let (ds, cover) = world();
        let index = DependencyIndex::build(&ds, &cover);
        let mut wl = Worklist::full(&index, 2);
        wl.push(NeighborhoodId(0));
        wl.push(NeighborhoodId(1));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(0)));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(1)));
        assert!(wl.is_empty());
        // Re-activation after pop works.
        wl.push(NeighborhoodId(1));
        wl.push(NeighborhoodId(1));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(1)));
        assert!(wl.pop().is_none());
    }

    #[test]
    fn with_order_respects_permutation() {
        let (ds, cover) = world();
        let index = DependencyIndex::build(&ds, &cover);
        let order = [NeighborhoodId(2), NeighborhoodId(0), NeighborhoodId(1)];
        let mut wl = Worklist::with_order(&index, 3, &order);
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(2)));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(0)));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(1)));
    }

    #[test]
    fn routing_activates_containing_neighborhoods_and_records_dirt() {
        let (ds, cover) = world();
        let index = DependencyIndex::build(&ds, &cover);
        let mut wl = Worklist::with_order(&index, 3, &[]);
        // (1,2) lives in C0 and C1; routed from C0, only C1 activates,
        // but both dirty sets record the pair.
        wl.route(Pair::new(e(1), e(2)), Some(NeighborhoodId(0)));
        let (id, dirty) = wl.pop().expect("C1 active");
        assert_eq!(id, NeighborhoodId(1));
        assert!(dirty.contains(Pair::new(e(1), e(2))));
        assert!(wl.is_empty());
        // C0's dirty set was recorded even though it was not activated.
        wl.push(NeighborhoodId(0));
        let (_, dirty0) = wl.pop().unwrap();
        assert!(dirty0.contains(Pair::new(e(1), e(2))));
        // Dirty sets are drained by pop.
        wl.push(NeighborhoodId(0));
        let (_, again) = wl.pop().unwrap();
        assert!(again.is_empty());
    }
}
