//! FIFO worklist of active neighborhoods with O(1) dedup.
//!
//! Both SMP and MMP maintain the set `A` of active neighborhoods. A plain
//! queue would let the same neighborhood be enqueued many times before its
//! next evaluation; pairing the queue with an "is queued" bitmap keeps each
//! neighborhood at most once in flight, which is what bounds revisits by
//! the `k²` argument of Theorem 3.

use crate::cover::NeighborhoodId;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
pub(crate) struct Worklist {
    queue: VecDeque<NeighborhoodId>,
    queued: Vec<bool>,
}

impl Worklist {
    /// Worklist initially containing all `n` neighborhoods in id order.
    pub(crate) fn full(n: usize) -> Self {
        Self {
            queue: (0..n as u32).map(NeighborhoodId).collect(),
            queued: vec![true; n],
        }
    }

    /// Worklist over `n` neighborhoods seeded with an explicit order
    /// (used by consistency tests to permute evaluation order).
    pub(crate) fn with_order(n: usize, order: &[NeighborhoodId]) -> Self {
        let mut wl = Self {
            queue: VecDeque::with_capacity(n),
            queued: vec![false; n],
        };
        for &id in order {
            wl.push(id);
        }
        wl
    }

    /// Enqueue if not already queued.
    pub(crate) fn push(&mut self, id: NeighborhoodId) {
        if !self.queued[id.index()] {
            self.queued[id.index()] = true;
            self.queue.push_back(id);
        }
    }

    /// Dequeue the next active neighborhood.
    pub(crate) fn pop(&mut self) -> Option<NeighborhoodId> {
        let id = self.queue.pop_front()?;
        self.queued[id.index()] = false;
        Some(id)
    }

    /// Whether no neighborhood is active.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_enqueues() {
        let mut wl = Worklist::full(2);
        wl.push(NeighborhoodId(0));
        wl.push(NeighborhoodId(1));
        assert_eq!(wl.pop(), Some(NeighborhoodId(0)));
        assert_eq!(wl.pop(), Some(NeighborhoodId(1)));
        assert!(wl.is_empty());
        // Re-activation after pop works.
        wl.push(NeighborhoodId(1));
        wl.push(NeighborhoodId(1));
        assert_eq!(wl.pop(), Some(NeighborhoodId(1)));
        assert!(wl.pop().is_none());
    }

    #[test]
    fn with_order_respects_permutation() {
        let order = [NeighborhoodId(2), NeighborhoodId(0), NeighborhoodId(1)];
        let mut wl = Worklist::with_order(3, &order);
        assert_eq!(wl.pop(), Some(NeighborhoodId(2)));
        assert_eq!(wl.pop(), Some(NeighborhoodId(0)));
        assert_eq!(wl.pop(), Some(NeighborhoodId(1)));
    }
}
