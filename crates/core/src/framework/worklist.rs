//! Delta-driven scheduler over the [`DependencyIndex`].
//!
//! Both SMP and MMP maintain the set `A` of active neighborhoods. The
//! pre-epoch worklist was a FIFO + "is queued" bitmap fed by ad-hoc
//! `Cover::containing_pair` scans; the scheduler keeps that dedup (which
//! is what bounds revisits by the `k²` argument of Theorem 3) and adds
//! *routing*: [`Worklist::route`] pushes a new evidence pair to exactly
//! the neighborhoods the dependency index says can use it, recording the
//! pair in each one's **dirty set**. [`Worklist::pop`] hands the
//! evaluation the neighborhood together with everything that became
//! evidence for it since its last evaluation, so the caller can update a
//! cached local-evidence set (instead of re-restricting the full `M+`)
//! and re-probe only what the delta can affect.
//!
//! The index is a parameter of [`Worklist::route`] rather than a stored
//! borrow so a per-shard driver can own its (shard-local) index and its
//! worklist side by side.

use super::DependencyIndex;
use crate::cover::NeighborhoodId;
use crate::pair::{Pair, PairSet};
use std::collections::VecDeque;

#[derive(Debug, Clone)]
pub(crate) struct Worklist {
    queue: VecDeque<NeighborhoodId>,
    queued: Vec<bool>,
    /// Pairs that became positive evidence for each neighborhood since
    /// its last evaluation.
    dirty: Vec<PairSet>,
}

impl Worklist {
    /// Worklist over `n` neighborhood ids, initially containing `seed`
    /// in the given order. Sequential runs seed with every id in id
    /// order; shard drivers seed with their member neighborhoods only
    /// (`n` stays the full cover size so global ids index directly).
    pub(crate) fn seeded(n: usize, seed: impl IntoIterator<Item = NeighborhoodId>) -> Self {
        let mut wl = Self {
            queue: VecDeque::new(),
            queued: vec![false; n],
            dirty: vec![PairSet::new(); n],
        };
        for id in seed {
            wl.push(id);
        }
        wl
    }

    /// Worklist initially containing all `n` neighborhoods in id order.
    pub(crate) fn full(n: usize) -> Self {
        Self::seeded(n, (0..n as u32).map(NeighborhoodId))
    }

    /// Enqueue if not already queued.
    pub(crate) fn push(&mut self, id: NeighborhoodId) {
        if !self.queued[id.index()] {
            self.queued[id.index()] = true;
            self.queue.push_back(id);
        }
    }

    /// Route a new evidence pair: record it in the dirty set of every
    /// neighborhood `index` maps it to and activate each of them — except
    /// `from`, the neighborhood that produced the pair (its own output is
    /// not news to it, but its dirty set still records the pair so its
    /// cached local evidence catches up on the next visit).
    pub(crate) fn route(
        &mut self,
        index: &DependencyIndex,
        pair: Pair,
        from: Option<NeighborhoodId>,
    ) {
        let mut activate: Vec<NeighborhoodId> = Vec::new();
        index.for_each_neighborhood(pair, |id| {
            self.dirty[id.index()].insert(pair);
            if Some(id) != from {
                activate.push(id);
            }
        });
        for id in activate {
            self.push(id);
        }
    }

    /// Dequeue the next active neighborhood together with its accumulated
    /// dirty pairs (ownership transferred; the stored set is reset).
    pub(crate) fn pop(&mut self) -> Option<(NeighborhoodId, PairSet)> {
        let id = self.queue.pop_front()?;
        self.queued[id.index()] = false;
        let dirty = std::mem::take(&mut self.dirty[id.index()]);
        Some((id, dirty))
    }

    /// Whether no neighborhood is active.
    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cover;
    use crate::dataset::{Dataset, SimLevel};
    use crate::entity::EntityId;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn world() -> (Dataset, Cover) {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..5 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2));
        ds.set_similar(Pair::new(e(1), e(2)), SimLevel(2));
        let cover = Cover::from_neighborhoods(vec![
            vec![e(0), e(1), e(2)],
            vec![e(1), e(2), e(3)],
            vec![e(4)],
        ]);
        (ds, cover)
    }

    #[test]
    fn dedups_enqueues() {
        let mut wl = Worklist::full(2);
        wl.push(NeighborhoodId(0));
        wl.push(NeighborhoodId(1));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(0)));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(1)));
        assert!(wl.is_empty());
        // Re-activation after pop works.
        wl.push(NeighborhoodId(1));
        wl.push(NeighborhoodId(1));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(1)));
        assert!(wl.pop().is_none());
    }

    #[test]
    fn seeded_respects_permutation() {
        let order = [NeighborhoodId(2), NeighborhoodId(0), NeighborhoodId(1)];
        let mut wl = Worklist::seeded(3, order);
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(2)));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(0)));
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(1)));
    }

    #[test]
    fn routing_activates_containing_neighborhoods_and_records_dirt() {
        let (ds, cover) = world();
        let index = DependencyIndex::build(&ds, &cover);
        let mut wl = Worklist::seeded(3, []);
        // (1,2) lives in C0 and C1; routed from C0, only C1 activates,
        // but both dirty sets record the pair.
        wl.route(&index, Pair::new(e(1), e(2)), Some(NeighborhoodId(0)));
        let (id, dirty) = wl.pop().expect("C1 active");
        assert_eq!(id, NeighborhoodId(1));
        assert!(dirty.contains(Pair::new(e(1), e(2))));
        assert!(wl.is_empty());
        // C0's dirty set was recorded even though it was not activated.
        wl.push(NeighborhoodId(0));
        let (_, dirty0) = wl.pop().unwrap();
        assert!(dirty0.contains(Pair::new(e(1), e(2))));
        // Dirty sets are drained by pop.
        wl.push(NeighborhoodId(0));
        let (_, again) = wl.pop().unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn shard_local_index_routes_only_to_members() {
        let (ds, cover) = world();
        let local = DependencyIndex::build(&ds, &cover).restrict_to(&[NeighborhoodId(0)]);
        let mut wl = Worklist::seeded(3, []);
        // (1,2) lives in C0 and C1 globally; the shard-local index only
        // knows C0.
        wl.route(&local, Pair::new(e(1), e(2)), None);
        assert_eq!(wl.pop().map(|(id, _)| id), Some(NeighborhoodId(0)));
        assert!(wl.is_empty());
    }
}
