//! SMP — Simple Message Passing (Algorithm 1), delta-driven.
//!
//! The algorithm maintains the set `A` of active neighborhoods and the set
//! `M+` of matches found so far. Evaluating a neighborhood `C` runs the
//! matcher as `E(C, M+)`; any *new* matches reactivate every neighborhood
//! containing both endpoints of a new pair (those are the neighborhoods
//! whose inference can use the pair as evidence). Terminates when `A` is
//! empty.
//!
//! `M+` is an epoch-tracked [`Evidence`]: each evaluation fences the log,
//! inserts its new matches, and routes exactly the epoch delta through
//! the [`super::DependencyIndex`]-backed scheduler. Per-neighborhood
//! local evidence is cached and updated from the routed dirty pairs, so
//! a revisit costs O(|delta|) bookkeeping instead of re-restricting the
//! full `M+`.
//!
//! For a well-behaved matcher SMP is sound, consistent, and runs in
//! `O(k² f(k) n)` (Theorems 2 and 3): a neighborhood of size `k` can be
//! reactivated at most `k²` times because each reactivation is caused by a
//! strict growth of `M+` inside `C × C`.

use crate::cover::{Cover, NeighborhoodId};
use crate::dataset::Dataset;
use crate::evidence::Evidence;
use crate::matcher::{MatchOutput, Matcher};
use std::time::Instant;

use super::SmpDriver;

/// Run SMP with the default (id-order) initial schedule.
///
/// Prefer the `em::Pipeline` front door (umbrella crate) with
/// `Scheme::Smp`, which owns the dependency index and evidence across
/// runs; this free function remains as a one-shot compatibility wrapper.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate); `smp_with_order` / `SmpDriver` are the engine hooks"
)]
pub fn smp(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
) -> MatchOutput {
    smp_with_order(matcher, dataset, cover, evidence, None)
}

/// Run SMP with an explicit initial evaluation order (used by the
/// consistency tests; Theorem 2(3) says the output must not depend on
/// it). A thin wrapper over [`SmpDriver`]: one driver spanning the whole
/// cover, run to quiescence once.
pub fn smp_with_order(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    order: Option<&[NeighborhoodId]>,
) -> MatchOutput {
    let start = Instant::now();
    let mut driver = match order {
        Some(order) => SmpDriver::with_order(dataset, cover, evidence, order),
        None => SmpDriver::new(dataset, cover, evidence),
    };
    driver.run(matcher);
    driver.finish(start)
}
