//! SMP — Simple Message Passing (Algorithm 1).
//!
//! The algorithm maintains the set `A` of active neighborhoods and the set
//! `M+` of matches found so far. Evaluating a neighborhood `C` runs the
//! matcher as `E(C, M+)`; any *new* matches reactivate every neighborhood
//! containing both endpoints of a new pair (those are the neighborhoods
//! whose inference can use the pair as evidence). Terminates when `A` is
//! empty.
//!
//! For a well-behaved matcher SMP is sound, consistent, and runs in
//! `O(k² f(k) n)` (Theorems 2 and 3): a neighborhood of size `k` can be
//! reactivated at most `k²` times because each reactivation is caused by a
//! strict growth of `M+` inside `C × C`.

use crate::cover::{Cover, NeighborhoodId};
use crate::dataset::Dataset;
use crate::evidence::Evidence;
use crate::matcher::{MatchOutput, Matcher};
use crate::pair::PairSet;
use std::time::Instant;

use super::Worklist;

/// Run SMP with the default (id-order) initial schedule.
pub fn smp(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
) -> MatchOutput {
    smp_with_order(matcher, dataset, cover, evidence, None)
}

/// Run SMP with an explicit initial evaluation order (used by the
/// consistency tests; Theorem 2(3) says the output must not depend on it).
pub fn smp_with_order(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    order: Option<&[NeighborhoodId]>,
) -> MatchOutput {
    let start = Instant::now();
    let mut worklist = match order {
        Some(order) => Worklist::with_order(cover.len(), order),
        None => Worklist::full(cover.len()),
    };
    let mut out = MatchOutput::default();
    let mut found = evidence.positive.clone();

    while let Some(id) = worklist.pop() {
        let view = cover.view(dataset, id);
        let local_evidence = Evidence {
            positive: view.restrict(&found),
            negative: view.restrict(&evidence.negative),
        };
        let undecided = view
            .candidate_pairs()
            .iter()
            .filter(|(p, _)| !local_evidence.positive.contains(*p))
            .count() as u64;
        let matches = matcher.match_view(&view, &local_evidence);
        out.stats.matcher_calls += 1;
        out.stats.neighborhoods_processed += 1;
        out.stats.active_pairs_evaluated += undecided;

        // New matches become messages: reactivate affected neighborhoods.
        let new_matches: PairSet = matches.difference(&found);
        if !new_matches.is_empty() {
            out.stats.messages_sent += new_matches.len() as u64;
            for pair in new_matches.iter() {
                for affected in cover.containing_pair(pair) {
                    if affected != id {
                        worklist.push(affected);
                    }
                }
            }
            found.union_with(&new_matches);
        }
    }

    for p in evidence.negative.iter() {
        found.remove(p);
    }
    out.matches = found;
    out.stats.wall_time = start.elapsed();
    out
}
