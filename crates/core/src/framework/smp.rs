//! SMP — Simple Message Passing (Algorithm 1), delta-driven.
//!
//! The algorithm maintains the set `A` of active neighborhoods and the set
//! `M+` of matches found so far. Evaluating a neighborhood `C` runs the
//! matcher as `E(C, M+)`; any *new* matches reactivate every neighborhood
//! containing both endpoints of a new pair (those are the neighborhoods
//! whose inference can use the pair as evidence). Terminates when `A` is
//! empty.
//!
//! `M+` is an epoch-tracked [`Evidence`]: each evaluation fences the log,
//! inserts its new matches, and routes exactly the epoch delta through
//! the [`super::DependencyIndex`]-backed scheduler. Per-neighborhood
//! local evidence is cached and updated from the routed dirty pairs, so
//! a revisit costs O(|delta|) bookkeeping instead of re-restricting the
//! full `M+`.
//!
//! For a well-behaved matcher SMP is sound, consistent, and runs in
//! `O(k² f(k) n)` (Theorems 2 and 3): a neighborhood of size `k` can be
//! reactivated at most `k²` times because each reactivation is caused by a
//! strict growth of `M+` inside `C × C`.

use crate::cover::{Cover, NeighborhoodId};
use crate::dataset::Dataset;
use crate::evidence::Evidence;
use crate::matcher::{MatchOutput, Matcher};
use crate::pair::PairSet;
use std::time::Instant;

use super::{DependencyIndex, Worklist};

/// Run SMP with the default (id-order) initial schedule.
pub fn smp(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
) -> MatchOutput {
    smp_with_order(matcher, dataset, cover, evidence, None)
}

/// Run SMP with an explicit initial evaluation order (used by the
/// consistency tests; Theorem 2(3) says the output must not depend on it).
pub fn smp_with_order(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    order: Option<&[NeighborhoodId]>,
) -> MatchOutput {
    let start = Instant::now();
    let index = DependencyIndex::build(dataset, cover);
    let mut worklist = match order {
        Some(order) => Worklist::with_order(&index, cover.len(), order),
        None => Worklist::full(&index, cover.len()),
    };
    let mut out = MatchOutput::default();
    let mut found = Evidence::from_parts(evidence.positive.clone(), evidence.negative.clone());
    let mut local: Vec<Option<Evidence>> = vec![None; cover.len()];

    while let Some((id, dirty)) = worklist.pop() {
        let view = cover.view(dataset, id);
        let local_evidence: &Evidence = match &mut local[id.index()] {
            Some(ev) => {
                for p in dirty.iter() {
                    ev.insert_positive(p);
                }
                ev
            }
            slot @ None => slot.insert(Evidence::untracked(
                view.restrict(&found.positive),
                view.restrict(&found.negative),
            )),
        };
        let undecided = view
            .candidate_pairs()
            .iter()
            .filter(|(p, _)| !local_evidence.positive.contains(*p))
            .count() as u64;
        let matches = matcher.match_view(&view, local_evidence);
        out.stats.matcher_calls += 1;
        out.stats.neighborhoods_processed += 1;
        out.stats.active_pairs_evaluated += undecided;

        // New matches become messages: the epoch delta is routed to the
        // neighborhoods the dependency index says can use it.
        let fence = found.advance_epoch();
        let new_matches: PairSet = matches.difference(&found.positive);
        if !new_matches.is_empty() {
            found.union_positive(&new_matches);
            let delta = found.delta_since(fence);
            out.stats.messages_sent += delta.len() as u64;
            for &p in delta {
                worklist.route(p, Some(id));
            }
        }
    }

    let mut matches = found.into_positive();
    for p in evidence.negative.iter() {
        matches.remove(p);
    }
    out.matches = matches;
    out.stats.wall_time = start.elapsed();
    out
}
