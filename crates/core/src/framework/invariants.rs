//! Structural invariant checker for framework state, switchable on in
//! any backend.
//!
//! The message-passing schemes, the sharded runtime, and the session's
//! component-scoped rollback all maintain structural invariants that no
//! single assertion guards end to end: the probe ledger must balance,
//! no live structure may reference a tombstoned entity, the message
//! store's union-find must stay a partition, and the evidence epoch log
//! must replay to the evidence set at every fence. The
//! [`InvariantChecker`] makes those invariants executable: the soak
//! harness runs it after every update, the shard coordinator after
//! every epoch fence, and any backend can opt in via
//! `Pipeline::check_invariants(true)`.
//!
//! Checks are read-only (no path compression, no cache-counter bumps)
//! and return structured [`InvariantViolation`]s instead of panicking,
//! so a long soak reports every breakage rather than dying on the
//! first.

use crate::cache::PairCache;
use crate::dataset::Dataset;
use crate::evidence::Evidence;
use crate::framework::{MemoBank, MessageStore, RunStats};
use crate::pair::Pair;

/// One failed invariant: which check tripped and a human-readable
/// description of the offending state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable name of the check that failed (e.g. `"probe-ledger"`).
    pub check: &'static str,
    /// What exactly diverged.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Outcome of one checker sweep: how many individual checks ran and
/// every violation they found.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Individual checks executed in the sweep.
    pub checks: u64,
    /// Violations found (empty in a healthy run).
    pub violations: Vec<InvariantViolation>,
}

impl InvariantReport {
    /// Whether the sweep found no violations.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold this sweep's counters into run statistics.
    pub fn record(&self, stats: &mut RunStats) {
        stats.invariant_checks += self.checks;
        stats.invariant_violations += self.violations.len() as u64;
    }
}

/// A read-only sweep over framework state, accumulating violations.
///
/// Construct one per sweep, call the `check_*` methods for whatever
/// state the caller owns, then [`InvariantChecker::finish`]:
///
/// ```
/// use em_core::evidence::Evidence;
/// use em_core::framework::invariants::InvariantChecker;
/// use em_core::testing::paper_example;
///
/// let (dataset, _, _, expected) = paper_example();
/// let evidence = Evidence::positive(expected);
/// let mut checker = InvariantChecker::new(&dataset);
/// checker.check_dataset();
/// checker.check_evidence(&evidence);
/// let report = checker.finish();
/// assert!(report.is_ok(), "{:?}", report.violations);
/// ```
#[derive(Debug)]
pub struct InvariantChecker<'a> {
    dataset: &'a Dataset,
    report: InvariantReport,
}

impl<'a> InvariantChecker<'a> {
    /// Start a sweep over state belonging to `dataset`.
    pub fn new(dataset: &'a Dataset) -> Self {
        Self {
            dataset,
            report: InvariantReport::default(),
        }
    }

    fn fail(&mut self, check: &'static str, detail: String) {
        self.report
            .violations
            .push(InvariantViolation { check, detail });
    }

    /// `true` when the pair has a tombstoned or out-of-range endpoint.
    fn dead_pair(&self, p: Pair) -> Option<crate::entity::EntityId> {
        [p.lo(), p.hi()]
            .into_iter()
            .find(|&e| !self.dataset.entities.is_live(e))
    }

    fn check_live_pairs(
        &mut self,
        check: &'static str,
        what: &str,
        pairs: impl IntoIterator<Item = Pair>,
    ) {
        self.report.checks += 1;
        for p in pairs {
            if let Some(e) = self.dead_pair(p) {
                self.fail(
                    check,
                    format!("{what} references pair {p} with dead entity {e:?}"),
                );
            }
        }
    }

    /// Tombstone consistency of the dataset itself: no candidate pair
    /// and no relation tuple may touch a retracted entity
    /// (`Dataset::retract_entity` is responsible for scrubbing both).
    pub fn check_dataset(&mut self) {
        let pairs: Vec<Pair> = self.dataset.candidate_pairs().map(|(p, _)| p).collect();
        self.check_live_pairs("tombstone-dataset", "candidate set", pairs);
        self.report.checks += 1;
        for rel in self.dataset.relations.ids() {
            for &(a, b) in self.dataset.relations.tuples(rel) {
                for e in [a, b] {
                    if !self.dataset.entities.is_live(e) {
                        self.fail(
                            "tombstone-dataset",
                            format!(
                                "relation {} tuple ({a:?}, {b:?}) references dead entity {e:?}",
                                self.dataset.relations.name(rel)
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Evidence-set invariants: `V+` and `V−` disjoint, no dead
    /// endpoints, and the epoch log replays exactly to the current
    /// positive set ([`Evidence::validate_log`]) — the MemoBank/Evidence
    /// epoch-agreement half of every fence check.
    pub fn check_evidence(&mut self, evidence: &Evidence) {
        self.report.checks += 1;
        if !evidence.positive.is_disjoint(&evidence.negative) {
            let overlap = evidence
                .positive
                .iter()
                .filter(|p| evidence.negative.contains(*p))
                .count();
            self.fail(
                "evidence-disjoint",
                format!("{overlap} pairs are both positive and negative evidence"),
            );
        }
        self.report.checks += 1;
        if let Err(msg) = evidence.validate_log() {
            self.fail("evidence-log", msg);
        }
        let positive: Vec<Pair> = evidence.positive.iter().collect();
        self.check_live_pairs("tombstone-evidence", "positive evidence", positive);
        let negative: Vec<Pair> = evidence.negative.iter().collect();
        self.check_live_pairs("tombstone-evidence", "negative evidence", negative);
    }

    /// Union-find closure of the message store
    /// ([`MessageStore::validate`]) plus tombstone consistency of every
    /// message pair.
    pub fn check_message_store(&mut self, store: &MessageStore) {
        self.report.checks += 1;
        if let Err(msg) = store.validate() {
            self.fail("store-union-find", msg);
        }
        let pairs: Vec<Pair> = store.all_pairs().collect();
        self.check_live_pairs("tombstone-store", "message store", pairs);
    }

    /// Tombstone consistency of every banked view: a memo keyed by a
    /// dead member, or whose candidate pairs touch one, would replay
    /// probes conditioned on structure that no longer exists.
    pub fn check_memo_bank(&mut self, bank: &MemoBank) {
        self.report.checks += 1;
        let mut dead: Vec<String> = Vec::new();
        let entities = &self.dataset.entities;
        bank.for_each_view(|members, pairs| {
            for &e in members {
                if !entities.is_live(e) {
                    dead.push(format!("banked view {members:?} has dead member {e:?}"));
                }
            }
            for &(p, _) in pairs {
                for e in [p.lo(), p.hi()] {
                    if !entities.is_live(e) {
                        dead.push(format!("banked pair {p} has dead endpoint {e:?}"));
                    }
                }
            }
        });
        for detail in dead {
            self.fail("tombstone-bank", detail);
        }
    }

    /// Tombstone consistency of a pair-keyed cache (e.g. the session's
    /// blocking-score cache). `label` names the cache in violations.
    pub fn check_pair_cache<V: Copy>(&mut self, label: &str, cache: &PairCache<V>) {
        let mut pairs = Vec::with_capacity(cache.len());
        cache.for_each_key(|p| pairs.push(p));
        self.check_live_pairs("tombstone-cache", label, pairs);
    }

    /// Probe-ledger balance: every matcher invocation is either a
    /// neighborhood evaluation or a conditioned probe, so
    /// `matcher_calls == neighborhoods_processed + conditioned_probes`
    /// exactly — for NO-MP/SMP (zero probes) and MMP alike, and for any
    /// [`RunStats::merge`] fold of stats that individually balance.
    pub fn check_probe_ledger(&mut self, stats: &RunStats) {
        self.report.checks += 1;
        let expected = stats.neighborhoods_processed + stats.conditioned_probes;
        if stats.matcher_calls != expected {
            self.fail(
                "probe-ledger",
                format!(
                    "matcher_calls = {} but neighborhoods_processed + conditioned_probes = {} + {} = {}",
                    stats.matcher_calls,
                    stats.neighborhoods_processed,
                    stats.conditioned_probes,
                    expected
                ),
            );
        }
    }

    /// Certificate-ledger balance: every certificate consulted during
    /// incremental replay either breached (forcing a re-probe) or elided
    /// its probe, so
    /// `certificates_checked == certificates_breached + probes_elided`
    /// exactly; and an elided probe replays its memoized result, so
    /// `probes_elided <= probes_replayed`. Holds for runs without
    /// certificates (all zeros) and for any [`RunStats::merge`] fold of
    /// stats that individually balance.
    pub fn check_certificate_ledger(&mut self, stats: &RunStats) {
        self.report.checks += 1;
        let expected = stats.certificates_breached + stats.probes_elided;
        if stats.certificates_checked != expected {
            self.fail(
                "certificate-ledger",
                format!(
                    "certificates_checked = {} but certificates_breached + probes_elided = {} + {} = {}",
                    stats.certificates_checked,
                    stats.certificates_breached,
                    stats.probes_elided,
                    expected
                ),
            );
        }
        self.report.checks += 1;
        if stats.probes_elided > stats.probes_replayed {
            self.fail(
                "certificate-ledger",
                format!(
                    "probes_elided = {} exceeds probes_replayed = {} (every elided probe must replay)",
                    stats.probes_elided, stats.probes_replayed
                ),
            );
        }
    }

    /// Warm-start floor sanity: every entity id below the floor must
    /// exist (the floor marks where "new since last fixpoint" begins,
    /// so it can never exceed the id space).
    pub fn check_entity_floor(&mut self, entity_floor: u32) {
        self.report.checks += 1;
        let len = self.dataset.entities.len() as u32;
        if entity_floor > len {
            self.fail(
                "entity-floor",
                format!("warm-start entity floor {entity_floor} exceeds id space {len}"),
            );
        }
    }

    /// End the sweep, returning its report.
    pub fn finish(self) -> InvariantReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SimLevel;
    use crate::entity::EntityId;
    use crate::pair::PairSet;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(EntityId(a), EntityId(b))
    }

    fn small_world() -> Dataset {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..4 {
            ds.entities.add_entity(ty);
        }
        let rel = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(rel, EntityId(0), EntityId(2));
        ds.set_similar(p(0, 1), SimLevel(2));
        ds.set_similar(p(2, 3), SimLevel(1));
        ds
    }

    #[test]
    fn healthy_state_passes_every_check() {
        let ds = small_world();
        let mut ev = Evidence::none();
        ev.insert_positive(p(0, 1));
        let mut store = MessageStore::new();
        store.add_message(&[p(2, 3)]);
        let stats = RunStats {
            matcher_calls: 7,
            neighborhoods_processed: 4,
            conditioned_probes: 3,
            certificates_checked: 5,
            certificates_breached: 2,
            probes_elided: 3,
            probes_replayed: 6,
            ..Default::default()
        };
        let mut checker = InvariantChecker::new(&ds);
        checker.check_dataset();
        checker.check_evidence(&ev);
        checker.check_message_store(&store);
        checker.check_probe_ledger(&stats);
        checker.check_certificate_ledger(&stats);
        checker.check_entity_floor(4);
        let report = checker.finish();
        assert!(report.is_ok(), "{:?}", report.violations);
        assert!(report.checks >= 5);
        let mut rs = RunStats::default();
        report.record(&mut rs);
        assert_eq!(rs.invariant_checks, report.checks);
        assert_eq!(rs.invariant_violations, 0);
    }

    #[test]
    fn dead_references_are_reported_everywhere() {
        let mut ds = small_world();
        // Tombstone entity 3 behind the dataset's back so stale
        // references survive for the checker to find.
        ds.entities.retract(EntityId(3));
        let mut ev = Evidence::none();
        ev.insert_positive(p(2, 3));
        let mut store = MessageStore::new();
        store.add_message(&[p(2, 3)]);
        let mut checker = InvariantChecker::new(&ds);
        checker.check_dataset(); // candidate pair (2,3) is now stale
        checker.check_evidence(&ev);
        checker.check_message_store(&store);
        let report = checker.finish();
        let checks: Vec<&str> = report.violations.iter().map(|v| v.check).collect();
        assert!(checks.contains(&"tombstone-dataset"), "{checks:?}");
        assert!(checks.contains(&"tombstone-evidence"), "{checks:?}");
        assert!(checks.contains(&"tombstone-store"), "{checks:?}");
    }

    #[test]
    fn unbalanced_ledger_and_overlapping_evidence_fail() {
        let ds = small_world();
        let stats = RunStats {
            matcher_calls: 5,
            neighborhoods_processed: 3,
            conditioned_probes: 1,
            ..Default::default()
        };
        let overlap: PairSet = [p(0, 1)].into_iter().collect();
        let ev = Evidence::from_parts(overlap.clone(), overlap);
        let mut checker = InvariantChecker::new(&ds);
        checker.check_probe_ledger(&stats);
        checker.check_evidence(&ev);
        checker.check_entity_floor(99);
        let report = checker.finish();
        let checks: Vec<&str> = report.violations.iter().map(|v| v.check).collect();
        assert!(checks.contains(&"probe-ledger"), "{checks:?}");
        assert!(checks.contains(&"evidence-disjoint"), "{checks:?}");
        assert!(checks.contains(&"entity-floor"), "{checks:?}");
        let shown = report.violations[0].to_string();
        assert!(shown.starts_with("[probe-ledger]"), "{shown}");
    }

    #[test]
    fn certificate_ledger_catches_both_imbalances() {
        let ds = small_world();
        // checked != breached + elided.
        let unbalanced = RunStats {
            certificates_checked: 4,
            certificates_breached: 1,
            probes_elided: 2,
            probes_replayed: 9,
            ..Default::default()
        };
        // elided probes without matching replays.
        let unreplayed = RunStats {
            certificates_checked: 3,
            certificates_breached: 0,
            probes_elided: 3,
            probes_replayed: 1,
            ..Default::default()
        };
        let mut checker = InvariantChecker::new(&ds);
        checker.check_certificate_ledger(&unbalanced);
        checker.check_certificate_ledger(&unreplayed);
        let report = checker.finish();
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        assert!(report
            .violations
            .iter()
            .all(|v| v.check == "certificate-ledger"));
        assert!(report.violations[0].detail.contains("certificates_checked"));
        assert!(report.violations[1]
            .detail
            .contains("exceeds probes_replayed"));
    }

    #[test]
    fn pair_cache_check_sees_dead_keys() {
        let mut ds = small_world();
        let cache: PairCache<f64> = PairCache::new();
        cache.insert(p(0, 1), 0.9);
        cache.insert(p(2, 3), 0.4);
        ds.entities.retract(EntityId(1));
        let mut checker = InvariantChecker::new(&ds);
        checker.check_pair_cache("scores", &cache);
        let report = checker.finish();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].detail.contains("scores"));
    }
}
