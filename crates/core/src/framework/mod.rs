//! The scaling framework (§5): run a black-box matcher per neighborhood and
//! exchange messages across neighborhoods.
//!
//! Three schemes, in increasing power:
//!
//! * [`no_mp`] — run the matcher once per neighborhood, union the outputs,
//!   exchange nothing (the paper's **NO-MP** baseline);
//! * [`smp`] — **Simple Message Passing** (Algorithm 1): found matches are
//!   positive evidence for subsequent runs, neighborhoods reactivate when
//!   new evidence arrives, until fixpoint;
//! * [`mmp`] — **Maximal Message Passing** (Algorithms 2 + 3): additionally
//!   exchanges *maximal messages* (all-or-nothing correlated match sets),
//!   promoting a message to real matches when it does not decrease the
//!   global probability. Requires a Type-II (probabilistic) matcher.
//!
//! For well-behaved matchers, SMP and MMP are *sound* (output ⊆ full-run
//! output), *consistent* (order-invariant), and linear in the number of
//! neighborhoods (Theorems 1–5).

mod mmp;
mod nomp;
mod smp;
mod stats;
mod worklist;

pub use mmp::{
    compute_maximal, mark_dirty_around, mmp, mmp_with_order, promote_dirty, MessageStore, MmpConfig,
};
pub use nomp::no_mp;
pub use smp::{smp, smp_with_order};
pub use stats::RunStats;
pub(crate) use worklist::Worklist;
