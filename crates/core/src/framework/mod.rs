//! The scaling framework (§5): run a black-box matcher per neighborhood and
//! exchange messages across neighborhoods.
//!
//! Three schemes, in increasing power:
//!
//! * [`no_mp`] — run the matcher once per neighborhood, union the outputs,
//!   exchange nothing (the paper's **NO-MP** baseline);
//! * [`smp`] — **Simple Message Passing** (Algorithm 1): found matches are
//!   positive evidence for subsequent runs, neighborhoods reactivate when
//!   new evidence arrives, until fixpoint;
//! * [`mmp`] — **Maximal Message Passing** (Algorithms 2 + 3): additionally
//!   exchanges *maximal messages* (all-or-nothing correlated match sets),
//!   promoting a message to real matches when it does not decrease the
//!   global probability. Requires a Type-II (probabilistic) matcher.
//!
//! For well-behaved matchers, SMP and MMP are *sound* (output ⊆ full-run
//! output), *consistent* (order-invariant), and linear in the number of
//! neighborhoods (Theorems 1–5).
//!
//! Both message-passing schemes run on an evidence-delta engine: the
//! accumulating `M+` is an epoch-tracked [`crate::Evidence`], a
//! [`DependencyIndex`] built once from the cover routes each delta pair
//! to exactly the neighborhoods that can use it, and MMP re-probes only
//! the conditioned probes the delta can have changed (see [`mmp`] and
//! [`compute_maximal_incremental`]).

pub mod certificates;
mod dependency;
mod engine;
pub mod invariants;
mod mmp;
mod nomp;
mod smp;
mod stats;
mod worklist;

pub use certificates::{CertificateBank, CertificatePool, CertificateSet};
pub use dependency::DependencyIndex;
pub use engine::{EvalTrace, MmpDriver, SmpDriver};
pub use invariants::{InvariantChecker, InvariantReport, InvariantViolation};
#[allow(deprecated)]
pub use mmp::mmp;
pub use mmp::{
    compute_maximal, compute_maximal_certified, compute_maximal_incremental, mark_dirty_around,
    mmp_with_order, promote_dirty, MemoBank, MemoPool, MessageStore, MmpConfig, ProbeMemo,
    WarmStart, DEFAULT_CERTIFICATE_SLACK,
};
#[allow(deprecated)]
pub use nomp::no_mp;
pub use nomp::no_mp_baseline;
#[allow(deprecated)]
pub use smp::smp;
pub use smp::smp_with_order;
pub use stats::RunStats;
pub(crate) use worklist::Worklist;
