//! NO-MP: independent neighborhood runs, no message passing.
//!
//! The paper's baseline (§6.1): the matcher runs once on every
//! neighborhood with only the user-provided evidence, and the outputs are
//! unioned. Sound for well-behaved matchers (each neighborhood run is a
//! restriction of the full run) but misses every cross-neighborhood
//! inference.

use crate::cover::Cover;
use crate::dataset::Dataset;
use crate::evidence::Evidence;
use crate::matcher::{MatchOutput, Matcher};
use crate::pair::PairSet;
use std::time::Instant;

/// Run `matcher` independently on every neighborhood of `cover`.
///
/// Prefer the `em::Pipeline` front door (umbrella crate) with
/// `Scheme::NoMp`; this free function remains as its engine hook and as
/// a compatibility wrapper target.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate); `no_mp_baseline` is the engine hook"
)]
pub fn no_mp(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
) -> MatchOutput {
    no_mp_baseline(matcher, dataset, cover, evidence)
}

/// The NO-MP engine: one matcher call per neighborhood, outputs unioned.
/// This is what [`no_mp`] always did; the plain name is deprecated in
/// favour of the `em::Pipeline` front door, which calls this hook.
pub fn no_mp_baseline(
    matcher: &dyn Matcher,
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
) -> MatchOutput {
    let start = Instant::now();
    let mut out = MatchOutput::default();
    for id in cover.ids() {
        let view = cover.view(dataset, id);
        let local_evidence = Evidence::untracked(
            view.restrict(&evidence.positive),
            view.restrict(&evidence.negative),
        );
        let undecided = view
            .candidate_pairs()
            .iter()
            .filter(|(p, _)| !local_evidence.positive.contains(*p))
            .count() as u64;
        let matches = matcher.match_view(&view, &local_evidence);
        out.stats.matcher_calls += 1;
        out.stats.neighborhoods_processed += 1;
        out.stats.active_pairs_evaluated += undecided;
        out.matches.union_with(&matches);
    }
    // The matcher echoes positive evidence back per-view; keep the output
    // limited to real decisions plus the evidence the caller supplied.
    out.matches.union_with(&evidence.positive);
    let negative: PairSet = evidence.negative.iter().collect();
    for p in negative.iter() {
        out.matches.remove(p);
    }
    out.stats.wall_time = start.elapsed();
    out
}
