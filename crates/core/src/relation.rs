//! Binary relations over entities.
//!
//! The paper's relational evidence (`Authored`, `Cites`, `Coauthor`, …) is a
//! set of named binary relations `R = R1, …, Rm` over the entities.
//! [`RelationStore`] keeps, per relation, the tuple list plus forward and
//! backward adjacency indexes so matchers can enumerate ground rule
//! instances (e.g. "coauthors of `e`") in O(degree).
//!
//! Relations may be declared *symmetric* (like `Coauthor`): a symmetric
//! tuple `(a, b)` is indexed in both directions and deduplicated as an
//! unordered pair.

use crate::entity::EntityId;
use crate::hash::FxHashSet;

/// Interned relation identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u16);

/// A single relation's tuples and adjacency indexes.
#[derive(Debug, Clone)]
struct Relation {
    name: String,
    symmetric: bool,
    /// Tuples as stored (for symmetric relations, canonical `lo <= hi`... we
    /// store `(min, max)` so each unordered edge appears once).
    tuples: Vec<(EntityId, EntityId)>,
    /// Deduplication of tuples.
    seen: FxHashSet<(EntityId, EntityId)>,
    /// `out[e]` = entities `f` with a tuple `(e, f)` (plus `(f, e)` if symmetric).
    out: Vec<Vec<EntityId>>,
    /// `inc[e]` = entities `f` with a tuple `(f, e)` (equals `out` if symmetric).
    inc: Vec<Vec<EntityId>>,
}

impl Relation {
    fn new(name: &str, symmetric: bool) -> Self {
        Self {
            name: name.to_owned(),
            symmetric,
            tuples: Vec::new(),
            seen: FxHashSet::default(),
            out: Vec::new(),
            inc: Vec::new(),
        }
    }

    fn ensure_len(&mut self, entity: EntityId) {
        let need = entity.index() + 1;
        if self.out.len() < need {
            self.out.resize_with(need, Vec::new);
            self.inc.resize_with(need, Vec::new);
        }
    }

    fn add(&mut self, a: EntityId, b: EntityId) -> bool {
        let key = if self.symmetric {
            (a.min(b), a.max(b))
        } else {
            (a, b)
        };
        if !self.seen.insert(key) {
            return false;
        }
        self.ensure_len(a);
        self.ensure_len(b);
        self.tuples.push(key);
        if self.symmetric {
            self.out[a.index()].push(b);
            self.inc[a.index()].push(b);
            if a != b {
                self.out[b.index()].push(a);
                self.inc[b.index()].push(a);
            }
        } else {
            self.out[a.index()].push(b);
            self.inc[b.index()].push(a);
        }
        true
    }

    fn neighbors_out(&self, e: EntityId) -> &[EntityId] {
        self.out.get(e.index()).map_or(&[], Vec::as_slice)
    }

    fn neighbors_in(&self, e: EntityId) -> &[EntityId] {
        self.inc.get(e.index()).map_or(&[], Vec::as_slice)
    }

    /// Remove one tuple (in its canonical key orientation). Returns
    /// `true` if it existed. Relative order of the surviving tuples and
    /// adjacency entries is preserved, so grounding and cover expansion
    /// see the same deterministic sequences a fresh store would build.
    fn remove(&mut self, a: EntityId, b: EntityId) -> bool {
        let key = if self.symmetric {
            (a.min(b), a.max(b))
        } else {
            (a, b)
        };
        if !self.seen.remove(&key) {
            return false;
        }
        let pos = self
            .tuples
            .iter()
            .position(|&t| t == key)
            .expect("seen and tuples agree");
        self.tuples.remove(pos);
        let (a, b) = key;
        let drop_one = |list: &mut Vec<EntityId>, target: EntityId| {
            if let Some(i) = list.iter().position(|&x| x == target) {
                list.remove(i);
            }
        };
        if self.symmetric {
            drop_one(&mut self.out[a.index()], b);
            drop_one(&mut self.inc[a.index()], b);
            if a != b {
                drop_one(&mut self.out[b.index()], a);
                drop_one(&mut self.inc[b.index()], a);
            }
        } else {
            drop_one(&mut self.out[a.index()], b);
            drop_one(&mut self.inc[b.index()], a);
        }
        true
    }
}

/// All relations of a dataset.
#[derive(Debug, Default, Clone)]
pub struct RelationStore {
    relations: Vec<Relation>,
}

impl RelationStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation; returns its id. Re-declaring the same name
    /// returns the existing id (the `symmetric` flag must agree).
    pub fn declare(&mut self, name: &str, symmetric: bool) -> RelationId {
        if let Some(id) = self.relation_id(name) {
            assert_eq!(
                self.relations[id.0 as usize].symmetric, symmetric,
                "relation {name} re-declared with different symmetry"
            );
            return id;
        }
        let id = u16::try_from(self.relations.len()).expect("more than u16::MAX relations");
        self.relations.push(Relation::new(name, symmetric));
        RelationId(id)
    }

    /// Look up a relation by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelationId(i as u16))
    }

    /// Name of a relation.
    pub fn name(&self, rel: RelationId) -> &str {
        &self.relations[rel.0 as usize].name
    }

    /// Whether the relation is symmetric.
    pub fn is_symmetric(&self, rel: RelationId) -> bool {
        self.relations[rel.0 as usize].symmetric
    }

    /// Add a tuple `(a, b)` to relation `rel`. Returns `true` if new.
    /// For symmetric relations the unordered edge is added once.
    pub fn add_tuple(&mut self, rel: RelationId, a: EntityId, b: EntityId) -> bool {
        self.relations[rel.0 as usize].add(a, b)
    }

    /// All tuples of `rel` (canonical orientation for symmetric relations).
    pub fn tuples(&self, rel: RelationId) -> &[(EntityId, EntityId)] {
        &self.relations[rel.0 as usize].tuples
    }

    /// Entities `f` with `rel(e, f)` (and `rel(f, e)` for symmetric `rel`).
    #[inline]
    pub fn neighbors_out(&self, rel: RelationId, e: EntityId) -> &[EntityId] {
        self.relations[rel.0 as usize].neighbors_out(e)
    }

    /// Entities `f` with `rel(f, e)` (same as `neighbors_out` for symmetric).
    #[inline]
    pub fn neighbors_in(&self, rel: RelationId, e: EntityId) -> &[EntityId] {
        self.relations[rel.0 as usize].neighbors_in(e)
    }

    /// Remove a tuple `(a, b)` from relation `rel` (orientation-
    /// insensitive for symmetric relations). Returns `true` if it was
    /// present.
    pub fn remove_tuple(&mut self, rel: RelationId, a: EntityId, b: EntityId) -> bool {
        self.relations[rel.0 as usize].remove(a, b)
    }

    /// Remove every tuple (of every relation) incident to `e`, returning
    /// the removed tuples as `(relation, a, b)` in canonical key
    /// orientation — what [`crate::Dataset::retract_entity`] reports so
    /// rollback can find the ground interactions each tuple supported.
    /// The incident set comes from the adjacency lists (O(degree) per
    /// relation), not a scan of every stored tuple — retract-heavy churn
    /// calls this once per victim.
    pub fn retract_entity(&mut self, e: EntityId) -> Vec<(RelationId, EntityId, EntityId)> {
        let mut removed = Vec::new();
        for rel in 0..self.relations.len() {
            let r = &self.relations[rel];
            let mut incident: Vec<(EntityId, EntityId)> = Vec::new();
            if r.symmetric {
                for &f in r.neighbors_out(e) {
                    incident.push((e.min(f), e.max(f)));
                }
            } else {
                for &f in r.neighbors_out(e) {
                    incident.push((e, f));
                }
                for &f in r.neighbors_in(e) {
                    incident.push((f, e));
                }
            }
            incident.sort_unstable();
            incident.dedup();
            for (a, b) in incident {
                self.relations[rel].remove(a, b);
                removed.push((RelationId(rel as u16), a, b));
            }
        }
        removed
    }

    /// Whether a tuple exists (orientation-insensitive for symmetric relations).
    pub fn has_tuple(&self, rel: RelationId, a: EntityId, b: EntityId) -> bool {
        let r = &self.relations[rel.0 as usize];
        let key = if r.symmetric {
            (a.min(b), a.max(b))
        } else {
            (a, b)
        };
        r.seen.contains(&key)
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Ids of all declared relations.
    pub fn ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relations.len() as u16).map(RelationId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    #[test]
    fn declare_is_idempotent() {
        let mut store = RelationStore::new();
        let co = store.declare("coauthor", true);
        assert_eq!(store.declare("coauthor", true), co);
        let cites = store.declare("cites", false);
        assert_ne!(co, cites);
        assert_eq!(store.relation_id("cites"), Some(cites));
        assert_eq!(store.name(co), "coauthor");
        assert!(store.is_symmetric(co));
        assert!(!store.is_symmetric(cites));
    }

    #[test]
    #[should_panic(expected = "different symmetry")]
    fn redeclare_with_different_symmetry_panics() {
        let mut store = RelationStore::new();
        store.declare("coauthor", true);
        store.declare("coauthor", false);
    }

    #[test]
    fn symmetric_adjacency_goes_both_ways() {
        let mut store = RelationStore::new();
        let co = store.declare("coauthor", true);
        assert!(store.add_tuple(co, e(1), e(2)));
        // Duplicate in either orientation is rejected.
        assert!(!store.add_tuple(co, e(2), e(1)));
        assert_eq!(store.neighbors_out(co, e(1)), &[e(2)]);
        assert_eq!(store.neighbors_out(co, e(2)), &[e(1)]);
        assert!(store.has_tuple(co, e(2), e(1)));
        assert_eq!(store.tuples(co).len(), 1);
    }

    #[test]
    fn directed_adjacency_is_oriented() {
        let mut store = RelationStore::new();
        let cites = store.declare("cites", false);
        store.add_tuple(cites, e(1), e(2));
        assert!(store.add_tuple(cites, e(2), e(1))); // reverse is a new tuple
        assert_eq!(store.neighbors_out(cites, e(1)), &[e(2)]);
        assert_eq!(store.neighbors_in(cites, e(2)), &[e(1)]);
        assert!(store.has_tuple(cites, e(1), e(2)));
        assert_eq!(store.tuples(cites).len(), 2);
    }

    #[test]
    fn remove_tuple_unwinds_both_directions() {
        let mut store = RelationStore::new();
        let co = store.declare("coauthor", true);
        let cites = store.declare("cites", false);
        store.add_tuple(co, e(1), e(2));
        store.add_tuple(co, e(1), e(3));
        store.add_tuple(cites, e(2), e(1));
        assert!(store.remove_tuple(co, e(2), e(1)), "reverse orientation");
        assert!(!store.remove_tuple(co, e(1), e(2)), "already gone");
        assert!(!store.has_tuple(co, e(1), e(2)));
        assert_eq!(store.neighbors_out(co, e(1)), &[e(3)]);
        assert_eq!(store.neighbors_out(co, e(2)), &[] as &[EntityId]);
        // The directed relation is untouched and orientation-sensitive.
        assert!(!store.remove_tuple(cites, e(1), e(2)));
        assert!(store.remove_tuple(cites, e(2), e(1)));
        assert!(store.tuples(cites).is_empty());
        // Removed tuples can be re-added.
        assert!(store.add_tuple(co, e(1), e(2)));
        assert_eq!(store.neighbors_out(co, e(2)), &[e(1)]);
    }

    #[test]
    fn retract_entity_sweeps_every_relation() {
        let mut store = RelationStore::new();
        let co = store.declare("coauthor", true);
        let cites = store.declare("cites", false);
        store.add_tuple(co, e(0), e(1));
        store.add_tuple(co, e(1), e(2));
        store.add_tuple(co, e(0), e(2));
        store.add_tuple(cites, e(1), e(3));
        let removed = store.retract_entity(e(1));
        assert_eq!(removed.len(), 3);
        assert!(removed.contains(&(co, e(0), e(1))));
        assert!(removed.contains(&(co, e(1), e(2))));
        assert!(removed.contains(&(cites, e(1), e(3))));
        assert_eq!(store.tuples(co), &[(e(0), e(2))]);
        assert!(store.tuples(cites).is_empty());
        assert!(store.neighbors_out(co, e(1)).is_empty());
        assert!(store.neighbors_in(cites, e(3)).is_empty());
    }

    #[test]
    fn neighbors_of_unknown_entity_are_empty() {
        let mut store = RelationStore::new();
        let co = store.declare("coauthor", true);
        assert!(store.neighbors_out(co, e(99)).is_empty());
        assert!(store.neighbors_in(co, e(99)).is_empty());
    }
}
