//! Binary relations over entities.
//!
//! The paper's relational evidence (`Authored`, `Cites`, `Coauthor`, …) is a
//! set of named binary relations `R = R1, …, Rm` over the entities.
//! [`RelationStore`] keeps, per relation, the tuple list plus forward and
//! backward adjacency indexes so matchers can enumerate ground rule
//! instances (e.g. "coauthors of `e`") in O(degree).
//!
//! Relations may be declared *symmetric* (like `Coauthor`): a symmetric
//! tuple `(a, b)` is indexed in both directions and deduplicated as an
//! unordered pair.

use crate::entity::EntityId;
use crate::hash::FxHashSet;

/// Interned relation identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u16);

/// A single relation's tuples and adjacency indexes.
#[derive(Debug, Clone)]
struct Relation {
    name: String,
    symmetric: bool,
    /// Tuples as stored (for symmetric relations, canonical `lo <= hi`... we
    /// store `(min, max)` so each unordered edge appears once).
    tuples: Vec<(EntityId, EntityId)>,
    /// Deduplication of tuples.
    seen: FxHashSet<(EntityId, EntityId)>,
    /// `out[e]` = entities `f` with a tuple `(e, f)` (plus `(f, e)` if symmetric).
    out: Vec<Vec<EntityId>>,
    /// `inc[e]` = entities `f` with a tuple `(f, e)` (equals `out` if symmetric).
    inc: Vec<Vec<EntityId>>,
}

impl Relation {
    fn new(name: &str, symmetric: bool) -> Self {
        Self {
            name: name.to_owned(),
            symmetric,
            tuples: Vec::new(),
            seen: FxHashSet::default(),
            out: Vec::new(),
            inc: Vec::new(),
        }
    }

    fn ensure_len(&mut self, entity: EntityId) {
        let need = entity.index() + 1;
        if self.out.len() < need {
            self.out.resize_with(need, Vec::new);
            self.inc.resize_with(need, Vec::new);
        }
    }

    fn add(&mut self, a: EntityId, b: EntityId) -> bool {
        let key = if self.symmetric {
            (a.min(b), a.max(b))
        } else {
            (a, b)
        };
        if !self.seen.insert(key) {
            return false;
        }
        self.ensure_len(a);
        self.ensure_len(b);
        self.tuples.push(key);
        if self.symmetric {
            self.out[a.index()].push(b);
            self.inc[a.index()].push(b);
            if a != b {
                self.out[b.index()].push(a);
                self.inc[b.index()].push(a);
            }
        } else {
            self.out[a.index()].push(b);
            self.inc[b.index()].push(a);
        }
        true
    }

    fn neighbors_out(&self, e: EntityId) -> &[EntityId] {
        self.out.get(e.index()).map_or(&[], Vec::as_slice)
    }

    fn neighbors_in(&self, e: EntityId) -> &[EntityId] {
        self.inc.get(e.index()).map_or(&[], Vec::as_slice)
    }
}

/// All relations of a dataset.
#[derive(Debug, Default, Clone)]
pub struct RelationStore {
    relations: Vec<Relation>,
}

impl RelationStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation; returns its id. Re-declaring the same name
    /// returns the existing id (the `symmetric` flag must agree).
    pub fn declare(&mut self, name: &str, symmetric: bool) -> RelationId {
        if let Some(id) = self.relation_id(name) {
            assert_eq!(
                self.relations[id.0 as usize].symmetric, symmetric,
                "relation {name} re-declared with different symmetry"
            );
            return id;
        }
        let id = u16::try_from(self.relations.len()).expect("more than u16::MAX relations");
        self.relations.push(Relation::new(name, symmetric));
        RelationId(id)
    }

    /// Look up a relation by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelationId(i as u16))
    }

    /// Name of a relation.
    pub fn name(&self, rel: RelationId) -> &str {
        &self.relations[rel.0 as usize].name
    }

    /// Whether the relation is symmetric.
    pub fn is_symmetric(&self, rel: RelationId) -> bool {
        self.relations[rel.0 as usize].symmetric
    }

    /// Add a tuple `(a, b)` to relation `rel`. Returns `true` if new.
    /// For symmetric relations the unordered edge is added once.
    pub fn add_tuple(&mut self, rel: RelationId, a: EntityId, b: EntityId) -> bool {
        self.relations[rel.0 as usize].add(a, b)
    }

    /// All tuples of `rel` (canonical orientation for symmetric relations).
    pub fn tuples(&self, rel: RelationId) -> &[(EntityId, EntityId)] {
        &self.relations[rel.0 as usize].tuples
    }

    /// Entities `f` with `rel(e, f)` (and `rel(f, e)` for symmetric `rel`).
    #[inline]
    pub fn neighbors_out(&self, rel: RelationId, e: EntityId) -> &[EntityId] {
        self.relations[rel.0 as usize].neighbors_out(e)
    }

    /// Entities `f` with `rel(f, e)` (same as `neighbors_out` for symmetric).
    #[inline]
    pub fn neighbors_in(&self, rel: RelationId, e: EntityId) -> &[EntityId] {
        self.relations[rel.0 as usize].neighbors_in(e)
    }

    /// Whether a tuple exists (orientation-insensitive for symmetric relations).
    pub fn has_tuple(&self, rel: RelationId, a: EntityId, b: EntityId) -> bool {
        let r = &self.relations[rel.0 as usize];
        let key = if r.symmetric {
            (a.min(b), a.max(b))
        } else {
            (a, b)
        };
        r.seen.contains(&key)
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Ids of all declared relations.
    pub fn ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relations.len() as u16).map(RelationId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    #[test]
    fn declare_is_idempotent() {
        let mut store = RelationStore::new();
        let co = store.declare("coauthor", true);
        assert_eq!(store.declare("coauthor", true), co);
        let cites = store.declare("cites", false);
        assert_ne!(co, cites);
        assert_eq!(store.relation_id("cites"), Some(cites));
        assert_eq!(store.name(co), "coauthor");
        assert!(store.is_symmetric(co));
        assert!(!store.is_symmetric(cites));
    }

    #[test]
    #[should_panic(expected = "different symmetry")]
    fn redeclare_with_different_symmetry_panics() {
        let mut store = RelationStore::new();
        store.declare("coauthor", true);
        store.declare("coauthor", false);
    }

    #[test]
    fn symmetric_adjacency_goes_both_ways() {
        let mut store = RelationStore::new();
        let co = store.declare("coauthor", true);
        assert!(store.add_tuple(co, e(1), e(2)));
        // Duplicate in either orientation is rejected.
        assert!(!store.add_tuple(co, e(2), e(1)));
        assert_eq!(store.neighbors_out(co, e(1)), &[e(2)]);
        assert_eq!(store.neighbors_out(co, e(2)), &[e(1)]);
        assert!(store.has_tuple(co, e(2), e(1)));
        assert_eq!(store.tuples(co).len(), 1);
    }

    #[test]
    fn directed_adjacency_is_oriented() {
        let mut store = RelationStore::new();
        let cites = store.declare("cites", false);
        store.add_tuple(cites, e(1), e(2));
        assert!(store.add_tuple(cites, e(2), e(1))); // reverse is a new tuple
        assert_eq!(store.neighbors_out(cites, e(1)), &[e(2)]);
        assert_eq!(store.neighbors_in(cites, e(2)), &[e(1)]);
        assert!(store.has_tuple(cites, e(1), e(2)));
        assert_eq!(store.tuples(cites).len(), 2);
    }

    #[test]
    fn neighbors_of_unknown_entity_are_empty() {
        let mut store = RelationStore::new();
        let co = store.declare("coauthor", true);
        assert!(store.neighbors_out(co, e(99)).is_empty());
        assert!(store.neighbors_in(co, e(99)).is_empty());
    }
}
