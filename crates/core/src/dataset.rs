//! The dataset: entities + relations + the discretized `Similar` relation,
//! and bounded *views* of it (the entity subsets matchers run on).
//!
//! Following Appendix B of the paper, attribute similarity enters the
//! matchers through a discretized predicate `similar(e1, e2, level)` with
//! level in `{1, 2, 3}` (3 = most similar). Pairs with a similarity level
//! are the *candidate pairs*: the match variables the matchers decide over.
//! The paper's "1.3M matching decisions" on HEPTH is exactly its candidate
//! pair count.

use crate::entity::{EntityId, EntityStore};
use crate::hash::FxHashMap;
use crate::pair::{Pair, PairSet};
use crate::relation::{RelationId, RelationStore};

/// Discretized similarity level of a candidate pair (higher = more similar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimLevel(pub u8);

impl SimLevel {
    /// The highest level used by the paper's models.
    pub const MAX: SimLevel = SimLevel(3);
}

/// What [`Dataset::retract_entity`] removed: the entity's relation
/// tuples as `(relation, a, b)` and its candidate pairs with levels.
pub type RetractionFootprint = (Vec<(RelationId, EntityId, EntityId)>, Vec<(Pair, SimLevel)>);

/// A complete entity-matching problem instance.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    /// All entities and their attributes.
    pub entities: EntityStore,
    /// All relations over the entities.
    pub relations: RelationStore,
    /// Candidate pairs with their similarity level.
    similar: FxHashMap<Pair, SimLevel>,
    /// Per-entity adjacency over candidate pairs: `sim_adj[e]` lists
    /// `(other, level)` for every candidate pair containing `e`.
    sim_adj: Vec<Vec<(EntityId, SimLevel)>>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `similar(a, b, level)`, making `(a, b)` a candidate pair.
    ///
    /// Re-inserting an existing pair keeps the *higher* level (a pair found
    /// similar by two criteria keeps its best evidence). Returns `true` if
    /// the pair was new.
    pub fn set_similar(&mut self, pair: Pair, level: SimLevel) -> bool {
        assert!(
            level.0 >= 1,
            "similarity level 0 means 'not a candidate'; do not insert it"
        );
        match self.similar.entry(pair) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if level > *e.get() {
                    let old = *e.get();
                    e.insert(level);
                    self.update_sim_adj(pair, old, level);
                }
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(level);
                let need = pair.hi().index() + 1;
                if self.sim_adj.len() < need {
                    self.sim_adj.resize_with(need, Vec::new);
                }
                self.sim_adj[pair.lo().index()].push((pair.hi(), level));
                self.sim_adj[pair.hi().index()].push((pair.lo(), level));
                true
            }
        }
    }

    fn update_sim_adj(&mut self, pair: Pair, old: SimLevel, new: SimLevel) {
        for (e, other) in [(pair.lo(), pair.hi()), (pair.hi(), pair.lo())] {
            for entry in &mut self.sim_adj[e.index()] {
                if entry.0 == other && entry.1 == old {
                    entry.1 = new;
                    break;
                }
            }
        }
    }

    /// Retract a candidate-pair annotation: `pair` stops being a
    /// candidate (its match variable disappears from every view).
    /// Returns the level it had, if any. The inverse of
    /// [`Dataset::set_similar`]; relative order of the surviving
    /// adjacency entries is preserved.
    pub fn retract_similar(&mut self, pair: Pair) -> Option<SimLevel> {
        let level = self.similar.remove(&pair)?;
        for (e, other) in [(pair.lo(), pair.hi()), (pair.hi(), pair.lo())] {
            let adj = &mut self.sim_adj[e.index()];
            if let Some(i) = adj.iter().position(|&(f, _)| f == other) {
                adj.remove(i);
            }
        }
        Some(level)
    }

    /// Retract an entity: tombstone its id, remove every relation tuple
    /// incident to it, and purge every candidate pair containing it.
    /// Returns the removed tuples (as `(relation, a, b)`) and the purged
    /// candidate pairs with their levels — the raw material rollback
    /// needs to find the ground interactions the retraction destroyed.
    ///
    /// # Panics
    /// Panics if the id was never assigned or is already retracted.
    pub fn retract_entity(&mut self, e: EntityId) -> RetractionFootprint {
        assert!(
            self.entities.is_live(e),
            "retract_entity({e}): not a live entity"
        );
        self.entities.retract(e);
        let tuples = self.relations.retract_entity(e);
        let neighbors: Vec<EntityId> = self
            .sim_neighbors(e)
            .iter()
            .map(|&(other, _)| other)
            .collect();
        let mut pairs = Vec::with_capacity(neighbors.len());
        for other in neighbors {
            let pair = Pair::new(e, other);
            if let Some(level) = self.retract_similar(pair) {
                pairs.push((pair, level));
            }
        }
        (tuples, pairs)
    }

    /// Similarity level of a pair, if it is a candidate pair.
    #[inline]
    pub fn similarity(&self, pair: Pair) -> Option<SimLevel> {
        self.similar.get(&pair).copied()
    }

    /// Whether `pair` is a candidate pair.
    #[inline]
    pub fn is_candidate(&self, pair: Pair) -> bool {
        self.similar.contains_key(&pair)
    }

    /// All candidate pairs with their levels (arbitrary order).
    pub fn candidate_pairs(&self) -> impl Iterator<Item = (Pair, SimLevel)> + '_ {
        self.similar.iter().map(|(p, l)| (*p, *l))
    }

    /// Number of candidate pairs in the dataset.
    pub fn candidate_count(&self) -> usize {
        self.similar.len()
    }

    /// Candidate-pair neighbors of an entity: `(other, level)` lists.
    #[inline]
    pub fn sim_neighbors(&self, e: EntityId) -> &[(EntityId, SimLevel)] {
        self.sim_adj.get(e.index()).map_or(&[], Vec::as_slice)
    }

    /// Install a previously walked per-entity candidate adjacency
    /// verbatim, replacing the current `similar` map and `sim_adj` —
    /// the decode half of [`Dataset::sim_neighbors`] for durable-session
    /// snapshots. Per-entity neighbor *order* is part of the dataset's
    /// observable behavior ([`View::candidate_pairs`] enumerates it), so
    /// replaying [`Dataset::set_similar`] calls cannot reproduce a
    /// churned session's adjacency; this installer can.
    ///
    /// # Panics
    /// Panics if the adjacency is asymmetric (an `(e, other)` entry
    /// without the mirrored `(other, e)` entry at the same level) — a
    /// corrupted snapshot must not produce a half-connected dataset.
    pub fn restore_sim_adjacency(&mut self, sim_adj: Vec<Vec<(EntityId, SimLevel)>>) {
        let mut similar: FxHashMap<Pair, SimLevel> = FxHashMap::default();
        for (i, neighbors) in sim_adj.iter().enumerate() {
            let e = EntityId(i as u32);
            for &(other, level) in neighbors {
                let mirrored = sim_adj
                    .get(other.index())
                    .is_some_and(|adj| adj.contains(&(e, level)));
                assert!(
                    mirrored,
                    "restored adjacency is asymmetric at ({e}, {other})"
                );
                similar.insert(Pair::new(e, other), level);
            }
        }
        self.similar = similar;
        self.sim_adj = sim_adj;
    }

    /// A view over the whole dataset (all live entities). The constant-
    /// time membership fast path only applies while no entity has been
    /// retracted; with tombstones present, membership falls back to the
    /// member list so dead ids test as outside the view.
    pub fn full_view(&self) -> View<'_> {
        let members: Vec<EntityId> = self.entities.ids().collect();
        let full = members.len() == self.entities.len();
        View {
            dataset: self,
            members,
            full,
        }
    }

    /// A view restricted to `members`. The member list is deduplicated and
    /// sorted internally.
    pub fn view(&self, members: impl IntoIterator<Item = EntityId>) -> View<'_> {
        let mut members: Vec<EntityId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        View {
            dataset: self,
            members,
            full: false,
        }
    }
}

/// A matcher's working set: a subset of the dataset's entities
/// (a *neighborhood* in the paper's terminology) together with the induced
/// relations and candidate pairs.
///
/// Matchers never see entities outside the view; that restriction is what
/// makes neighborhood runs cheap and the monotonicity analysis
/// (`E(C, ·) ⊆ E(E, ·)` for `C ⊆ E`) meaningful.
#[derive(Debug, Clone)]
pub struct View<'a> {
    dataset: &'a Dataset,
    /// Sorted, deduplicated member ids.
    members: Vec<EntityId>,
    /// Fast path for the full dataset: membership is always true.
    full: bool,
}

impl<'a> View<'a> {
    /// The underlying dataset.
    #[inline]
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// Member entities, ascending.
    #[inline]
    pub fn members(&self) -> &[EntityId] {
        &self.members
    }

    /// Number of member entities (the `k` in the paper's complexity bounds).
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether this view covers the whole dataset.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Membership test (binary search; O(log k)).
    #[inline]
    pub fn contains(&self, e: EntityId) -> bool {
        self.full || self.members.binary_search(&e).is_ok()
    }

    /// Whether both endpoints of `pair` are members.
    #[inline]
    pub fn contains_pair(&self, pair: Pair) -> bool {
        self.contains(pair.lo()) && self.contains(pair.hi())
    }

    /// Candidate pairs fully inside the view, with levels.
    ///
    /// Enumerated via the per-entity similarity adjacency so the cost is
    /// proportional to the members' candidate degrees, not the dataset size.
    pub fn candidate_pairs(&self) -> Vec<(Pair, SimLevel)> {
        let mut out = Vec::new();
        for &e in &self.members {
            for &(other, level) in self.dataset.sim_neighbors(e) {
                // Emit each pair once, from its lower endpoint.
                if e < other && self.contains(other) {
                    out.push((Pair::new(e, other), level));
                }
            }
        }
        out
    }

    /// Restrict a pair set to pairs fully inside the view.
    pub fn restrict(&self, pairs: &PairSet) -> PairSet {
        pairs.iter().filter(|p| self.contains_pair(*p)).collect()
    }

    /// `rel`-neighbors of `e` that are inside the view.
    pub fn rel_neighbors_out(&self, rel: RelationId, e: EntityId) -> Vec<EntityId> {
        self.dataset
            .relations
            .neighbors_out(rel, e)
            .iter()
            .copied()
            .filter(|&f| self.contains(f))
            .collect()
    }

    /// Incoming `rel`-neighbors of `e` inside the view.
    pub fn rel_neighbors_in(&self, rel: RelationId, e: EntityId) -> Vec<EntityId> {
        self.dataset
            .relations
            .neighbors_in(rel, e)
            .iter()
            .copied()
            .filter(|&f| self.contains(f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn small_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..6 {
            ds.entities.add_entity(ty);
        }
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(0), e(2));
        ds.relations.add_tuple(co, e(1), e(3));
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2));
        ds.set_similar(Pair::new(e(2), e(3)), SimLevel(3));
        ds.set_similar(Pair::new(e(4), e(5)), SimLevel(1));
        ds
    }

    #[test]
    fn similar_keeps_highest_level() {
        let mut ds = small_dataset();
        let p = Pair::new(e(0), e(1));
        assert_eq!(ds.similarity(p), Some(SimLevel(2)));
        assert!(!ds.set_similar(p, SimLevel(1)));
        assert_eq!(ds.similarity(p), Some(SimLevel(2)));
        assert!(!ds.set_similar(p, SimLevel(3)));
        assert_eq!(ds.similarity(p), Some(SimLevel(3)));
        // Adjacency must reflect the upgrade on both endpoints.
        assert!(ds.sim_neighbors(e(0)).contains(&(e(1), SimLevel(3))));
        assert!(ds.sim_neighbors(e(1)).contains(&(e(0), SimLevel(3))));
    }

    #[test]
    #[should_panic(expected = "level 0")]
    fn level_zero_is_rejected() {
        let mut ds = small_dataset();
        ds.set_similar(Pair::new(e(0), e(5)), SimLevel(0));
    }

    #[test]
    fn retract_similar_unwinds_annotation_and_adjacency() {
        let mut ds = small_dataset();
        let p = Pair::new(e(0), e(1));
        assert_eq!(ds.retract_similar(p), Some(SimLevel(2)));
        assert_eq!(ds.retract_similar(p), None, "second retraction no-op");
        assert_eq!(ds.similarity(p), None);
        assert!(!ds.is_candidate(p));
        assert!(ds.sim_neighbors(e(0)).is_empty());
        assert!(ds.sim_neighbors(e(1)).is_empty());
        assert_eq!(ds.candidate_count(), 2);
        // Re-annotation after retraction starts fresh (no max-keeping).
        assert!(ds.set_similar(p, SimLevel(1)));
        assert_eq!(ds.similarity(p), Some(SimLevel(1)));
    }

    #[test]
    fn retract_entity_purges_tuples_and_pairs() {
        let mut ds = small_dataset();
        let co = ds.relations.relation_id("coauthor").unwrap();
        let (tuples, pairs) = ds.retract_entity(e(0));
        assert_eq!(tuples, vec![(co, e(0), e(2))]);
        assert_eq!(pairs, vec![(Pair::new(e(0), e(1)), SimLevel(2))]);
        assert!(!ds.entities.is_live(e(0)));
        assert!(!ds.is_candidate(Pair::new(e(0), e(1))));
        assert!(!ds.relations.has_tuple(co, e(0), e(2)));
        // Untouched structure survives.
        assert!(ds.is_candidate(Pair::new(e(2), e(3))));
        assert!(ds.relations.has_tuple(co, e(1), e(3)));
        // Full views no longer list the tombstone.
        assert!(!ds.full_view().members().contains(&e(0)));
        assert_eq!(ds.full_view().candidate_pairs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a live entity")]
    fn retracting_twice_panics() {
        let mut ds = small_dataset();
        ds.retract_entity(e(0));
        ds.retract_entity(e(0));
    }

    #[test]
    fn view_membership_and_pairs() {
        let ds = small_dataset();
        let v = ds.view([e(0), e(1), e(2)]);
        assert_eq!(v.len(), 3);
        assert!(v.contains(e(1)));
        assert!(!v.contains(e(3)));
        assert!(v.contains_pair(Pair::new(e(0), e(1))));
        assert!(!v.contains_pair(Pair::new(e(2), e(3))));
        let pairs = v.candidate_pairs();
        assert_eq!(pairs, vec![(Pair::new(e(0), e(1)), SimLevel(2))]);
    }

    #[test]
    fn view_dedups_members() {
        let ds = small_dataset();
        let v = ds.view([e(2), e(0), e(2), e(0)]);
        assert_eq!(v.members(), &[e(0), e(2)]);
    }

    #[test]
    fn full_view_sees_everything() {
        let ds = small_dataset();
        let v = ds.full_view();
        assert!(v.is_full());
        assert_eq!(v.len(), 6);
        assert_eq!(v.candidate_pairs().len(), 3);
    }

    #[test]
    fn restrict_filters_outside_pairs() {
        let ds = small_dataset();
        let v = ds.view([e(0), e(1)]);
        let all: PairSet = [Pair::new(e(0), e(1)), Pair::new(e(2), e(3))]
            .into_iter()
            .collect();
        let inside = v.restrict(&all);
        assert_eq!(inside.len(), 1);
        assert!(inside.contains(Pair::new(e(0), e(1))));
    }

    #[test]
    fn rel_neighbors_respect_view() {
        let ds = small_dataset();
        let co = ds.relations.relation_id("coauthor").unwrap();
        let v = ds.view([e(0), e(1), e(2)]);
        assert_eq!(v.rel_neighbors_out(co, e(0)), vec![e(2)]);
        // e(3) is outside the view, so e(1) has no visible coauthor.
        assert!(v.rel_neighbors_out(co, e(1)).is_empty());
    }
}
