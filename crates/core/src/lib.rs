//! # em-core — scalable collective entity matching
//!
//! Core of a reproduction of *"Large-Scale Collective Entity Matching"*
//! (Rastogi, Dalvi, Garofalakis, PVLDB 4(4), 2011): a principled framework
//! for scaling any collective entity matcher by running it on small,
//! overlapping *neighborhoods* of the data and passing *messages* between
//! the runs.
//!
//! ## Walkthrough
//!
//! (Applications should prefer the umbrella crate's `em::Pipeline`
//! front door, which wraps these engine hooks behind one builder; the
//! hooks below are what it calls.)
//!
//! ```
//! use em_core::evidence::Evidence;
//! use em_core::framework::{mmp_with_order, no_mp_baseline, smp_with_order, MmpConfig};
//! use em_core::testing::paper_example;
//!
//! // The paper's running example: 9 author references, coauthor edges,
//! // and the MLN weights R1 = −5, R2 = +8 (§2.1, Figures 1–2).
//! let (dataset, cover, matcher, expected_full_run) = paper_example();
//!
//! // NO-MP finds only the locally decidable match (c1, c2).
//! let nomp = no_mp_baseline(&matcher, &dataset, &cover, &Evidence::none());
//! assert_eq!(nomp.matches.len(), 1);
//!
//! // SMP recovers (b1, b2) via a simple message, but not the 3-pair chain.
//! let smp_run = smp_with_order(&matcher, &dataset, &cover, &Evidence::none(), None);
//! assert_eq!(smp_run.matches.len(), 2);
//!
//! // MMP completes the chain with maximal messages: the full-run output.
//! let mmp_run = mmp_with_order(
//!     &matcher,
//!     &dataset,
//!     &cover,
//!     &Evidence::none(),
//!     &MmpConfig::default(),
//!     None,
//! );
//! assert_eq!(mmp_run.matches, expected_full_run);
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`entity`], [`relation`], [`dataset`] | §1 | data model: entities, relations, candidate pairs, views |
//! | [`pair`], [`evidence`] | §3 | match pairs, pair sets, evidence sets `V+`/`V−` |
//! | [`matcher`] | §3 | Type-I / Type-II black-box abstractions, scores |
//! | [`cache`] | — | pair memo tables + the memoizing [`CachedMatcher`] wrapper |
//! | [`cover`] | §4 | neighborhoods, covers, total covers, boundary expansion |
//! | [`framework`] | §5 | NO-MP, SMP (Alg. 1), MMP (Alg. 2–3) |
//! | [`properties`] | §3 | randomized well-behavedness checker |
//! | [`testing`] | §2 | brute-force oracle matcher + the paper's running example |

#![warn(missing_docs)]

pub mod cache;
pub mod cover;
pub mod dataset;
pub mod entity;
pub mod error;
pub mod evidence;
pub mod framework;
pub mod hash;
pub mod matcher;
pub mod pair;
pub mod properties;
pub mod relation;
pub mod testing;

pub use cache::{CacheStats, CachedMatcher, PairCache, PairScoreCache};
pub use cover::{Cover, CoverStats, NeighborhoodId};
pub use dataset::{Dataset, SimLevel, View};
pub use entity::{AttrId, EntityId, EntityStore, TypeId};
pub use error::{Error, Result};
pub use evidence::{Epoch, Evidence};
pub use framework::DependencyIndex;
pub use matcher::{GlobalScorer, MatchOutput, Matcher, ProbabilisticMatcher, Score};
pub use pair::{Pair, PairSet};
pub use relation::{RelationId, RelationStore};
