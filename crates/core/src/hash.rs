//! Fast, deterministic hashing for the hot maps and sets in the framework.
//!
//! Entity-matching workloads hash millions of small integer keys
//! ([`crate::EntityId`], [`crate::Pair`]). The standard library's SipHash is
//! needlessly slow for this and, more importantly for reproducibility, we
//! want *deterministic* iteration-independent behaviour across runs. This
//! module implements the Fx hash function (the multiply-xor hash used by
//! rustc) so the workspace does not need an external hashing crate.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher suitable for small keys.
///
/// Not resistant to HashDoS; all keys in this workspace are internally
/// generated integers, so adversarial collisions are not a concern.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// SplitMix64's output mixing function (Steele, Lea, Flood 2014): a
/// strong bijective 64-bit finalizer. Shared by the well-behavedness
/// checker's RNG and the cache fingerprints so the constants live in
/// exactly one place.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"entity"), hash_of(&"entity"));
        assert_eq!(hash_of(&(7u32, 9u32)), hash_of(&(7u32, 9u32)));
    }

    #[test]
    fn different_keys_hash_differently() {
        // Not a universal guarantee, but these must differ for sane behaviour.
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Regression check: strings whose difference lies past the last
        // 8-byte boundary must not collide trivially.
        assert_ne!(hash_of(&"abcdefgh1"), hash_of(&"abcdefgh2"));
    }

    #[test]
    fn maps_and_sets_are_usable() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(10);
        assert!(set.contains(&10));
        assert!(!set.contains(&11));
    }
}
