//! Property-based tests of the framework's theorems on random
//! supermodular instances.
//!
//! [`TableMatcher`] enumerates all assignments, so it is an *exact*
//! Type-II matcher; running the framework against it checks the paper's
//! guarantees end-to-end:
//!
//! * Theorem 2 (SMP): soundness and order-consistency;
//! * Theorem 4 (MMP): soundness and order-consistency;
//! * monotonic scheme ordering: NO-MP ⊆ SMP ⊆ MMP ⊆ full run.

use em_core::cover::{Cover, NeighborhoodId};
use em_core::dataset::{Dataset, SimLevel};
use em_core::entity::EntityId;
use em_core::evidence::Evidence;
use em_core::framework::{mmp_with_order, no_mp_baseline, smp_with_order, MmpConfig};
use em_core::matcher::{MatchOutput, Matcher, Score};
use em_core::pair::{Pair, PairSet};
use em_core::testing::{paper_example, TableMatcher};
use proptest::prelude::*;

/// A randomly generated supermodular instance plus a cover of it.
#[derive(Debug, Clone)]
struct Instance {
    n_entities: u32,
    /// (a, b, level, unary milli-weight)
    pairs: Vec<(u32, u32, u8, i64)>,
    /// (pair index, pair index, weight > 0)
    edges: Vec<(usize, usize, i64)>,
    /// neighborhood index sets (entity ids, may overlap)
    neighborhoods: Vec<Vec<u32>>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (4u32..10).prop_flat_map(|n| {
        // Endpoints are made distinct at build time: b = (a + 1 + d) % n.
        let pair_strategy = (0..n, 0..n.saturating_sub(1), 1u8..=3, -6000i64..3000);
        let pairs = proptest::collection::vec(pair_strategy, 1..10);
        pairs.prop_flat_map(move |pairs| {
            let np = pairs.len();
            // Degenerate (i == j) edges are skipped at build time.
            let edges = proptest::collection::vec((0..np, 0..np, 1i64..9000), 0..6);
            // Neighborhoods: random subsets; a final one covers the rest.
            let neighborhoods =
                proptest::collection::vec(proptest::collection::vec(0..n, 1..=(n as usize)), 1..5);
            (Just(pairs), edges, neighborhoods).prop_map(move |(pairs, edges, mut nbhds)| {
                // Guarantee a cover: add all entities as a last neighborhood
                // half the time, otherwise ensure coverage by appending
                // missing entities to the last neighborhood.
                let mut seen = vec![false; n as usize];
                for nb in &nbhds {
                    for &e in nb {
                        seen[e as usize] = true;
                    }
                }
                let missing: Vec<u32> = (0..n).filter(|&e| !seen[e as usize]).collect();
                if !missing.is_empty() {
                    nbhds.push(missing);
                }
                Instance {
                    n_entities: n,
                    pairs,
                    edges,
                    neighborhoods: nbhds,
                }
            })
        })
    })
}

fn build(instance: &Instance) -> (Dataset, Cover, TableMatcher) {
    let mut ds = Dataset::new();
    let ty = ds.entities.intern_type("entity");
    for _ in 0..instance.n_entities {
        ds.entities.add_entity(ty);
    }
    let mut matcher = TableMatcher::new();
    let mut pair_ids: Vec<Pair> = Vec::new();
    for &(a, d, level, unary) in &instance.pairs {
        let b = (a + 1 + d) % instance.n_entities;
        let p = Pair::new(EntityId(a), EntityId(b));
        ds.set_similar(p, SimLevel(level));
        matcher.set_unary(p, Score(unary));
        pair_ids.push(p);
    }
    for &(i, j, w) in &instance.edges {
        if i != j && pair_ids[i] != pair_ids[j] {
            matcher.add_edge([pair_ids[i], pair_ids[j]], [], Score(w));
        }
    }
    let cover = Cover::from_neighborhoods(
        instance
            .neighborhoods
            .iter()
            .map(|nb| nb.iter().map(|&e| EntityId(e)).collect::<Vec<_>>()),
    );
    (ds, cover, matcher)
}

// Local shims over the engine hooks (the plain `no_mp`/`smp`/`mmp` free
// functions are deprecated in favour of the `em::Pipeline` front door;
// these property tests target the engines directly).
fn no_mp(matcher: &dyn Matcher, ds: &Dataset, cover: &Cover, ev: &Evidence) -> MatchOutput {
    no_mp_baseline(matcher, ds, cover, ev)
}

fn smp(matcher: &dyn Matcher, ds: &Dataset, cover: &Cover, ev: &Evidence) -> MatchOutput {
    smp_with_order(matcher, ds, cover, ev, None)
}

fn mmp(
    matcher: &dyn em_core::ProbabilisticMatcher,
    ds: &Dataset,
    cover: &Cover,
    ev: &Evidence,
    config: &MmpConfig,
) -> MatchOutput {
    mmp_with_order(matcher, ds, cover, ev, config, None)
}

/// Reverse permutation of the neighborhood ids, as an adversarial order.
fn reversed_order(cover: &Cover) -> Vec<NeighborhoodId> {
    let mut ids: Vec<NeighborhoodId> = cover.ids().collect();
    ids.reverse();
    ids
}

/// The pre-epoch SMP: a plain FIFO worklist where every visit restricts
/// the full `M+` snapshot. Kept here as the reference the delta-scheduled
/// implementation must reproduce exactly.
fn snapshot_smp_reference(matcher: &dyn Matcher, ds: &Dataset, cover: &Cover) -> PairSet {
    use std::collections::VecDeque;
    let mut queue: VecDeque<NeighborhoodId> = cover.ids().collect();
    let mut queued = vec![true; cover.len()];
    let mut found = PairSet::new();
    while let Some(id) = queue.pop_front() {
        queued[id.index()] = false;
        let view = cover.view(ds, id);
        let local = Evidence::from_parts(view.restrict(&found), PairSet::new());
        let matches = matcher.match_view(&view, &local);
        let new_matches: PairSet = matches.difference(&found);
        for p in new_matches.iter() {
            for affected in cover.containing_pair(p) {
                if affected != id && !queued[affected.index()] {
                    queued[affected.index()] = true;
                    queue.push_back(affected);
                }
            }
        }
        found.union_with(&new_matches);
    }
    found
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smp_is_sound_and_below_full_run(instance in instance_strategy()) {
        let (ds, cover, matcher) = build(&instance);
        let full = matcher.match_view(&ds.full_view(), &Evidence::none());
        let out = smp(&matcher, &ds, &cover, &Evidence::none());
        prop_assert!(out.matches.is_subset(&full),
            "SMP output {} not ⊆ full run {}", out.matches, full);
    }

    #[test]
    fn mmp_is_sound(instance in instance_strategy()) {
        let (ds, cover, matcher) = build(&instance);
        let full = matcher.match_view(&ds.full_view(), &Evidence::none());
        let out = mmp(&matcher, &ds, &cover, &Evidence::none(), &MmpConfig::default());
        prop_assert!(out.matches.is_subset(&full),
            "MMP output {} not ⊆ full run {}", out.matches, full);
    }

    #[test]
    fn schemes_are_monotonically_more_complete(instance in instance_strategy()) {
        let (ds, cover, matcher) = build(&instance);
        let nomp_out = no_mp(&matcher, &ds, &cover, &Evidence::none());
        let smp_out = smp(&matcher, &ds, &cover, &Evidence::none());
        let mmp_out = mmp(&matcher, &ds, &cover, &Evidence::none(), &MmpConfig::default());
        prop_assert!(nomp_out.matches.is_subset(&smp_out.matches),
            "NO-MP ⊄ SMP: {} vs {}", nomp_out.matches, smp_out.matches);
        prop_assert!(smp_out.matches.is_subset(&mmp_out.matches),
            "SMP ⊄ MMP: {} vs {}", smp_out.matches, mmp_out.matches);
    }

    #[test]
    fn smp_is_order_consistent(instance in instance_strategy()) {
        let (ds, cover, matcher) = build(&instance);
        let forward = smp(&matcher, &ds, &cover, &Evidence::none());
        let order = reversed_order(&cover);
        let backward = smp_with_order(&matcher, &ds, &cover, &Evidence::none(), Some(&order));
        prop_assert_eq!(forward.matches, backward.matches);
    }

    #[test]
    fn mmp_is_order_consistent(instance in instance_strategy()) {
        let (ds, cover, matcher) = build(&instance);
        let config = MmpConfig::default();
        let forward = mmp(&matcher, &ds, &cover, &Evidence::none(), &config);
        let order = reversed_order(&cover);
        let backward =
            mmp_with_order(&matcher, &ds, &cover, &Evidence::none(), &config, Some(&order));
        prop_assert_eq!(forward.matches, backward.matches);
    }

    #[test]
    fn incremental_mmp_is_byte_identical_and_probe_bounded(instance in instance_strategy()) {
        // The evidence-delta engine must be invisible in the output: probe
        // replay + isolated-pair elision produce exactly the fixpoint of
        // probe-everything MMP, with no more conditioned probes, and every
        // probe is either issued or replayed.
        let (ds, cover, matcher) = build(&instance);
        let full_cfg = MmpConfig { incremental: false, ..Default::default() };
        let full = mmp(&matcher, &ds, &cover, &Evidence::none(), &full_cfg);
        let incr = mmp(&matcher, &ds, &cover, &Evidence::none(), &MmpConfig::default());
        prop_assert_eq!(&incr.matches, &full.matches,
            "incremental MMP diverged from full recompute");
        prop_assert!(incr.stats.conditioned_probes <= full.stats.conditioned_probes,
            "incremental issued more probes ({} > {})",
            incr.stats.conditioned_probes, full.stats.conditioned_probes);
        prop_assert_eq!(
            incr.stats.conditioned_probes + incr.stats.probes_replayed,
            full.stats.conditioned_probes,
            "probe ledger must balance");
        prop_assert_eq!(full.stats.probes_replayed, 0);
    }

    #[test]
    fn delta_scheduled_smp_equals_snapshot_smp(instance in instance_strategy()) {
        // The scheduler's cached local evidence + routed deltas must
        // reproduce the naive "restrict the full M+ every visit" fixpoint.
        let (ds, cover, matcher) = build(&instance);
        let delta_run = smp(&matcher, &ds, &cover, &Evidence::none());
        let snapshot = snapshot_smp_reference(&matcher, &ds, &cover);
        prop_assert_eq!(delta_run.matches, snapshot);
    }

    #[test]
    fn positive_evidence_only_grows_output(instance in instance_strategy()) {
        let (ds, cover, matcher) = build(&instance);
        let base = smp(&matcher, &ds, &cover, &Evidence::none());
        // Seed with an arbitrary candidate pair as known match.
        let first = ds.candidate_pairs().next().map(|(p, _)| p);
        if let Some(p) = first {
            let seeded = smp(
                &matcher,
                &ds,
                &cover,
                &Evidence::positive([p].into_iter().collect()),
            );
            prop_assert!(base.matches.is_subset(&seeded.matches));
        }
    }

    #[test]
    fn negative_evidence_is_respected(instance in instance_strategy()) {
        let (ds, cover, matcher) = build(&instance);
        let first = ds.candidate_pairs().next().map(|(p, _)| p);
        if let Some(p) = first {
            let neg: PairSet = [p].into_iter().collect();
            let out = smp(
                &matcher,
                &ds,
                &cover,
                &Evidence::new(PairSet::new(), neg),
            );
            prop_assert!(!out.matches.contains(p));
            let out = mmp(
                &matcher,
                &ds,
                &cover,
                &Evidence::new(PairSet::new(), [p].into_iter().collect()),
                &MmpConfig::default(),
            );
            prop_assert!(!out.matches.contains(p));
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic walkthrough tests on the paper's running example.
// ---------------------------------------------------------------------

fn p(a: u32, b: u32) -> Pair {
    Pair::new(EntityId(a), EntityId(b))
}

#[test]
fn paper_example_no_mp_finds_only_c1_c2() {
    let (ds, cover, matcher, _) = paper_example();
    let out = no_mp(&matcher, &ds, &cover, &Evidence::none());
    let expected: PairSet = [p(5, 6)].into_iter().collect();
    assert_eq!(out.matches, expected, "§2.2: NO-MP outputs only (c1, c2)");
}

#[test]
fn paper_example_smp_recovers_b1_b2() {
    let (ds, cover, matcher, _) = paper_example();
    let out = smp(&matcher, &ds, &cover, &Evidence::none());
    let expected: PairSet = [p(5, 6), p(2, 3)].into_iter().collect();
    assert_eq!(
        out.matches, expected,
        "§2.2: SMP adds (b1, b2) via a simple message but misses the chain"
    );
    assert!(out.stats.messages_sent >= 2);
}

#[test]
fn paper_example_mmp_completes_the_chain() {
    let (ds, cover, matcher, expected) = paper_example();
    let out = mmp(
        &matcher,
        &ds,
        &cover,
        &Evidence::none(),
        &MmpConfig::default(),
    );
    assert_eq!(out.matches, expected, "§2.2: MMP = full run on the example");
    assert!(out.stats.promotions >= 1, "the chain requires a promotion");
    assert!(out.stats.maximal_messages_created >= 2);
}

#[test]
fn paper_example_mmp_without_singletons_still_completes_chain() {
    let (ds, cover, matcher, expected) = paper_example();
    let config = MmpConfig {
        singleton_messages: false,
        ..Default::default()
    };
    let out = mmp(&matcher, &ds, &cover, &Evidence::none(), &config);
    // The chain is recovered by genuine multi-pair messages; singletons
    // only matter for pairs whose evidence is spread across neighborhoods.
    assert_eq!(out.matches, expected);
}

#[test]
fn paper_example_is_order_consistent_under_all_permutations() {
    let (ds, cover, matcher, expected) = paper_example();
    let ids: Vec<NeighborhoodId> = cover.ids().collect();
    // 3 neighborhoods → 6 permutations; try them all.
    let perms: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for perm in perms {
        let order: Vec<NeighborhoodId> = perm.iter().map(|&i| ids[i]).collect();
        let smp_out = smp_with_order(&matcher, &ds, &cover, &Evidence::none(), Some(&order));
        let expected_smp: PairSet = [p(5, 6), p(2, 3)].into_iter().collect();
        assert_eq!(smp_out.matches, expected_smp, "SMP order {perm:?}");
        let mmp_out = mmp_with_order(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
            Some(&order),
        );
        assert_eq!(mmp_out.matches, expected, "MMP order {perm:?}");
    }
}

#[test]
fn paper_example_idempotence_of_framework() {
    // Feeding a run's output back as evidence reproduces the same output.
    let (ds, cover, matcher, _) = paper_example();
    let first = mmp(
        &matcher,
        &ds,
        &cover,
        &Evidence::none(),
        &MmpConfig::default(),
    );
    let second = mmp(
        &matcher,
        &ds,
        &cover,
        &Evidence::positive(first.matches.clone()),
        &MmpConfig::default(),
    );
    assert_eq!(first.matches, second.matches);
}

#[test]
fn stats_reflect_linear_neighborhood_cost() {
    let (ds, cover, matcher, _) = paper_example();
    let out = smp(&matcher, &ds, &cover, &Evidence::none());
    // Theorem 3's bound is k²·n evaluations; the practical count must be
    // far smaller (paper: "a neighborhood is never evaluated k² times").
    let k = cover.max_size() as u64;
    let n = cover.len() as u64;
    assert!(out.stats.neighborhoods_processed <= k * k * n);
    assert!(out.stats.neighborhoods_processed >= n);
}
