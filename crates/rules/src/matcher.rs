//! [`RulesMatcher`]: the Type-I black box over a rule program.

use crate::ast::Rule;
use crate::engine::evaluate;
use crate::parser::parse_rules;
use crate::union_find::UnionFind;
use em_core::{EntityId, Evidence, Matcher, Pair, PairSet, View};

/// Declarative rule-based matcher (Appendix B's RULES).
///
/// Evaluates the monotone rule program to a least fixpoint; optionally
/// applies a transitive closure to the result (the paper evaluates "the
/// above set of rules without transitive closure, followed by a
/// transitive closure at the end" — the closure of a monotone matcher is
/// monotone, so the framework's guarantees survive).
#[derive(Debug, Clone)]
pub struct RulesMatcher {
    rules: Vec<Rule>,
    transitive_closure: bool,
}

impl RulesMatcher {
    /// Matcher from parsed rules, without closure.
    pub fn new(rules: Vec<Rule>) -> Self {
        Self {
            rules,
            transitive_closure: false,
        }
    }

    /// Matcher from program text.
    pub fn from_text(text: &str) -> Result<Self, crate::parser::ParseError> {
        Ok(Self::new(parse_rules(text)?))
    }

    /// Enable/disable the final transitive closure.
    pub fn with_transitive_closure(mut self, enabled: bool) -> Self {
        self.transitive_closure = enabled;
        self
    }

    /// The rule program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }
}

impl Matcher for RulesMatcher {
    fn match_view(&self, view: &View<'_>, evidence: &Evidence) -> PairSet {
        let matched = evaluate(view, &self.rules, evidence);
        if !self.transitive_closure {
            return matched;
        }
        // Transitive closure: cluster the matched pairs and emit every
        // intra-cluster pair (minus hard negatives, which win over
        // closure).
        let mut uf: UnionFind<EntityId> = UnionFind::new();
        for p in matched.iter() {
            uf.union(p.lo(), p.hi());
        }
        let mut out = matched;
        for group in uf.groups() {
            let mut members = group;
            members.sort_unstable();
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    let p = Pair::new(a, b);
                    if !evidence.negative.contains(p) {
                        out.insert(p);
                    }
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "rules"
    }
}

/// The exact Appendix-B RULES program: level 3 matches outright; level 2
/// needs one matching coauthor pair; level 1 needs two distinct matching
/// coauthor pairs.
pub fn paper_rules() -> Vec<Rule> {
    parse_rules(
        "
# Appendix B, RULES matcher
equals(X,Y) :- similar(X,Y,3).
equals(X,Y) :- similar(X,Y,2), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2).
equals(X,Y) :- similar(X,Y,1), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2),
               coauthor(X,C3), coauthor(Y,C4), equals(C3,C4),
               distinct_pairs(C1,C2,C3,C4).
",
    )
    .expect("paper rules parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{Dataset, SimLevel};

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..6 {
            ds.entities.add_entity(ty);
        }
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(0), e(2));
        ds.relations.add_tuple(co, e(1), e(3));
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2));
        ds.set_similar(Pair::new(e(2), e(3)), SimLevel(3));
        // A second level-3 pair overlapping e1: (1, 4) for closure tests.
        ds.set_similar(Pair::new(e(1), e(4)), SimLevel(3));
        ds.set_similar(Pair::new(e(0), e(4)), SimLevel(1));
        ds
    }

    #[test]
    fn paper_rules_cascade() {
        let ds = dataset();
        let matcher = RulesMatcher::new(paper_rules());
        let out = matcher.match_view(&ds.full_view(), &Evidence::none());
        assert!(out.contains(Pair::new(e(2), e(3))));
        assert!(out.contains(Pair::new(e(0), e(1))));
        assert!(out.contains(Pair::new(e(1), e(4))));
        // (0,4) is level 1 with no coauthor witnesses: not derived.
        assert!(!out.contains(Pair::new(e(0), e(4))));
    }

    #[test]
    fn transitive_closure_completes_clusters() {
        let ds = dataset();
        let matcher = RulesMatcher::new(paper_rules()).with_transitive_closure(true);
        let out = matcher.match_view(&ds.full_view(), &Evidence::none());
        // (0,1) and (1,4) matched ⇒ closure adds (0,4).
        assert!(out.contains(Pair::new(e(0), e(4))));
    }

    #[test]
    fn closure_respects_negative_evidence() {
        let ds = dataset();
        let matcher = RulesMatcher::new(paper_rules()).with_transitive_closure(true);
        let neg: PairSet = [Pair::new(e(0), e(4))].into_iter().collect();
        let out = matcher.match_view(&ds.full_view(), &Evidence::new(PairSet::new(), neg));
        assert!(!out.contains(Pair::new(e(0), e(4))));
    }

    #[test]
    fn matcher_is_idempotent() {
        let ds = dataset();
        for closure in [false, true] {
            let matcher = RulesMatcher::new(paper_rules()).with_transitive_closure(closure);
            let view = ds.full_view();
            let first = matcher.match_view(&view, &Evidence::none());
            let second = matcher.match_view(&view, &Evidence::positive(first.clone()));
            assert_eq!(first, second, "closure={closure}");
        }
    }

    #[test]
    fn matcher_is_monotone_in_entities() {
        let ds = dataset();
        let matcher = RulesMatcher::new(paper_rules());
        let small = matcher.match_view(&ds.view([e(0), e(1)]), &Evidence::none());
        let big = matcher.match_view(&ds.full_view(), &Evidence::none());
        assert!(small.is_subset(&big));
    }

    #[test]
    fn from_text_round_trip() {
        let matcher = RulesMatcher::from_text("equals(X,Y) :- similar(X,Y,3).").unwrap();
        assert_eq!(matcher.rules().len(), 1);
        assert_eq!(matcher.name(), "rules");
    }
}
