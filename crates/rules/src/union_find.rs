//! Generic union-find over hashable keys, used for the transitive
//! closure the RULES matcher applies after its fixpoint.

use em_core::hash::FxHashMap;
use std::hash::Hash;

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug, Clone, Default)]
pub struct UnionFind<T: Copy + Eq + Hash> {
    parent: FxHashMap<T, T>,
    size: FxHashMap<T, u32>,
}

impl<T: Copy + Eq + Hash> UnionFind<T> {
    /// Empty forest.
    pub fn new() -> Self {
        Self {
            parent: FxHashMap::default(),
            size: FxHashMap::default(),
        }
    }

    /// Representative of `x`'s set (inserting `x` as a singleton if new).
    pub fn find(&mut self, x: T) -> T {
        if let std::collections::hash_map::Entry::Vacant(e) = self.parent.entry(x) {
            e.insert(x);
            self.size.insert(x, 1);
            return x;
        }
        let mut cur = x;
        loop {
            let p = self.parent[&cur];
            if p == cur {
                break;
            }
            let gp = self.parent[&p];
            self.parent.insert(cur, gp); // path halving
            cur = gp;
        }
        cur
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were
    /// separate.
    pub fn union(&mut self, a: T, b: T) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[&ra] >= self.size[&rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent.insert(small, big);
        let merged = self.size[&big] + self.size[&small];
        self.size.insert(big, merged);
        true
    }

    /// Whether `a` and `b` are in the same set (inserting as needed).
    pub fn connected(&mut self, a: T, b: T) -> bool {
        self.find(a) == self.find(b)
    }

    /// Group all seen elements by representative.
    pub fn groups(&mut self) -> Vec<Vec<T>> {
        let keys: Vec<T> = self.parent.keys().copied().collect();
        let mut by_root: FxHashMap<T, Vec<T>> = FxHashMap::default();
        for k in keys {
            let root = self.find(k);
            by_root.entry(root).or_default().push(k);
        }
        by_root.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        assert_eq!(uf.find(5), 5);
        assert!(!uf.connected(1, 2));
    }

    #[test]
    fn union_connects_transitively() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        assert!(uf.union(1, 2));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 3), "already connected");
        assert!(uf.connected(1, 3));
        assert!(!uf.connected(1, 4));
    }

    #[test]
    fn groups_partition_elements() {
        let mut uf: UnionFind<u32> = UnionFind::new();
        uf.union(1, 2);
        uf.union(3, 4);
        uf.find(5);
        let mut groups = uf.groups();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort();
        assert_eq!(groups, vec![vec![1, 2], vec![3, 4], vec![5]]);
    }
}
