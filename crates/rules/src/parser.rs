//! Text syntax for rules.
//!
//! ```text
//! # Appendix B's RULES program:
//! equals(X,Y) :- similar(X,Y,3).
//! equals(X,Y) :- similar(X,Y,2), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2).
//! equals(X,Y) :- similar(X,Y,1), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2),
//!                coauthor(X,C3), coauthor(Y,C4), equals(C3,C4),
//!                distinct_pairs(C1,C2,C3,C4).
//! ```
//!
//! Lines starting with `#` are comments. Variable names are arbitrary
//! identifiers; `X` and `Y` in the head bind the candidate pair. Any
//! predicate name other than `similar`, `equals`, `distinct`, and
//! `distinct_pairs` refers to a dataset relation.

use crate::ast::{Literal, Rule, Term};
use std::collections::HashMap;
use std::fmt;

/// Parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a rules program.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, ParseError> {
    // Join continuation lines: a rule ends at '.'.
    let mut rules = Vec::new();
    let mut buffer = String::new();
    let mut start_line = 1;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if buffer.is_empty() {
            start_line = i + 1;
        }
        buffer.push_str(line);
        buffer.push(' ');
        if line.ends_with('.') {
            rules.push(parse_rule(buffer.trim(), start_line, rules.len())?);
            buffer.clear();
        }
    }
    if !buffer.trim().is_empty() {
        return Err(ParseError {
            line: start_line,
            message: "unterminated rule (missing '.')".into(),
        });
    }
    Ok(rules)
}

fn parse_rule(text: &str, line: usize, index: usize) -> Result<Rule, ParseError> {
    let err = |message: String| ParseError { line, message };
    let text = text.trim_end_matches('.').trim();
    let (head, body) = text
        .split_once(":-")
        .ok_or_else(|| err("expected ':-'".into()))?;

    let head_atoms = parse_atom(head.trim(), line)?;
    if head_atoms.0 != "equals" || head_atoms.1.len() != 2 {
        return Err(err("head must be equals(X,Y)".into()));
    }

    let mut vars: HashMap<String, Term> = HashMap::new();
    vars.insert(head_atoms.1[0].clone(), Term::X);
    vars.insert(head_atoms.1[1].clone(), Term::Y);
    let var_of = |name: &str, vars: &mut HashMap<String, Term>| -> Result<Term, ParseError> {
        if let Some(&t) = vars.get(name) {
            return Ok(t);
        }
        let id = u8::try_from(vars.len()).map_err(|_| ParseError {
            line,
            message: "too many variables".into(),
        })?;
        let t = Term(id);
        vars.insert(name.to_owned(), t);
        Ok(t)
    };

    let mut literals = Vec::new();
    for atom_text in split_atoms(body.trim()) {
        let (pred, args) = parse_atom(&atom_text, line)?;
        let lit = match pred.as_str() {
            "similar" => {
                if args.len() != 3 {
                    return Err(err("similar/3 expected".into()));
                }
                let level: u8 = args[2]
                    .parse()
                    .map_err(|_| err(format!("bad level {:?}", args[2])))?;
                Literal::Similar {
                    a: var_of(&args[0], &mut vars)?,
                    b: var_of(&args[1], &mut vars)?,
                    level,
                }
            }
            "equals" => {
                if args.len() != 2 {
                    return Err(err("equals/2 expected".into()));
                }
                Literal::Equals {
                    a: var_of(&args[0], &mut vars)?,
                    b: var_of(&args[1], &mut vars)?,
                }
            }
            "distinct" => {
                if args.len() != 2 {
                    return Err(err("distinct/2 expected".into()));
                }
                Literal::Distinct {
                    a: var_of(&args[0], &mut vars)?,
                    b: var_of(&args[1], &mut vars)?,
                }
            }
            "distinct_pairs" => {
                if args.len() != 4 {
                    return Err(err("distinct_pairs/4 expected".into()));
                }
                Literal::DistinctPairs {
                    a: var_of(&args[0], &mut vars)?,
                    b: var_of(&args[1], &mut vars)?,
                    c: var_of(&args[2], &mut vars)?,
                    d: var_of(&args[3], &mut vars)?,
                }
            }
            rel => {
                if args.len() != 2 {
                    return Err(err(format!("relation {rel}/2 expected")));
                }
                Literal::Rel {
                    name: rel.to_owned(),
                    a: var_of(&args[0], &mut vars)?,
                    b: var_of(&args[1], &mut vars)?,
                }
            }
        };
        literals.push(lit);
    }

    let rule = Rule {
        name: format!("rule{}", index + 1),
        var_count: vars.len() as u8,
        body: literals,
    };
    rule.validate()
        .map_err(|m| ParseError { line, message: m })?;
    Ok(rule)
}

/// Split a body into `pred(arg, ...)` atoms at top-level commas.
fn split_atoms(body: &str) -> Vec<String> {
    let mut atoms = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in body.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => {
                if !current.trim().is_empty() {
                    atoms.push(current.trim().to_owned());
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        atoms.push(current.trim().to_owned());
    }
    atoms
}

fn parse_atom(text: &str, line: usize) -> Result<(String, Vec<String>), ParseError> {
    let err = |message: String| ParseError { line, message };
    let open = text
        .find('(')
        .ok_or_else(|| err(format!("expected predicate in {text:?}")))?;
    if !text.ends_with(')') {
        return Err(err(format!("unclosed atom {text:?}")));
    }
    let pred = text[..open].trim().to_owned();
    if pred.is_empty() || !pred.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(format!("bad predicate name {pred:?}")));
    }
    let args = text[open + 1..text.len() - 1]
        .split(',')
        .map(|a| a.trim().to_owned())
        .filter(|a| !a.is_empty())
        .collect();
    Ok((pred, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_similarity_rule() {
        let rules = parse_rules("equals(X,Y) :- similar(X,Y,3).").unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].var_count, 2);
        assert_eq!(
            rules[0].body,
            vec![Literal::Similar {
                a: Term::X,
                b: Term::Y,
                level: 3
            }]
        );
    }

    #[test]
    fn parses_relational_rule_with_existentials() {
        let rules = parse_rules(
            "equals(X,Y) :- similar(X,Y,2), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2).",
        )
        .unwrap();
        assert_eq!(rules[0].var_count, 4);
        assert!(matches!(
            &rules[0].body[1],
            Literal::Rel { name, a, b } if name == "coauthor" && *a == Term::X && *b == Term(2)
        ));
    }

    #[test]
    fn parses_multiline_rule_and_comments() {
        let text = "\
# Appendix B rule 3
equals(X,Y) :- similar(X,Y,1), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2),
               coauthor(X,C3), coauthor(Y,C4), equals(C3,C4),
               distinct_pairs(C1,C2,C3,C4).
";
        let rules = parse_rules(text).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].var_count, 6);
        assert!(matches!(
            rules[0].body.last(),
            Some(Literal::DistinctPairs { .. })
        ));
    }

    #[test]
    fn rejects_bad_head() {
        assert!(parse_rules("match(X,Y) :- similar(X,Y,3).").is_err());
        assert!(parse_rules("equals(X) :- similar(X,X,3).").is_err());
    }

    #[test]
    fn rejects_unterminated_rule() {
        let e = parse_rules("equals(X,Y) :- similar(X,Y,3)").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn rejects_unbound_relation_literal() {
        let e = parse_rules("equals(X,Y) :- coauthor(A,B), similar(X,Y,3).").unwrap_err();
        assert!(e.message.contains("no bound term"), "{e}");
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "equals(X,Y) :- similar(X,Y,3).\n\nequals(X,Y) :- similar(X,Y,9x).";
        let e = parse_rules(text).unwrap_err();
        assert_eq!(e.line, 3);
    }
}
