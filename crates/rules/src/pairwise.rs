//! Non-relational pairwise baseline (Appendix D's "conventional
//! approach"): match a pair on attribute similarity alone.
//!
//! Implements the Fellegi–Sunter decision in its discretized form: each
//! similarity level carries a log-odds weight; a pair matches when its
//! weight clears the threshold. With the discretized levels this reduces
//! to a level cut-off, so the type exposes both constructions. Used by
//! the ablation benches to quantify how much the *collective* matchers
//! gain over pairwise matching.

use em_core::{Evidence, Matcher, PairSet, SimLevel, View};

/// Pairwise attribute-only matcher.
#[derive(Debug, Clone, Copy)]
pub struct PairwiseMatcher {
    /// Minimum level at which a pair is declared a match.
    pub min_level: SimLevel,
}

impl PairwiseMatcher {
    /// Matcher accepting pairs at or above `min_level`.
    pub fn new(min_level: SimLevel) -> Self {
        Self { min_level }
    }

    /// Fellegi–Sunter construction: per-level log-odds weights and a
    /// decision threshold; returns the equivalent level cut-off matcher.
    /// Weights must be non-decreasing in the level (more similar ⇒ more
    /// likely a match).
    pub fn from_log_odds(level_weights: [f64; 4], threshold: f64) -> Self {
        let min_level = (1..4).find(|&l| level_weights[l] >= threshold).unwrap_or(4) as u8;
        Self {
            min_level: SimLevel(min_level),
        }
    }
}

impl Matcher for PairwiseMatcher {
    fn match_view(&self, view: &View<'_>, evidence: &Evidence) -> PairSet {
        let mut out: PairSet = view
            .candidate_pairs()
            .into_iter()
            .filter(|&(p, level)| level >= self.min_level && !evidence.negative.contains(p))
            .map(|(p, _)| p)
            .collect();
        for p in evidence.positive.iter() {
            if view.contains_pair(p) && !evidence.negative.contains(p) {
                out.insert(p);
            }
        }
        out
    }

    fn name(&self) -> &str {
        "pairwise"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::{Dataset, EntityId, Pair};

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..6 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(3));
        ds.set_similar(Pair::new(e(2), e(3)), SimLevel(2));
        ds.set_similar(Pair::new(e(4), e(5)), SimLevel(1));
        ds
    }

    #[test]
    fn level_threshold_filters() {
        let ds = dataset();
        let out = PairwiseMatcher::new(SimLevel(2)).match_view(&ds.full_view(), &Evidence::none());
        assert!(out.contains(Pair::new(e(0), e(1))));
        assert!(out.contains(Pair::new(e(2), e(3))));
        assert!(!out.contains(Pair::new(e(4), e(5))));
    }

    #[test]
    fn log_odds_construction() {
        // Weights −2, −1, +3 for levels 1..3 with threshold 0 ⇒ level 3.
        let m = PairwiseMatcher::from_log_odds([0.0, -2.0, -1.0, 3.0], 0.0);
        assert_eq!(m.min_level, SimLevel(3));
        // Threshold below all weights ⇒ everything matches.
        let m = PairwiseMatcher::from_log_odds([0.0, -2.0, -1.0, 3.0], -5.0);
        assert_eq!(m.min_level, SimLevel(1));
        // Threshold above all ⇒ nothing (level 4 is unreachable).
        let m = PairwiseMatcher::from_log_odds([0.0, -2.0, -1.0, 3.0], 10.0);
        assert_eq!(m.min_level, SimLevel(4));
    }

    #[test]
    fn evidence_handling() {
        let ds = dataset();
        let m = PairwiseMatcher::new(SimLevel(3));
        let pos: PairSet = [Pair::new(e(4), e(5))].into_iter().collect();
        let neg: PairSet = [Pair::new(e(0), e(1))].into_iter().collect();
        let out = m.match_view(&ds.full_view(), &Evidence::new(pos, neg));
        assert!(out.contains(Pair::new(e(4), e(5))), "positive echoed");
        assert!(!out.contains(Pair::new(e(0), e(1))), "negative blocks");
    }

    #[test]
    fn ignores_relations_entirely() {
        let mut ds = dataset();
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(2), e(0));
        ds.relations.add_tuple(co, e(3), e(1));
        let m = PairwiseMatcher::new(SimLevel(3));
        let out = m.match_view(&ds.full_view(), &Evidence::none());
        assert!(
            !out.contains(Pair::new(e(2), e(3))),
            "no relational boost in the pairwise baseline"
        );
    }
}
