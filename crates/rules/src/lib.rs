//! # em-rules — the declarative RULES matcher and pairwise baseline
//!
//! The paper's second black box (Appendix B/C) is a matcher in the style
//! of Dedupalog (Arasu, Ré, Suciu \[2\]): users write datalog-like rules
//! over `similar`, the dataset relations, and the derived `equals`
//! predicate; the monotone fragment (no negation, no transitivity
//! constraint — Proposition 5) is evaluated to a least fixpoint, with an
//! optional transitive closure applied at the end.
//!
//! * [`ast`] — rule representation (head `equals(X, Y)`, conjunctive
//!   bodies, distinctness builtins);
//! * [`parser`] — a small text syntax:
//!   `equals(X,Y) :- similar(X,Y,2), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2).`;
//! * [`engine`] — worklist-driven least-fixpoint evaluation over a view;
//! * [`matcher`] — [`RulesMatcher`], the Type-I black box (plus the
//!   paper's exact Appendix-B rule set as [`matcher::paper_rules`]);
//! * [`union_find`] — transitive closure support;
//! * [`pairwise`] — the non-relational Fellegi–Sunter-style baseline used
//!   by the survey ablation (Appendix D).

#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod matcher;
pub mod pairwise;
pub mod parser;
pub mod union_find;

pub use ast::{Literal, Rule, Term};
pub use matcher::{paper_rules, RulesMatcher};
pub use pairwise::PairwiseMatcher;
pub use parser::{parse_rules, ParseError};
pub use union_find::UnionFind;
