//! Least-fixpoint evaluation of a rule program over a view.
//!
//! The monotone fragment needs no stratification: starting from the
//! positive evidence, rules are applied until no rule derives a new
//! `equals` fact. Heads range over the view's candidate pairs (a pair
//! with no similarity level can never be derived — every Appendix-B rule
//! carries a `similar` literal, and restricting heads to candidate pairs
//! keeps the matcher's decision space identical to the MLN matcher's).
//!
//! Body evaluation is a left-to-right backtracking join: relation
//! literals with one bound side enumerate adjacency lists (restricted to
//! the view), everything else filters.

use crate::ast::{Literal, Rule, Term};
use em_core::hash::FxHashMap;
use em_core::{EntityId, Evidence, Pair, PairSet, RelationId, View};

/// Evaluate `rules` over `view` with `evidence`, returning the least
/// fixpoint of derived matches (positive evidence included, negative
/// evidence excluded and never derived).
pub fn evaluate(view: &View<'_>, rules: &[Rule], evidence: &Evidence) -> PairSet {
    let dataset = view.dataset();
    // Resolve relation names once.
    let mut rel_cache: FxHashMap<&str, Option<RelationId>> = FxHashMap::default();
    for rule in rules {
        for lit in &rule.body {
            if let Literal::Rel { name, .. } = lit {
                rel_cache
                    .entry(name.as_str())
                    .or_insert_with(|| dataset.relations.relation_id(name));
            }
        }
    }

    let candidates = view.candidate_pairs();
    let mut matched: PairSet = evidence
        .positive
        .iter()
        .filter(|p| view.contains_pair(*p) && !evidence.negative.contains(*p))
        .collect();

    // Naive fixpoint with a dirty flag; bodies are small and candidate
    // lists per neighborhood are short, so the simple loop is the right
    // trade-off (the RULES matcher is the paper's *fast linear* matcher).
    loop {
        let mut grew = false;
        for &(p, _) in &candidates {
            if matched.contains(p) || evidence.negative.contains(p) {
                continue;
            }
            if rules
                .iter()
                .any(|rule| derives(rule, p, view, &matched, &rel_cache))
            {
                matched.insert(p);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    matched
}

/// Whether `rule` derives `equals(p)` in either head orientation.
fn derives(
    rule: &Rule,
    p: Pair,
    view: &View<'_>,
    matched: &PairSet,
    rels: &FxHashMap<&str, Option<RelationId>>,
) -> bool {
    let mut bindings: Vec<Option<EntityId>> = vec![None; usize::from(rule.var_count)];
    for (x, y) in [(p.lo(), p.hi()), (p.hi(), p.lo())] {
        bindings.iter_mut().for_each(|b| *b = None);
        bindings[usize::from(Term::X.0)] = Some(x);
        bindings[usize::from(Term::Y.0)] = Some(y);
        if satisfy(&rule.body, 0, &mut bindings, view, matched, rels) {
            return true;
        }
    }
    false
}

fn satisfy(
    body: &[Literal],
    at: usize,
    bindings: &mut Vec<Option<EntityId>>,
    view: &View<'_>,
    matched: &PairSet,
    rels: &FxHashMap<&str, Option<RelationId>>,
) -> bool {
    let Some(lit) = body.get(at) else {
        return true;
    };
    let get = |t: Term, bindings: &[Option<EntityId>]| bindings[usize::from(t.0)];
    let dataset = view.dataset();
    match lit {
        Literal::Similar { a, b, level } => {
            let (Some(ea), Some(eb)) = (get(*a, bindings), get(*b, bindings)) else {
                return false;
            };
            if ea == eb {
                return false;
            }
            dataset.similarity(Pair::new(ea, eb)) == Some(em_core::SimLevel(*level))
                && satisfy(body, at + 1, bindings, view, matched, rels)
        }
        Literal::Equals { a, b } => {
            let (Some(ea), Some(eb)) = (get(*a, bindings), get(*b, bindings)) else {
                return false;
            };
            let holds = ea == eb || matched.contains(Pair::new(ea, eb));
            holds && satisfy(body, at + 1, bindings, view, matched, rels)
        }
        Literal::Distinct { a, b } => {
            let (Some(ea), Some(eb)) = (get(*a, bindings), get(*b, bindings)) else {
                return false;
            };
            ea != eb && satisfy(body, at + 1, bindings, view, matched, rels)
        }
        Literal::DistinctPairs { a, b, c, d } => {
            let (Some(ea), Some(eb), Some(ec), Some(ed)) = (
                get(*a, bindings),
                get(*b, bindings),
                get(*c, bindings),
                get(*d, bindings),
            ) else {
                return false;
            };
            let key = |x: EntityId, y: EntityId| (x.min(y), x.max(y));
            key(ea, eb) != key(ec, ed) && satisfy(body, at + 1, bindings, view, matched, rels)
        }
        Literal::Rel { name, a, b } => {
            let Some(rel) = rels.get(name.as_str()).copied().flatten() else {
                return false; // unknown relation: literal unsatisfiable
            };
            match (get(*a, bindings), get(*b, bindings)) {
                (Some(ea), Some(eb)) => {
                    dataset.relations.has_tuple(rel, ea, eb)
                        && satisfy(body, at + 1, bindings, view, matched, rels)
                }
                (Some(ea), None) => {
                    for &eb in dataset.relations.neighbors_out(rel, ea) {
                        if !view.contains(eb) {
                            continue;
                        }
                        bindings[usize::from(b.0)] = Some(eb);
                        if satisfy(body, at + 1, bindings, view, matched, rels) {
                            return true;
                        }
                    }
                    bindings[usize::from(b.0)] = None;
                    false
                }
                (None, Some(eb)) => {
                    for &ea in dataset.relations.neighbors_in(rel, eb) {
                        if !view.contains(ea) {
                            continue;
                        }
                        bindings[usize::from(a.0)] = Some(ea);
                        if satisfy(body, at + 1, bindings, view, matched, rels) {
                            return true;
                        }
                    }
                    bindings[usize::from(a.0)] = None;
                    false
                }
                (None, None) => false, // rejected by Rule::validate
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rules;
    use em_core::{Dataset, SimLevel};

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..8 {
            ds.entities.add_entity(ty);
        }
        let co = ds.relations.declare("coauthor", true);
        // (0,1) level-2 pair whose coauthors (2,3) are a level-3 pair.
        ds.relations.add_tuple(co, e(0), e(2));
        ds.relations.add_tuple(co, e(1), e(3));
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2));
        ds.set_similar(Pair::new(e(2), e(3)), SimLevel(3));
        // (4,5): level-1 pair with exactly one shared coauthor entity 6.
        ds.relations.add_tuple(co, e(4), e(6));
        ds.relations.add_tuple(co, e(5), e(6));
        ds.set_similar(Pair::new(e(4), e(5)), SimLevel(1));
        ds
    }

    fn rules() -> Vec<Rule> {
        parse_rules(
            "
equals(X,Y) :- similar(X,Y,3).
equals(X,Y) :- similar(X,Y,2), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2).
equals(X,Y) :- similar(X,Y,1), coauthor(X,C1), coauthor(Y,C2), equals(C1,C2),
               coauthor(X,C3), coauthor(Y,C4), equals(C3,C4),
               distinct_pairs(C1,C2,C3,C4).
",
        )
        .unwrap()
    }

    #[test]
    fn fixpoint_cascades_through_rules() {
        let ds = dataset();
        let out = evaluate(&ds.full_view(), &rules(), &Evidence::none());
        assert!(out.contains(Pair::new(e(2), e(3))), "rule 1 (level 3)");
        assert!(
            out.contains(Pair::new(e(0), e(1))),
            "rule 2 fires after rule 1's match"
        );
        assert!(
            !out.contains(Pair::new(e(4), e(5))),
            "rule 3 needs two distinct witnesses; only one exists"
        );
    }

    #[test]
    fn rule3_fires_with_two_distinct_witnesses() {
        let mut ds = dataset();
        let co = ds.relations.relation_id("coauthor").unwrap();
        // Add a second shared coauthor entity for (4,5).
        ds.relations.add_tuple(co, e(4), e(7));
        ds.relations.add_tuple(co, e(5), e(7));
        let out = evaluate(&ds.full_view(), &rules(), &Evidence::none());
        assert!(out.contains(Pair::new(e(4), e(5))));
    }

    #[test]
    fn view_restriction_blocks_out_of_view_witnesses() {
        let ds = dataset();
        // Without the coauthors 2 and 3 in view, rule 2 cannot fire.
        let view = ds.view([e(0), e(1)]);
        let out = evaluate(&view, &rules(), &Evidence::none());
        assert!(out.is_empty());
    }

    #[test]
    fn positive_evidence_seeds_derivations() {
        let ds = dataset();
        let view = ds.view([e(0), e(1), e(2), e(3)]);
        // Pretend (2,3) is known; derive (0,1) even without rule 1.
        let only_rule2 = &rules()[1..2];
        let ev = Evidence::positive([Pair::new(e(2), e(3))].into_iter().collect());
        let out = evaluate(&view, only_rule2, &ev);
        assert!(out.contains(Pair::new(e(0), e(1))));
        assert!(out.contains(Pair::new(e(2), e(3))), "evidence echoed");
    }

    #[test]
    fn negative_evidence_blocks_derivation_and_cascade() {
        let ds = dataset();
        let neg: PairSet = [Pair::new(e(2), e(3))].into_iter().collect();
        let out = evaluate(
            &ds.full_view(),
            &rules(),
            &Evidence::new(PairSet::new(), neg),
        );
        assert!(!out.contains(Pair::new(e(2), e(3))));
        assert!(!out.contains(Pair::new(e(0), e(1))), "cascade blocked");
    }

    #[test]
    fn unknown_relation_fails_gracefully() {
        let ds = dataset();
        let rules = parse_rules("equals(X,Y) :- cites(X,C), similar(X,Y,3).").unwrap();
        // `cites` is not declared in this dataset: no derivations, no panic.
        let out = evaluate(&ds.full_view(), &rules, &Evidence::none());
        assert!(out.is_empty());
    }
}
