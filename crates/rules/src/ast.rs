//! Rule representation for the Dedupalog* fragment.
//!
//! Every rule derives `equals(X, Y)` from a conjunctive body over:
//!
//! * `similar(X, Y, level)` — the head pair's discretized similarity;
//! * `rel(A, B)` — a dataset relation tuple (oriented for directed
//!   relations; either orientation for symmetric ones);
//! * `equals(A, B)` — a previously derived (or reflexive) match;
//! * `distinct(A, B)` / `distinct_pairs(A, B, C, D)` — built-in
//!   disequality constraints (rule 3 of Appendix B needs the witness
//!   *pairs* to differ).
//!
//! The fragment is monotone (Proposition 5): no negation over derived
//! predicates, so more evidence can only derive more matches.

use std::fmt;

/// A rule variable (small integer id; `X = 0`, `Y = 1` by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term(pub u8);

impl Term {
    /// The head's first variable.
    pub const X: Term = Term(0);
    /// The head's second variable.
    pub const Y: Term = Term(1);
}

/// One body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// `similar(a, b, level)` — the pair `(a, b)` has exactly this
    /// discretized similarity level.
    Similar {
        /// First endpoint.
        a: Term,
        /// Second endpoint.
        b: Term,
        /// Required exact level.
        level: u8,
    },
    /// `rel(a, b)` — a relation tuple. For symmetric relations either
    /// orientation satisfies it.
    Rel {
        /// Relation name (resolved against the dataset at evaluation).
        name: String,
        /// Tuple's first position.
        a: Term,
        /// Tuple's second position.
        b: Term,
    },
    /// `equals(a, b)` — already matched, or the same entity (reflexive).
    Equals {
        /// First endpoint.
        a: Term,
        /// Second endpoint.
        b: Term,
    },
    /// `distinct(a, b)` — bound to different entities.
    Distinct {
        /// First term.
        a: Term,
        /// Second term.
        b: Term,
    },
    /// `distinct_pairs(a, b, c, d)` — the unordered pair `{a, b}` differs
    /// from `{c, d}` (used to require two *different* witness matches).
    DistinctPairs {
        /// First pair, first endpoint.
        a: Term,
        /// First pair, second endpoint.
        b: Term,
        /// Second pair, first endpoint.
        c: Term,
        /// Second pair, second endpoint.
        d: Term,
    },
}

impl Literal {
    /// Terms mentioned by this literal.
    pub fn terms(&self) -> Vec<Term> {
        match self {
            Literal::Similar { a, b, .. }
            | Literal::Rel { a, b, .. }
            | Literal::Equals { a, b }
            | Literal::Distinct { a, b } => vec![*a, *b],
            Literal::DistinctPairs { a, b, c, d } => vec![*a, *b, *c, *d],
        }
    }
}

/// A complete rule: `equals(X, Y) :- body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Human-readable name (used in diagnostics).
    pub name: String,
    /// Conjunctive body; evaluated left to right, so every `Rel` literal
    /// must have at least one already-bound term when reached.
    pub body: Vec<Literal>,
    /// Number of variables (`X`, `Y` plus existentials).
    pub var_count: u8,
}

impl Rule {
    /// Validate the left-to-right evaluability of the body: `X`/`Y` are
    /// bound by the head; each `Rel` literal must see at least one bound
    /// term; `Similar`, `Equals`, `Distinct*` literals must see all terms
    /// bound (they are filters, not generators).
    pub fn validate(&self) -> Result<(), String> {
        let mut bound = vec![false; usize::from(self.var_count)];
        let mark = |t: Term, bound: &mut Vec<bool>| {
            if usize::from(t.0) >= bound.len() {
                return Err(format!(
                    "rule {}: variable v{} out of range",
                    self.name, t.0
                ));
            }
            bound[usize::from(t.0)] = true;
            Ok(())
        };
        mark(Term::X, &mut bound)?;
        mark(Term::Y, &mut bound)?;
        for lit in &self.body {
            let is_bound = |t: &Term| usize::from(t.0) < bound.len() && bound[usize::from(t.0)];
            match lit {
                Literal::Rel { a, b, name } => {
                    if !is_bound(a) && !is_bound(b) {
                        return Err(format!(
                            "rule {}: relation literal {name} has no bound term",
                            self.name
                        ));
                    }
                    mark(*a, &mut bound)?;
                    mark(*b, &mut bound)?;
                }
                other => {
                    for t in other.terms() {
                        if !is_bound(&t) {
                            return Err(format!(
                                "rule {}: filter literal uses unbound v{}",
                                self.name, t.0
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "equals(v0,v1) :- ")?;
        for (i, lit) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match lit {
                Literal::Similar { a, b, level } => {
                    write!(f, "similar(v{},v{},{level})", a.0, b.0)?
                }
                Literal::Rel { name, a, b } => write!(f, "{name}(v{},v{})", a.0, b.0)?,
                Literal::Equals { a, b } => write!(f, "equals(v{},v{})", a.0, b.0)?,
                Literal::Distinct { a, b } => write!(f, "distinct(v{},v{})", a.0, b.0)?,
                Literal::DistinctPairs { a, b, c, d } => {
                    write!(f, "distinct_pairs(v{},v{},v{},v{})", a.0, b.0, c.0, d.0)?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_well_ordered_body() {
        let rule = Rule {
            name: "r2".into(),
            var_count: 4,
            body: vec![
                Literal::Similar {
                    a: Term::X,
                    b: Term::Y,
                    level: 2,
                },
                Literal::Rel {
                    name: "coauthor".into(),
                    a: Term::X,
                    b: Term(2),
                },
                Literal::Rel {
                    name: "coauthor".into(),
                    a: Term::Y,
                    b: Term(3),
                },
                Literal::Equals {
                    a: Term(2),
                    b: Term(3),
                },
            ],
        };
        assert!(rule.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unbound_filter() {
        let rule = Rule {
            name: "bad".into(),
            var_count: 3,
            body: vec![Literal::Equals {
                a: Term(2),
                b: Term::Y,
            }],
        };
        let err = rule.validate().unwrap_err();
        assert!(err.contains("unbound"));
    }

    #[test]
    fn validate_rejects_floating_relation() {
        let rule = Rule {
            name: "bad".into(),
            var_count: 4,
            body: vec![Literal::Rel {
                name: "coauthor".into(),
                a: Term(2),
                b: Term(3),
            }],
        };
        assert!(rule.validate().is_err());
    }

    #[test]
    fn display_round_trips_structure() {
        let rule = Rule {
            name: "r1".into(),
            var_count: 2,
            body: vec![Literal::Similar {
                a: Term::X,
                b: Term::Y,
                level: 3,
            }],
        };
        assert_eq!(rule.to_string(), "equals(v0,v1) :- similar(v0,v1,3)");
    }
}
