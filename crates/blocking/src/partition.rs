//! Splitting oversized neighborhoods without losing tuples.
//!
//! The framework's cost model is `O(k² f(k) n)` — a single huge
//! neighborhood can dominate everything. A neighborhood can be split
//! *safely* (preserving totality) along the connected components of its
//! internal evidence graph: if two members share no path of candidate
//! pairs or relation tuples inside the neighborhood, no ground rule ever
//! connects them, so putting them in separate neighborhoods loses nothing.
//! Components that are themselves larger than the cap are kept intact
//! (splitting them would lose evidence); callers can tighten canopy
//! thresholds instead.

use em_core::{Cover, Dataset, EntityId};

/// Split every neighborhood larger than `max_size` into the connected
/// components of its internal evidence graph.
pub fn split_oversized(cover: &Cover, dataset: &Dataset, max_size: usize) -> Cover {
    let mut out: Vec<Vec<EntityId>> = Vec::with_capacity(cover.len());
    for id in cover.ids() {
        let members = cover.members(id);
        if members.len() <= max_size {
            out.push(members.to_vec());
            continue;
        }
        out.extend(components(dataset, members));
    }
    Cover::from_neighborhoods(out)
}

/// Connected components of the evidence graph induced on `members`
/// (edges: candidate pairs and relation tuples with both endpoints in
/// `members`).
fn components(dataset: &Dataset, members: &[EntityId]) -> Vec<Vec<EntityId>> {
    let index_of = |e: EntityId| members.binary_search(&e).ok();
    let n = members.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };

    for (i, &e) in members.iter().enumerate() {
        for &(other, _) in dataset.sim_neighbors(e) {
            if let Some(j) = index_of(other) {
                union(&mut parent, i, j);
            }
        }
        for rel in dataset.relations.ids() {
            for &other in dataset.relations.neighbors_out(rel, e) {
                if let Some(j) = index_of(other) {
                    union(&mut parent, i, j);
                }
            }
            for &other in dataset.relations.neighbors_in(rel, e) {
                if let Some(j) = index_of(other) {
                    union(&mut parent, i, j);
                }
            }
        }
    }

    let mut by_root: em_core::hash::FxHashMap<usize, Vec<EntityId>> =
        em_core::hash::FxHashMap::default();
    for (i, &member) in members.iter().enumerate() {
        let root = find(&mut parent, i);
        by_root.entry(root).or_default().push(member);
    }
    let mut comps: Vec<Vec<EntityId>> = by_root.into_values().collect();
    comps.sort_unstable();
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::dataset::SimLevel;
    use em_core::Pair;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("author_ref");
        for _ in 0..6 {
            ds.entities.add_entity(ty);
        }
        // Two islands: {0,1,2} chained by similar/coauthor; {3,4} similar;
        // {5} isolated.
        ds.set_similar(Pair::new(e(0), e(1)), SimLevel(2));
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(1), e(2));
        ds.set_similar(Pair::new(e(3), e(4)), SimLevel(1));
        ds
    }

    #[test]
    fn oversized_neighborhood_splits_into_components() {
        let ds = dataset();
        let big = Cover::from_neighborhoods(vec![vec![e(0), e(1), e(2), e(3), e(4), e(5)]]);
        let split = split_oversized(&big, &ds, 4);
        assert_eq!(split.len(), 3);
        assert!(split.validate_total(&ds).is_ok());
        let sizes: Vec<usize> = split.ids().map(|id| split.members(id).len()).collect();
        assert_eq!(sizes, vec![3, 2, 1]);
    }

    #[test]
    fn small_neighborhoods_pass_through() {
        let ds = dataset();
        let cover = Cover::from_neighborhoods(vec![vec![e(0), e(1)], vec![e(3), e(4)]]);
        let split = split_oversized(&cover, &ds, 10);
        assert_eq!(split.len(), 2);
        assert_eq!(split.members(em_core::NeighborhoodId(0)), &[e(0), e(1)]);
    }

    #[test]
    fn connected_component_larger_than_cap_is_kept() {
        let ds = dataset();
        let big = Cover::from_neighborhoods(vec![vec![e(0), e(1), e(2)]]);
        // Cap of 1 cannot be honored without losing tuples; keep intact.
        let split = split_oversized(&big, &ds, 1);
        assert_eq!(split.len(), 1);
        assert_eq!(split.members(em_core::NeighborhoodId(0)).len(), 3);
    }
}
