//! Canopy clustering (McCallum, Nigam, Ungar — KDD 2000).
//!
//! Canopies group points with a *cheap* distance so an expensive algorithm
//! only runs within groups. The algorithm: repeatedly pick a remaining
//! point as a canopy *center*; every point within the **loose** threshold
//! joins the canopy; every point within the **tight** threshold is removed
//! from the pool of future centers. Because the loose threshold admits
//! points that remain center-eligible, canopies *overlap* — which is what
//! guarantees (for well-separated thresholds) that truly similar pairs
//! co-occur in at least one canopy, i.e. the canopies are a total cover of
//! the `Similar` relation.
//!
//! This implementation uses the n-gram Jaccard estimate from the inverted
//! index as the cheap similarity, and picks centers in ascending id order
//! so runs are deterministic.

use crate::inverted_index::InvertedIndex;
use em_core::EntityId;

/// Canopy parameters.
#[derive(Debug, Clone, Copy)]
pub struct CanopyParams {
    /// Character n-gram size for the cheap similarity.
    pub ngram: usize,
    /// Loose similarity: candidates at or above it join the canopy.
    pub loose: f64,
    /// Tight similarity: candidates at or above it stop being centers.
    /// Must be ≥ `loose`.
    pub tight: f64,
}

impl Default for CanopyParams {
    fn default() -> Self {
        Self {
            ngram: 3,
            loose: 0.35,
            tight: 0.65,
        }
    }
}

/// Run canopy clustering over `(entity, key string)` points.
///
/// Returns canopies as entity-id lists. Every input entity appears in at
/// least one canopy (a center always joins its own canopy).
///
/// # Panics
/// Panics if `tight < loose` (the canopy invariants need
/// `loose ≤ tight`).
pub fn canopies(points: &[(EntityId, String)], params: &CanopyParams) -> Vec<Vec<EntityId>> {
    assert!(
        params.tight >= params.loose,
        "canopy tight threshold must be ≥ loose threshold"
    );
    let docs: Vec<String> = points.iter().map(|(_, s)| s.clone()).collect();
    let index = InvertedIndex::build(&docs, params.ngram);

    let mut center_eligible = vec![true; points.len()];
    let mut out: Vec<Vec<EntityId>> = Vec::new();
    for center in 0..points.len() {
        if !center_eligible[center] {
            continue;
        }
        center_eligible[center] = false;
        let mut members = vec![points[center].0];
        for (doc, sim) in index.candidates_above(&points[center].1, params.loose) {
            let doc_idx = doc as usize;
            if doc_idx == center {
                continue;
            }
            members.push(points[doc_idx].0);
            if sim >= params.tight {
                center_eligible[doc_idx] = false;
            }
        }
        out.push(members);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn points(names: &[&str]) -> Vec<(EntityId, String)> {
        names
            .iter()
            .enumerate()
            .map(|(i, s)| (e(i as u32), (*s).to_owned()))
            .collect()
    }

    #[test]
    fn every_entity_is_covered() {
        let pts = points(&["john smith", "jon smith", "jane doe", "zzz qqq"]);
        let cs = canopies(&pts, &CanopyParams::default());
        let mut covered = vec![false; pts.len()];
        for c in &cs {
            for m in c {
                covered[m.0 as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "canopies must cover everything");
    }

    #[test]
    fn near_duplicates_share_a_canopy() {
        let pts = points(&["john smith", "john smith", "jane doe"]);
        let cs = canopies(&pts, &CanopyParams::default());
        assert!(
            cs.iter()
                .any(|c| c.contains(&e(0)) && c.contains(&e(1))),
            "duplicates must co-occur: {cs:?}"
        );
        // An exact duplicate of a previous center cannot seed its own
        // canopy (it was removed by the tight threshold).
        let seeded_by_duplicate = cs
            .iter()
            .filter(|c| c[0] == e(1))
            .count();
        assert_eq!(seeded_by_duplicate, 0);
    }

    #[test]
    fn dissimilar_names_do_not_mix() {
        let pts = points(&["john smith", "minos garofalakis"]);
        let cs = canopies(&pts, &CanopyParams::default());
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], vec![e(0)]);
        assert_eq!(cs[1], vec![e(1)]);
    }

    #[test]
    fn loose_threshold_creates_overlap() {
        // b is close to both a and c, which are far from each other: with
        // a loose-but-not-tight band, b joins a's canopy yet still seeds
        // (or joins) another canopy with c.
        let pts = points(&["aaaa bbbb", "aaaa bbbc", "aaab bbcc"]);
        let params = CanopyParams {
            ngram: 2,
            loose: 0.30,
            tight: 0.95,
        };
        let cs = canopies(&pts, &params);
        let containing_b = cs.iter().filter(|c| c.contains(&e(1))).count();
        assert!(containing_b >= 2, "loose members overlap: {cs:?}");
    }

    #[test]
    #[should_panic(expected = "tight threshold")]
    fn inverted_thresholds_panic() {
        let pts = points(&["x"]);
        let params = CanopyParams {
            ngram: 2,
            loose: 0.9,
            tight: 0.1,
        };
        let _ = canopies(&pts, &params);
    }

    #[test]
    fn deterministic_across_runs() {
        let pts = points(&["john smith", "jon smith", "j smith", "jane doe", "j doe"]);
        let a = canopies(&pts, &CanopyParams::default());
        let b = canopies(&pts, &CanopyParams::default());
        assert_eq!(a, b);
    }
}
