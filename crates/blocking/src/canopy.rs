//! Canopy clustering (McCallum, Nigam, Ungar — KDD 2000).
//!
//! Canopies group points with a *cheap* distance so an expensive algorithm
//! only runs within groups. The algorithm: repeatedly pick a remaining
//! point as a canopy *center*; every point within the **loose** threshold
//! joins the canopy; every point within the **tight** threshold is removed
//! from the pool of future centers. Because the loose threshold admits
//! points that remain center-eligible, canopies *overlap* — which is what
//! guarantees (for well-separated thresholds) that truly similar pairs
//! co-occur in at least one canopy, i.e. the canopies are a total cover of
//! the `Similar` relation.
//!
//! This implementation uses the n-gram Jaccard estimate from the inverted
//! index as the cheap similarity, and picks centers in ascending id order
//! so runs are deterministic.

use crate::inverted_index::InvertedIndex;
use em_core::hash::{FxHashMap, FxHashSet};
use em_core::EntityId;
use em_similarity::FeatureCache;

/// Canopy parameters.
#[derive(Debug, Clone, Copy)]
pub struct CanopyParams {
    /// Character n-gram size for the cheap similarity.
    pub ngram: usize,
    /// Loose similarity: candidates at or above it join the canopy.
    pub loose: f64,
    /// Tight similarity: candidates at or above it stop being centers.
    /// Must be ≥ `loose`.
    pub tight: f64,
}

impl Default for CanopyParams {
    fn default() -> Self {
        Self {
            ngram: 3,
            loose: 0.35,
            tight: 0.65,
        }
    }
}

/// Run canopy clustering over `(entity, key string)` points.
///
/// Returns canopies as entity-id lists. Every input entity appears in at
/// least one canopy (a center always joins its own canopy).
///
/// # Panics
/// Panics if `tight < loose` (the canopy invariants need
/// `loose ≤ tight`).
pub fn canopies(points: &[(EntityId, String)], params: &CanopyParams) -> Vec<Vec<EntityId>> {
    let docs: Vec<String> = points.iter().map(|(_, s)| s.clone()).collect();
    let index = InvertedIndex::build(&docs, params.ngram);
    let entities: Vec<EntityId> = points.iter().map(|&(e, _)| e).collect();
    let queries: Vec<Query<'_>> = points.iter().map(|(_, s)| Query::Text(s)).collect();
    run_canopies(&entities, &queries, &index, params)
}

/// Canopy clustering over entities whose n-gram features were already
/// extracted into `cache` — the zero-recompute path: the index is built
/// straight from the interned gram-id sets and every query is a posting
/// merge over those same ids; no string is tokenized or hashed.
///
/// Entities without cached features form singleton canopies.
///
/// # Panics
/// Panics if `tight < loose`.
pub fn canopies_cached(
    points: &[EntityId],
    cache: &FeatureCache,
    params: &CanopyParams,
) -> Vec<Vec<EntityId>> {
    static EMPTY: [u32; 0] = [];
    let sets: Vec<&[u32]> = points
        .iter()
        .map(|&e| cache.get(e).map_or(&EMPTY[..], |f| f.grams.as_slice()))
        .collect();
    let index =
        InvertedIndex::from_gram_ids(&sets, cache.gram_interner().len(), cache.config().ngram);
    let queries: Vec<Query<'_>> = sets.into_iter().map(Query::GramIds).collect();
    run_canopies(points, &queries, &index, params)
}

/// A canopy query: either a raw string or a pre-interned gram-id set.
enum Query<'a> {
    Text(&'a str),
    GramIds(&'a [u32]),
}

/// One remembered canopy: its members in emission order, each flagged
/// with whether it fell inside the **tight** threshold (and therefore
/// removed center eligibility downstream).
#[derive(Debug, Clone, PartialEq, Eq)]
struct StoredCanopy {
    members: Vec<(EntityId, bool)>,
}

/// Cross-pass memo of one canopy clustering, keyed by center entity id,
/// enabling [`canopies_cached_incremental`]: on the next pass, centers
/// whose candidate set provably did not change **replay** their stored
/// canopy (members *and* tight-eligibility effects) instead of querying
/// the inverted index.
///
/// The memo stores entity ids, not positions, so it survives the
/// position shifts that retraction causes in the points list.
#[derive(Debug, Clone, Default)]
pub struct CanopyMemo {
    params: Option<CanopyParams>,
    canopies: FxHashMap<EntityId, StoredCanopy>,
}

impl CanopyMemo {
    /// An empty memo (the first pass computes everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of remembered canopies.
    pub fn len(&self) -> usize {
        self.canopies.len()
    }

    /// Whether the memo holds nothing.
    pub fn is_empty(&self) -> bool {
        self.canopies.is_empty()
    }

    /// Forget everything (the next pass recomputes in full).
    pub fn clear(&mut self) {
        self.params = None;
        self.canopies.clear();
    }

    /// The member entity ids of the remembered canopy centered at `center`.
    fn members_of(&self, center: EntityId) -> Option<&StoredCanopy> {
        self.canopies.get(&center)
    }

    /// The parameters the memo was recorded under (`None` for an empty
    /// or cleared memo).
    pub fn params(&self) -> Option<CanopyParams> {
        self.params
    }

    /// Visit every remembered canopy — its center and its members in
    /// emission order, each flagged with tight-threshold eligibility —
    /// in arbitrary order. The durable-session encoder walks this;
    /// consumers needing determinism must sort by center.
    pub fn for_each_canopy(&self, mut visit: impl FnMut(EntityId, &[(EntityId, bool)])) {
        for (&center, stored) in &self.canopies {
            visit(center, &stored.members);
        }
    }

    /// Reassemble a memo from previously walked parts — the decode half
    /// of [`CanopyMemo::params`] / [`CanopyMemo::for_each_canopy`].
    pub fn from_parts(
        params: Option<CanopyParams>,
        canopies: impl IntoIterator<Item = (EntityId, Vec<(EntityId, bool)>)>,
    ) -> Self {
        Self {
            params,
            canopies: canopies
                .into_iter()
                .map(|(center, members)| (center, StoredCanopy { members }))
                .collect(),
        }
    }
}

/// What one incremental canopy pass did, beyond the canopies themselves.
#[derive(Debug, Clone, Default)]
pub struct CanopyDelta {
    /// Centers whose stored canopy was replayed without an index query.
    pub replayed: u64,
    /// Centers that queried the index (dirty, new, or newly eligible).
    pub recomputed: u64,
    /// Centers whose canopy **changed** relative to the previous memo:
    /// recomputed centers with a different member/tight list, centers
    /// that stopped being centers, and brand-new centers. The union of
    /// their old and new member lists bounds every pair whose
    /// co-location can have changed — the blocking pipeline's
    /// suspect-pair set.
    pub changed: Vec<ChangedCanopy>,
}

/// Old and new membership of one changed canopy (either side may be
/// empty when the canopy appeared or disappeared).
#[derive(Debug, Clone)]
pub struct ChangedCanopy {
    /// The center entity.
    pub center: EntityId,
    /// Members before this pass (empty for a new center).
    pub old_members: Vec<EntityId>,
    /// Members after this pass (empty for a vanished center).
    pub new_members: Vec<EntityId>,
}

/// [`canopies_cached`] with cross-pass replay: `memo` remembers the
/// previous pass's canopies and `delta_grams` holds the interned
/// gram-id set of every point the delta added or removed (for removed
/// points, captured before their features were dropped; ids must come
/// from `cache`'s own vocabulary).
///
/// A surviving center's candidate set changes only if some delta point
/// is within the **loose** threshold of it — Jaccard is pairwise, so
/// adding or removing *other* points never changes a center↔member
/// similarity. The dirty set is therefore computed exactly: one index
/// query per delta gram set marks every point at `loose`-similarity or
/// above; everything else **replays** its remembered canopy (members
/// *and* tight-threshold eligibility removals) without touching the
/// index.
///
/// **Byte-identical** to running [`canopies_cached`] from scratch on
/// the same points: dirty centers, new points, and points whose
/// eligibility cascaded open query the freshly built index, exactly as
/// the full pass would. The memo is replaced with this pass's canopies.
///
/// # Panics
/// Panics if `tight < loose`, or if `loose <= 0` (a non-positive loose
/// threshold admits gram-disjoint members, breaking the dirty-set
/// argument; the full pass has no such restriction).
pub fn canopies_cached_incremental(
    points: &[EntityId],
    cache: &FeatureCache,
    params: &CanopyParams,
    memo: &mut CanopyMemo,
    delta_grams: &[Vec<u32>],
) -> (Vec<Vec<EntityId>>, CanopyDelta) {
    assert!(
        params.loose > 0.0,
        "incremental canopies need a positive loose threshold"
    );
    assert!(
        params.tight >= params.loose,
        "canopy tight threshold must be ≥ loose threshold"
    );
    // A memo recorded under different parameters cannot replay.
    if memo.params.is_some_and(|p| {
        p.ngram != params.ngram || p.loose != params.loose || p.tight != params.tight
    }) {
        memo.clear();
    }

    static EMPTY: [u32; 0] = [];
    let sets: Vec<&[u32]> = points
        .iter()
        .map(|&e| cache.get(e).map_or(&EMPTY[..], |f| f.grams.as_slice()))
        .collect();
    let index =
        InvertedIndex::from_gram_ids(&sets, cache.gram_interner().len(), cache.config().ngram);
    let position: FxHashMap<EntityId, usize> =
        points.iter().enumerate().map(|(i, &e)| (e, i)).collect();

    // Dirty = every surviving point within the loose threshold of a
    // delta point (its canopy candidate set gained or lost a member).
    let mut dirty: FxHashSet<EntityId> = FxHashSet::default();
    for grams in delta_grams {
        if grams.is_empty() {
            continue;
        }
        for (doc, _) in index.candidates_above_ids(grams, params.loose) {
            dirty.insert(points[doc as usize]);
        }
    }

    let mut center_eligible = vec![true; points.len()];
    let mut out: Vec<Vec<EntityId>> = Vec::new();
    let mut next_memo: FxHashMap<EntityId, StoredCanopy> = FxHashMap::default();
    let mut delta = CanopyDelta::default();
    for center in 0..points.len() {
        if !center_eligible[center] {
            continue;
        }
        center_eligible[center] = false;
        let entity = points[center];
        let stored = (!dirty.contains(&entity))
            .then(|| memo.members_of(entity))
            .flatten();
        let members: Vec<(EntityId, bool)> = match stored {
            Some(canopy) => {
                delta.replayed += 1;
                canopy.members.clone()
            }
            None => {
                delta.recomputed += 1;
                let mut members = vec![(entity, true)];
                for (doc, sim) in index.candidates_above_ids(sets[center], params.loose) {
                    let doc_idx = doc as usize;
                    if doc_idx == center {
                        continue;
                    }
                    members.push((points[doc_idx], sim >= params.tight));
                }
                members
            }
        };
        for &(member, tight) in &members {
            if tight && member != entity {
                center_eligible[position[&member]] = false;
            }
        }
        out.push(members.iter().map(|&(e, _)| e).collect());
        next_memo.insert(entity, StoredCanopy { members });
    }

    // Diff the memos: canopies that changed shape, appeared, or vanished.
    for (center, stored) in &memo.canopies {
        match next_memo.get(center) {
            Some(new) if new == stored => {}
            other => delta.changed.push(ChangedCanopy {
                center: *center,
                old_members: stored.members.iter().map(|&(e, _)| e).collect(),
                new_members: other
                    .map(|c| c.members.iter().map(|&(e, _)| e).collect())
                    .unwrap_or_default(),
            }),
        }
    }
    for (center, new) in &next_memo {
        if !memo.canopies.contains_key(center) {
            delta.changed.push(ChangedCanopy {
                center: *center,
                old_members: Vec::new(),
                new_members: new.members.iter().map(|&(e, _)| e).collect(),
            });
        }
    }
    delta.changed.sort_by_key(|c| c.center);

    memo.params = Some(*params);
    memo.canopies = next_memo;
    (out, delta)
}

fn run_canopies(
    entities: &[EntityId],
    queries: &[Query<'_>],
    index: &InvertedIndex,
    params: &CanopyParams,
) -> Vec<Vec<EntityId>> {
    assert!(
        params.tight >= params.loose,
        "canopy tight threshold must be ≥ loose threshold"
    );
    let mut center_eligible = vec![true; entities.len()];
    let mut out: Vec<Vec<EntityId>> = Vec::new();
    for center in 0..entities.len() {
        if !center_eligible[center] {
            continue;
        }
        center_eligible[center] = false;
        let mut members = vec![entities[center]];
        let candidates = match &queries[center] {
            Query::Text(s) => index.candidates_above(s, params.loose),
            Query::GramIds(ids) => index.candidates_above_ids(ids, params.loose),
        };
        for (doc, sim) in candidates {
            let doc_idx = doc as usize;
            if doc_idx == center {
                continue;
            }
            members.push(entities[doc_idx]);
            if sim >= params.tight {
                center_eligible[doc_idx] = false;
            }
        }
        out.push(members);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn points(names: &[&str]) -> Vec<(EntityId, String)> {
        names
            .iter()
            .enumerate()
            .map(|(i, s)| (e(i as u32), (*s).to_owned()))
            .collect()
    }

    #[test]
    fn every_entity_is_covered() {
        let pts = points(&["john smith", "jon smith", "jane doe", "zzz qqq"]);
        let cs = canopies(&pts, &CanopyParams::default());
        let mut covered = vec![false; pts.len()];
        for c in &cs {
            for m in c {
                covered[m.0 as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "canopies must cover everything");
    }

    #[test]
    fn near_duplicates_share_a_canopy() {
        let pts = points(&["john smith", "john smith", "jane doe"]);
        let cs = canopies(&pts, &CanopyParams::default());
        assert!(
            cs.iter().any(|c| c.contains(&e(0)) && c.contains(&e(1))),
            "duplicates must co-occur: {cs:?}"
        );
        // An exact duplicate of a previous center cannot seed its own
        // canopy (it was removed by the tight threshold).
        let seeded_by_duplicate = cs.iter().filter(|c| c[0] == e(1)).count();
        assert_eq!(seeded_by_duplicate, 0);
    }

    #[test]
    fn dissimilar_names_do_not_mix() {
        let pts = points(&["john smith", "minos garofalakis"]);
        let cs = canopies(&pts, &CanopyParams::default());
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], vec![e(0)]);
        assert_eq!(cs[1], vec![e(1)]);
    }

    #[test]
    fn loose_threshold_creates_overlap() {
        // b is close to both a and c, which are far from each other: with
        // a loose-but-not-tight band, b joins a's canopy yet still seeds
        // (or joins) another canopy with c.
        let pts = points(&["aaaa bbbb", "aaaa bbbc", "aaab bbcc"]);
        let params = CanopyParams {
            ngram: 2,
            loose: 0.30,
            tight: 0.95,
        };
        let cs = canopies(&pts, &params);
        let containing_b = cs.iter().filter(|c| c.contains(&e(1))).count();
        assert!(containing_b >= 2, "loose members overlap: {cs:?}");
    }

    #[test]
    #[should_panic(expected = "tight threshold")]
    fn inverted_thresholds_panic() {
        let pts = points(&["x"]);
        let params = CanopyParams {
            ngram: 2,
            loose: 0.9,
            tight: 0.1,
        };
        let _ = canopies(&pts, &params);
    }

    #[test]
    fn cached_path_matches_string_path() {
        use em_similarity::FeatureConfig;
        let pts = points(&["john smith", "jon smith", "j smith", "jane doe", "j doe"]);
        for params in [
            CanopyParams::default(),
            CanopyParams {
                ngram: 2,
                loose: 0.3,
                tight: 0.9,
            },
        ] {
            let cache = FeatureCache::from_points(
                &pts,
                0,
                FeatureConfig {
                    ngram: params.ngram,
                },
            );
            let ids: Vec<EntityId> = pts.iter().map(|&(e, _)| e).collect();
            assert_eq!(
                canopies(&pts, &params),
                canopies_cached(&ids, &cache, &params),
                "ngram={}",
                params.ngram
            );
        }
    }

    #[test]
    fn cached_path_gives_featureless_entities_singletons() {
        use em_similarity::FeatureConfig;
        let pts = points(&["john smith", "jon smith"]);
        let cache = FeatureCache::from_points(&pts, 0, FeatureConfig::default());
        // e2 has no cached features.
        let ids = vec![e(0), e(1), e(2)];
        let cs = canopies_cached(&ids, &cache, &CanopyParams::default());
        assert!(cs.iter().any(|c| c == &vec![e(2)]));
    }

    /// Deterministic pseudo-random walk of add/remove steps; after each
    /// step the incremental pass must equal the from-scratch pass.
    #[test]
    fn incremental_canopies_match_full_pass_under_churn() {
        use em_similarity::FeatureConfig;
        let names = [
            "john smith",
            "jon smith",
            "j smith",
            "jane doe",
            "j doe",
            "john smithe",
            "jane smith",
            "minos garofalakis",
            "m garofalakis",
            "vibhor rastogi",
            "v rastogi",
            "nilesh dalvi",
        ];
        let all: Vec<(EntityId, String)> = names
            .iter()
            .enumerate()
            .map(|(i, s)| (e(i as u32), (*s).to_owned()))
            .collect();
        for params in [
            CanopyParams::default(),
            CanopyParams {
                ngram: 2,
                loose: 0.3,
                tight: 0.9,
            },
        ] {
            // One cache over every entity (the canopy pass only reads the
            // points it is given; a session's cache is append-only the
            // same way).
            let cache = FeatureCache::from_points(
                &all,
                all.len(),
                FeatureConfig {
                    ngram: params.ngram,
                },
            );
            let mut live: Vec<EntityId> = (0..6).map(e).collect();
            let mut memo = CanopyMemo::new();
            // Seed pass.
            let (first, delta) =
                canopies_cached_incremental(&live, &cache, &params, &mut memo, &[]);
            assert_eq!(first, canopies_cached(&live, &cache, &params));
            assert_eq!(delta.replayed, 0, "cold memo replays nothing");

            // A deterministic interleaving of adds and removes.
            let mut rng = 0x9E3779B97F4A7C15u64;
            let mut next_add = 6usize;
            for step in 0..10 {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mut delta_grams: Vec<Vec<u32>> = Vec::new();
                if step % 2 == 0 && next_add < all.len() {
                    let (id, _) = &all[next_add];
                    live.push(*id);
                    live.sort_unstable();
                    next_add += 1;
                    delta_grams.push(cache.get(*id).unwrap().grams.clone());
                } else if live.len() > 2 {
                    // Remove a pseudo-random live entity.
                    let victim = live[(rng % live.len() as u64) as usize];
                    live.retain(|&l| l != victim);
                    delta_grams.push(cache.get(victim).unwrap().grams.clone());
                }
                let (incr, _) =
                    canopies_cached_incremental(&live, &cache, &params, &mut memo, &delta_grams);
                let full = canopies_cached(&live, &cache, &params);
                assert_eq!(incr, full, "step {step} params {params:?}");
            }
        }
    }

    #[test]
    fn incremental_replays_untouched_canopies() {
        use em_similarity::FeatureConfig;
        let pts = points(&["john smith", "jon smith", "minos garofalakis", "zzz qqq"]);
        let cache = FeatureCache::from_points(&pts, pts.len(), FeatureConfig::default());
        let ids: Vec<EntityId> = pts.iter().map(|&(en, _)| en).collect();
        let params = CanopyParams::default();
        let mut memo = CanopyMemo::new();
        let (first, _) = canopies_cached_incremental(&ids, &cache, &params, &mut memo, &[]);
        // No change at all: everything replays.
        let (second, delta) = canopies_cached_incremental(&ids, &cache, &params, &mut memo, &[]);
        assert_eq!(first, second);
        assert_eq!(delta.recomputed, 0);
        assert_eq!(delta.replayed, first.len() as u64);
        assert!(delta.changed.is_empty());
        // A delta gram set similar only to the disjoint e3 recomputes
        // exactly its canopy; everything else still replays.
        let gram_footprint = cache.get(e(3)).unwrap().grams.clone();
        let (third, delta) =
            canopies_cached_incremental(&ids, &cache, &params, &mut memo, &[gram_footprint]);
        assert_eq!(first, third);
        assert_eq!(delta.recomputed, 1);
        assert!(delta.changed.is_empty(), "same members → not changed");
    }

    #[test]
    fn changed_canopies_report_old_and_new_members() {
        use em_similarity::FeatureConfig;
        let params = CanopyParams::default();
        let all = points(&["john smith", "jon smith", "jane doe"]);
        let cache = FeatureCache::from_points(&all, all.len(), FeatureConfig::default());
        let mut memo = CanopyMemo::new();
        let ids: Vec<EntityId> = all.iter().map(|&(en, _)| en).collect();
        let (_, _) = canopies_cached_incremental(&ids, &cache, &params, &mut memo, &[]);
        // Remove e1 (a member of e0's canopy): e0 falls within loose of
        // the removed grams → dirty, its canopy shrinks, and e1's own
        // canopy (if any) vanishes.
        let live = vec![e(0), e(2)];
        let removed = cache.get(e(1)).unwrap().grams.clone();
        let (canopies, delta) =
            canopies_cached_incremental(&live, &cache, &params, &mut memo, &[removed]);
        assert_eq!(canopies, canopies_cached(&live, &cache, &params));
        let changed_centers: Vec<EntityId> = delta.changed.iter().map(|c| c.center).collect();
        assert!(changed_centers.contains(&e(0)), "{changed_centers:?}");
        let c0 = delta.changed.iter().find(|c| c.center == e(0)).unwrap();
        assert!(c0.old_members.contains(&e(1)));
        assert!(!c0.new_members.contains(&e(1)));
    }

    #[test]
    #[should_panic(expected = "positive loose threshold")]
    fn incremental_rejects_non_positive_loose() {
        use em_similarity::FeatureConfig;
        let pts = points(&["x y"]);
        let cache = FeatureCache::from_points(&pts, 1, FeatureConfig::default());
        let params = CanopyParams {
            ngram: 3,
            loose: 0.0,
            tight: 0.5,
        };
        let mut memo = CanopyMemo::new();
        let _ = canopies_cached_incremental(&[e(0)], &cache, &params, &mut memo, &[]);
    }

    #[test]
    fn deterministic_across_runs() {
        let pts = points(&["john smith", "jon smith", "j smith", "jane doe", "j doe"]);
        let a = canopies(&pts, &CanopyParams::default());
        let b = canopies(&pts, &CanopyParams::default());
        assert_eq!(a, b);
    }
}
