//! Canopy clustering (McCallum, Nigam, Ungar — KDD 2000).
//!
//! Canopies group points with a *cheap* distance so an expensive algorithm
//! only runs within groups. The algorithm: repeatedly pick a remaining
//! point as a canopy *center*; every point within the **loose** threshold
//! joins the canopy; every point within the **tight** threshold is removed
//! from the pool of future centers. Because the loose threshold admits
//! points that remain center-eligible, canopies *overlap* — which is what
//! guarantees (for well-separated thresholds) that truly similar pairs
//! co-occur in at least one canopy, i.e. the canopies are a total cover of
//! the `Similar` relation.
//!
//! This implementation uses the n-gram Jaccard estimate from the inverted
//! index as the cheap similarity, and picks centers in ascending id order
//! so runs are deterministic.

use crate::inverted_index::InvertedIndex;
use em_core::EntityId;
use em_similarity::FeatureCache;

/// Canopy parameters.
#[derive(Debug, Clone, Copy)]
pub struct CanopyParams {
    /// Character n-gram size for the cheap similarity.
    pub ngram: usize,
    /// Loose similarity: candidates at or above it join the canopy.
    pub loose: f64,
    /// Tight similarity: candidates at or above it stop being centers.
    /// Must be ≥ `loose`.
    pub tight: f64,
}

impl Default for CanopyParams {
    fn default() -> Self {
        Self {
            ngram: 3,
            loose: 0.35,
            tight: 0.65,
        }
    }
}

/// Run canopy clustering over `(entity, key string)` points.
///
/// Returns canopies as entity-id lists. Every input entity appears in at
/// least one canopy (a center always joins its own canopy).
///
/// # Panics
/// Panics if `tight < loose` (the canopy invariants need
/// `loose ≤ tight`).
pub fn canopies(points: &[(EntityId, String)], params: &CanopyParams) -> Vec<Vec<EntityId>> {
    let docs: Vec<String> = points.iter().map(|(_, s)| s.clone()).collect();
    let index = InvertedIndex::build(&docs, params.ngram);
    let entities: Vec<EntityId> = points.iter().map(|&(e, _)| e).collect();
    let queries: Vec<Query<'_>> = points.iter().map(|(_, s)| Query::Text(s)).collect();
    run_canopies(&entities, &queries, &index, params)
}

/// Canopy clustering over entities whose n-gram features were already
/// extracted into `cache` — the zero-recompute path: the index is built
/// straight from the interned gram-id sets and every query is a posting
/// merge over those same ids; no string is tokenized or hashed.
///
/// Entities without cached features form singleton canopies.
///
/// # Panics
/// Panics if `tight < loose`.
pub fn canopies_cached(
    points: &[EntityId],
    cache: &FeatureCache,
    params: &CanopyParams,
) -> Vec<Vec<EntityId>> {
    static EMPTY: [u32; 0] = [];
    let sets: Vec<&[u32]> = points
        .iter()
        .map(|&e| cache.get(e).map_or(&EMPTY[..], |f| f.grams.as_slice()))
        .collect();
    let index =
        InvertedIndex::from_gram_ids(&sets, cache.gram_interner().len(), cache.config().ngram);
    let queries: Vec<Query<'_>> = sets.into_iter().map(Query::GramIds).collect();
    run_canopies(points, &queries, &index, params)
}

/// A canopy query: either a raw string or a pre-interned gram-id set.
enum Query<'a> {
    Text(&'a str),
    GramIds(&'a [u32]),
}

fn run_canopies(
    entities: &[EntityId],
    queries: &[Query<'_>],
    index: &InvertedIndex,
    params: &CanopyParams,
) -> Vec<Vec<EntityId>> {
    assert!(
        params.tight >= params.loose,
        "canopy tight threshold must be ≥ loose threshold"
    );
    let mut center_eligible = vec![true; entities.len()];
    let mut out: Vec<Vec<EntityId>> = Vec::new();
    for center in 0..entities.len() {
        if !center_eligible[center] {
            continue;
        }
        center_eligible[center] = false;
        let mut members = vec![entities[center]];
        let candidates = match &queries[center] {
            Query::Text(s) => index.candidates_above(s, params.loose),
            Query::GramIds(ids) => index.candidates_above_ids(ids, params.loose),
        };
        for (doc, sim) in candidates {
            let doc_idx = doc as usize;
            if doc_idx == center {
                continue;
            }
            members.push(entities[doc_idx]);
            if sim >= params.tight {
                center_eligible[doc_idx] = false;
            }
        }
        out.push(members);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn points(names: &[&str]) -> Vec<(EntityId, String)> {
        names
            .iter()
            .enumerate()
            .map(|(i, s)| (e(i as u32), (*s).to_owned()))
            .collect()
    }

    #[test]
    fn every_entity_is_covered() {
        let pts = points(&["john smith", "jon smith", "jane doe", "zzz qqq"]);
        let cs = canopies(&pts, &CanopyParams::default());
        let mut covered = vec![false; pts.len()];
        for c in &cs {
            for m in c {
                covered[m.0 as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "canopies must cover everything");
    }

    #[test]
    fn near_duplicates_share_a_canopy() {
        let pts = points(&["john smith", "john smith", "jane doe"]);
        let cs = canopies(&pts, &CanopyParams::default());
        assert!(
            cs.iter().any(|c| c.contains(&e(0)) && c.contains(&e(1))),
            "duplicates must co-occur: {cs:?}"
        );
        // An exact duplicate of a previous center cannot seed its own
        // canopy (it was removed by the tight threshold).
        let seeded_by_duplicate = cs.iter().filter(|c| c[0] == e(1)).count();
        assert_eq!(seeded_by_duplicate, 0);
    }

    #[test]
    fn dissimilar_names_do_not_mix() {
        let pts = points(&["john smith", "minos garofalakis"]);
        let cs = canopies(&pts, &CanopyParams::default());
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], vec![e(0)]);
        assert_eq!(cs[1], vec![e(1)]);
    }

    #[test]
    fn loose_threshold_creates_overlap() {
        // b is close to both a and c, which are far from each other: with
        // a loose-but-not-tight band, b joins a's canopy yet still seeds
        // (or joins) another canopy with c.
        let pts = points(&["aaaa bbbb", "aaaa bbbc", "aaab bbcc"]);
        let params = CanopyParams {
            ngram: 2,
            loose: 0.30,
            tight: 0.95,
        };
        let cs = canopies(&pts, &params);
        let containing_b = cs.iter().filter(|c| c.contains(&e(1))).count();
        assert!(containing_b >= 2, "loose members overlap: {cs:?}");
    }

    #[test]
    #[should_panic(expected = "tight threshold")]
    fn inverted_thresholds_panic() {
        let pts = points(&["x"]);
        let params = CanopyParams {
            ngram: 2,
            loose: 0.9,
            tight: 0.1,
        };
        let _ = canopies(&pts, &params);
    }

    #[test]
    fn cached_path_matches_string_path() {
        use em_similarity::FeatureConfig;
        let pts = points(&["john smith", "jon smith", "j smith", "jane doe", "j doe"]);
        for params in [
            CanopyParams::default(),
            CanopyParams {
                ngram: 2,
                loose: 0.3,
                tight: 0.9,
            },
        ] {
            let cache = FeatureCache::from_points(
                &pts,
                0,
                FeatureConfig {
                    ngram: params.ngram,
                },
            );
            let ids: Vec<EntityId> = pts.iter().map(|&(e, _)| e).collect();
            assert_eq!(
                canopies(&pts, &params),
                canopies_cached(&ids, &cache, &params),
                "ngram={}",
                params.ngram
            );
        }
    }

    #[test]
    fn cached_path_gives_featureless_entities_singletons() {
        use em_similarity::FeatureConfig;
        let pts = points(&["john smith", "jon smith"]);
        let cache = FeatureCache::from_points(&pts, 0, FeatureConfig::default());
        // e2 has no cached features.
        let ids = vec![e(0), e(1), e(2)];
        let cs = canopies_cached(&ids, &cache, &CanopyParams::default());
        assert!(cs.iter().any(|c| c == &vec![e(2)]));
    }

    #[test]
    fn deterministic_across_runs() {
        let pts = points(&["john smith", "jon smith", "j smith", "jane doe", "j doe"]);
        let a = canopies(&pts, &CanopyParams::default());
        let b = canopies(&pts, &CanopyParams::default());
        assert_eq!(a, b);
    }
}
