//! # em-blocking — canopy blocking and total-cover construction
//!
//! The paper constructs its covers by "first constructing a total cover
//! over the Similar relation using the Canopies algorithm [McCallum,
//! Nigam, Ungar; KDD 2000], and then taking the boundary of each
//! neighborhood with respect to other relations" (§4). This crate is that
//! pipeline:
//!
//! 1. [`inverted_index`] — an n-gram inverted index providing the *cheap*
//!    distance canopies require;
//! 2. [`canopy`] — deterministic canopy clustering with loose/tight
//!    thresholds;
//! 3. similarity annotation — exact Jaro-Winkler within canopies,
//!    discretized into the dataset's candidate-pair levels;
//! 4. [`cover`] — assembling a total [`em_core::Cover`]: canopies +
//!    singleton residuals + relational boundary expansion;
//! 5. [`partition`] — connected-component splitting of oversized
//!    neighborhoods (keeps the cover total while shrinking `k`).
//!
//! The one-call entry point is [`pipeline::block_dataset`].

#![warn(missing_docs)]

pub mod canopy;
pub mod cover;
pub mod inverted_index;
pub mod partition;
pub mod pipeline;

pub use canopy::{
    canopies, canopies_cached, canopies_cached_incremental, CanopyDelta, CanopyMemo, CanopyParams,
    ChangedCanopy,
};
pub use inverted_index::InvertedIndex;
pub use pipeline::{
    block_dataset, block_dataset_churn, block_dataset_session, block_dataset_with_features,
    AnnotationChange, BlockingConfig, BlockingOutput, ChurnBlockingOutput, SimilarityKernel,
};
