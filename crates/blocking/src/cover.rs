//! Assembling a total [`Cover`] from canopies.

use em_core::hash::FxHashSet;
use em_core::{Cover, Dataset, EntityId};

/// Build a total cover from canopies:
///
/// 1. the canopies become neighborhoods;
/// 2. every entity of the dataset not in any canopy (e.g. papers, which
///    are never canopy points) gets a singleton neighborhood so the result
///    is a cover of *all* entities;
/// 3. each neighborhood is expanded with its relational boundary for
///    `boundary_hops` hops (§4's construction), making the cover total.
pub fn cover_from_canopies(
    dataset: &Dataset,
    canopies: Vec<Vec<EntityId>>,
    boundary_hops: usize,
) -> Cover {
    let mut covered: Vec<bool> = vec![false; dataset.entities.len()];
    for canopy in &canopies {
        for e in canopy {
            covered[e.index()] = true;
        }
    }
    let mut neighborhoods = canopies;
    for (i, was_covered) in covered.iter().enumerate() {
        // Retracted entities need no singleton — they carry no tuples or
        // candidate pairs and the cover validation skips them.
        if !was_covered && !dataset.entities.is_retracted(EntityId(i as u32)) {
            neighborhoods.push(vec![EntityId(i as u32)]);
        }
    }
    let cover = Cover::from_neighborhoods(neighborhoods);
    cover.expand_to_total(dataset, boundary_hops)
}

/// Drop neighborhoods that are exact duplicates of another neighborhood
/// (identical member sets), which canopy overlap frequently produces.
pub fn dedupe_exact(cover: &Cover) -> Cover {
    let mut seen: FxHashSet<Vec<EntityId>> = FxHashSet::default();
    let mut kept: Vec<Vec<EntityId>> = Vec::new();
    for id in cover.ids() {
        let members = cover.members(id).to_vec();
        if seen.insert(members.clone()) {
            kept.push(members);
        }
    }
    Cover::from_neighborhoods(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::dataset::SimLevel;
    use em_core::Pair;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let author = ds.entities.intern_type("author_ref");
        let paper = ds.entities.intern_type("paper");
        for _ in 0..4 {
            ds.entities.add_entity(author);
        }
        ds.entities.add_entity(paper); // e4, never a canopy point
        let authored = ds.relations.declare("authored", false);
        ds.relations.add_tuple(authored, e(0), e(4));
        ds.relations.add_tuple(authored, e(1), e(4));
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(0), e(1));
        ds.set_similar(Pair::new(e(0), e(2)), SimLevel(2));
        ds
    }

    #[test]
    fn uncovered_entities_get_singletons() {
        let ds = dataset();
        let cover = cover_from_canopies(&ds, vec![vec![e(0), e(2)], vec![e(1)], vec![e(3)]], 0);
        assert!(
            cover.validate_cover(&ds).is_ok(),
            "paper e4 must be covered"
        );
    }

    #[test]
    fn boundary_expansion_makes_total() {
        let ds = dataset();
        let cover = cover_from_canopies(&ds, vec![vec![e(0), e(2)], vec![e(1)], vec![e(3)]], 1);
        assert!(cover.validate_total(&ds).is_ok());
        // The canopy {e0, e2} pulls in coauthor e1 and paper e4.
        let first = cover.members(em_core::NeighborhoodId(0));
        assert!(first.contains(&e(1)));
        assert!(first.contains(&e(4)));
    }

    #[test]
    fn dedupe_removes_identical_neighborhoods() {
        let cover = Cover::from_neighborhoods(vec![vec![e(0), e(1)], vec![e(1), e(0)], vec![e(2)]]);
        let deduped = dedupe_exact(&cover);
        assert_eq!(deduped.len(), 2);
    }
}
