//! The end-to-end blocking pipeline: canopies → similarity annotation →
//! total cover.

use crate::canopy::{canopies, CanopyParams};
use crate::cover::{cover_from_canopies, dedupe_exact};
use crate::partition::split_oversized;
use em_core::{Cover, Dataset, EntityId, Pair, Result};
use em_similarity::discretize::Discretizer;
use em_similarity::{author_name_score, jaro_winkler};

/// Which exact similarity kernel scores within-canopy pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SimilarityKernel {
    /// Raw Jaro-Winkler on the key strings (the paper's stated choice).
    #[default]
    JaroWinkler,
    /// Structure-aware author-name scoring
    /// ([`em_similarity::author_name_score`]): initial-only agreement is
    /// capped below level 3, which is the regime where collective
    /// evidence matters.
    AuthorName,
}

/// Configuration for [`block_dataset`].
#[derive(Debug, Clone)]
pub struct BlockingConfig {
    /// Entity type whose members are blocked (e.g. `"author_ref"`).
    pub entity_type: String,
    /// Attribute holding the blocking key string (e.g. `"name"`).
    pub key_attr: String,
    /// Canopy parameters for the cheap pass.
    pub canopy: CanopyParams,
    /// Thresholds discretizing exact similarity scores into levels.
    pub discretizer: Discretizer,
    /// Exact similarity kernel.
    pub kernel: SimilarityKernel,
    /// Sub-block canopies larger than this into overlapping windows of
    /// members sorted by `(last, first)` name key. Canopy blow-up happens
    /// on popular surnames; windowing keeps compatible names (which sort
    /// adjacently) together while bounding the quadratic pair generation.
    /// Cross-window pairs are *not* candidates — the standard
    /// sub-blocking recall trade-off.
    pub max_canopy_size: Option<usize>,
    /// Boundary-expansion hops (§4 uses one).
    pub boundary_hops: usize,
    /// Split neighborhoods larger than this into safe components.
    pub max_neighborhood_size: Option<usize>,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        Self {
            entity_type: "author_ref".to_owned(),
            key_attr: "name".to_owned(),
            canopy: CanopyParams::default(),
            discretizer: Discretizer::default(),
            kernel: SimilarityKernel::default(),
            max_canopy_size: Some(384),
            boundary_hops: 1,
            max_neighborhood_size: Some(256),
        }
    }
}

/// Result of the blocking pipeline.
#[derive(Debug)]
pub struct BlockingOutput {
    /// The total cover ready for the framework.
    pub cover: Cover,
    /// Number of canopies produced by the cheap pass.
    pub canopies: usize,
    /// Candidate pairs annotated onto the dataset.
    pub candidate_pairs: usize,
}

/// Run the full blocking pipeline on `dataset`:
///
/// 1. collect `(entity, key)` points of `entity_type`;
/// 2. canopy-cluster them with the cheap n-gram similarity;
/// 3. annotate candidate pairs: for every within-canopy pair, compute
///    exact Jaro-Winkler on the keys and record the discretized level in
///    the dataset (`similar(e1, e2, level)`);
/// 4. assemble a total cover (canopies + singleton residuals + boundary).
///
/// Returns an error only if the constructed cover fails validation
/// (which would indicate a bug — the construction is total by design and
/// the validation is kept as an internal consistency check).
pub fn block_dataset(dataset: &mut Dataset, config: &BlockingConfig) -> Result<BlockingOutput> {
    let points: Vec<(EntityId, String)> = {
        let ty = dataset.entities.type_id(&config.entity_type);
        match ty {
            Some(ty) => dataset
                .entities
                .ids_of_type(ty)
                .filter_map(|e| {
                    dataset
                        .entities
                        .attr(e, &config.key_attr)
                        .map(|s| (e, s.to_owned()))
                })
                .collect(),
            None => Vec::new(),
        }
    };

    let mut canopy_sets = canopies(&points, &config.canopy);
    if let Some(max) = config.max_canopy_size {
        let mut key_lookup: Vec<Option<&str>> = vec![None; dataset.entities.len()];
        for (e, s) in &points {
            key_lookup[e.index()] = Some(s.as_str());
        }
        canopy_sets = canopy_sets
            .into_iter()
            .flat_map(|canopy| sub_block(canopy, &key_lookup, max))
            .collect();
    }

    // Exact similarity within canopies; the key strings are looked up via
    // a dense side table to avoid re-fetching attributes per pair.
    let mut key_of: Vec<Option<&str>> = vec![None; dataset.entities.len()];
    for (e, s) in &points {
        key_of[e.index()] = Some(s.as_str());
    }
    let mut candidate_pairs = 0usize;
    let mut annotations: Vec<(Pair, em_core::SimLevel)> = Vec::new();
    for canopy in &canopy_sets {
        for (i, &a) in canopy.iter().enumerate() {
            for &b in &canopy[i + 1..] {
                let (Some(ka), Some(kb)) = (key_of[a.index()], key_of[b.index()]) else {
                    continue;
                };
                let score = match config.kernel {
                    SimilarityKernel::JaroWinkler => jaro_winkler(ka, kb),
                    SimilarityKernel::AuthorName => author_name_score(ka, kb),
                };
                if let Some(level) = config.discretizer.level(score) {
                    annotations.push((Pair::new(a, b), level));
                }
            }
        }
    }
    drop(key_of);
    for (pair, level) in annotations {
        if dataset.set_similar(pair, level) {
            candidate_pairs += 1;
        }
    }

    let mut cover = cover_from_canopies(dataset, canopy_sets.clone(), config.boundary_hops);
    cover = dedupe_exact(&cover);
    if let Some(max) = config.max_neighborhood_size {
        cover = split_oversized(&cover, dataset, max);
        cover = dedupe_exact(&cover);
    }
    cover.validate_total(dataset)?;
    Ok(BlockingOutput {
        cover,
        canopies: canopy_sets.len(),
        candidate_pairs,
    })
}

/// Split an oversized canopy into overlapping windows over members
/// sorted by `(last name, first name)`, so compatible author names stay
/// within a window. Window size = `max`, stride = `max / 2`.
fn sub_block(
    canopy: Vec<EntityId>,
    keys: &[Option<&str>],
    max: usize,
) -> Vec<Vec<EntityId>> {
    if canopy.len() <= max {
        return vec![canopy];
    }
    let mut keyed: Vec<(String, EntityId)> = canopy
        .into_iter()
        .map(|e| {
            let parsed =
                em_similarity::NameKey::parse(keys[e.index()].unwrap_or_default());
            (format!("{} {}", parsed.last, parsed.first), e)
        })
        .collect();
    keyed.sort();
    let stride = (max / 2).max(1);
    let mut out = Vec::new();
    let mut start = 0;
    loop {
        let end = (start + max).min(keyed.len());
        out.push(keyed[start..end].iter().map(|&(_, e)| e).collect());
        if end == keyed.len() {
            break;
        }
        start += stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::SimLevel;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let author = ds.entities.intern_type("author_ref");
        let paper = ds.entities.intern_type("paper");
        let name = ds.entities.intern_attr("name");
        let names = [
            "john smith",
            "john smith",   // exact duplicate of e0
            "jon smith",    // near duplicate
            "jane doe",
            "j doe",
            "minos garofalakis",
        ];
        for n in names {
            let id = ds.entities.add_entity(author);
            ds.entities.set_attr(id, name, n);
        }
        // A paper authored by two of the refs (boundary material).
        let p = ds.entities.add_entity(paper);
        let authored = ds.relations.declare("authored", false);
        ds.relations.add_tuple(authored, e(0), p);
        ds.relations.add_tuple(authored, e(3), p);
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(0), e(3));
        ds
    }

    #[test]
    fn pipeline_produces_valid_total_cover() {
        let mut ds = dataset();
        let out = block_dataset(&mut ds, &BlockingConfig::default()).expect("pipeline");
        assert!(out.cover.validate_total(&ds).is_ok());
        assert!(out.canopies >= 2);
    }

    #[test]
    fn exact_duplicates_become_level3_candidates() {
        let mut ds = dataset();
        let _ = block_dataset(&mut ds, &BlockingConfig::default()).unwrap();
        assert_eq!(ds.similarity(Pair::new(e(0), e(1))), Some(SimLevel(3)));
        let near = ds.similarity(Pair::new(e(0), e(2))).expect("candidate");
        assert!(near >= SimLevel(1));
    }

    #[test]
    fn dissimilar_names_are_not_candidates() {
        let mut ds = dataset();
        let _ = block_dataset(&mut ds, &BlockingConfig::default()).unwrap();
        assert_eq!(ds.similarity(Pair::new(e(0), e(5))), None);
        assert_eq!(ds.similarity(Pair::new(e(3), e(5))), None);
    }

    #[test]
    fn similar_pairs_share_a_neighborhood() {
        let mut ds = dataset();
        let out = block_dataset(&mut ds, &BlockingConfig::default()).unwrap();
        for (pair, _) in ds.candidate_pairs() {
            assert!(
                !out.cover.containing_pair(pair).is_empty(),
                "candidate {pair} lost by the cover"
            );
        }
    }

    #[test]
    fn oversized_canopy_is_sub_blocked() {
        let mut ds = Dataset::new();
        let author = ds.entities.intern_type("author_ref");
        let name = ds.entities.intern_attr("name");
        // 12 same-surname refs; max_canopy_size 6 forces windowing.
        for i in 0..12 {
            let id = ds.entities.add_entity(author);
            ds.entities.set_attr(id, name, format!("a{i:02} smith"));
        }
        let config = BlockingConfig {
            max_canopy_size: Some(6),
            ..Default::default()
        };
        let out = block_dataset(&mut ds, &config).unwrap();
        assert!(
            out.cover.max_size() <= 6,
            "windows bound the neighborhood size: {}",
            out.cover.max_size()
        );
        // Adjacent names still share a window.
        assert!(ds.is_candidate(Pair::new(e(0), e(1))));
    }

    #[test]
    fn empty_type_yields_singleton_cover() {
        let mut ds = dataset();
        let config = BlockingConfig {
            entity_type: "venue".to_owned(), // nonexistent
            ..Default::default()
        };
        let out = block_dataset(&mut ds, &config).unwrap();
        // Every entity still covered (as singletons).
        assert!(out.cover.validate_cover(&ds).is_ok());
        assert_eq!(out.candidate_pairs, 0);
    }
}
