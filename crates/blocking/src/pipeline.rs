//! The end-to-end blocking pipeline: canopies → similarity annotation →
//! total cover.
//!
//! The pipeline is backed by a [`FeatureCache`]: every entity's key is
//! tokenized, interned, and parsed **once**, the canopy pass queries the
//! inverted index with pre-interned gram ids, and the exact kernels score
//! from cached [`em_similarity::FeatureVec`]s. Overlapping canopies emit
//! the same pair many times; a per-run seen-set guarantees each pair's
//! exact similarity is computed exactly once (toggle with
//! [`BlockingConfig::dedupe_pair_scores`] for ablations).

use crate::canopy::{canopies_cached, canopies_cached_incremental, CanopyMemo, CanopyParams};
use crate::cover::{cover_from_canopies, dedupe_exact};
use crate::partition::split_oversized;
use em_core::hash::{FxHashMap, FxHashSet};
use em_core::{Cover, Dataset, EntityId, Pair, PairCache, Result, SimLevel};
use em_similarity::discretize::Discretizer;
use em_similarity::{FeatureCache, FeatureConfig, FeatureVec};

/// Which exact similarity kernel scores within-canopy pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SimilarityKernel {
    /// Raw Jaro-Winkler on the key strings (the paper's stated choice).
    #[default]
    JaroWinkler,
    /// Structure-aware author-name scoring
    /// ([`em_similarity::author_name_score`]): initial-only agreement is
    /// capped below level 3, which is the regime where collective
    /// evidence matters.
    AuthorName,
    /// Cosine over the cache's precomputed TF-IDF token vectors:
    /// corpus-weighted token overlap, O(tokens) per pair with zero
    /// recomputation.
    TfIdfCosine,
}

impl SimilarityKernel {
    /// Score a pair of cached feature vectors in `[0, 1]`.
    #[inline]
    pub fn score(self, a: &FeatureVec, b: &FeatureVec) -> f64 {
        match self {
            SimilarityKernel::JaroWinkler => a.key_jaro_winkler(b),
            SimilarityKernel::AuthorName => a.author_score(b),
            SimilarityKernel::TfIdfCosine => a.tfidf_cosine(b),
        }
    }
}

/// Configuration for [`block_dataset`].
#[derive(Debug, Clone)]
pub struct BlockingConfig {
    /// Entity type whose members are blocked (e.g. `"author_ref"`).
    pub entity_type: String,
    /// Attribute holding the blocking key string (e.g. `"name"`).
    pub key_attr: String,
    /// Canopy parameters for the cheap pass.
    pub canopy: CanopyParams,
    /// Thresholds discretizing exact similarity scores into levels.
    pub discretizer: Discretizer,
    /// Exact similarity kernel.
    pub kernel: SimilarityKernel,
    /// Sub-block canopies larger than this into overlapping windows of
    /// members sorted by `(last, first)` name key. Canopy blow-up happens
    /// on popular surnames; windowing keeps compatible names (which sort
    /// adjacently) together while bounding the quadratic pair generation.
    /// Cross-window pairs are *not* candidates — the standard
    /// sub-blocking recall trade-off.
    pub max_canopy_size: Option<usize>,
    /// Boundary-expansion hops (§4 uses one).
    pub boundary_hops: usize,
    /// Split neighborhoods larger than this into safe components.
    pub max_neighborhood_size: Option<usize>,
    /// Score each within-canopy pair at most once even when overlapping
    /// canopies emit it repeatedly (pure optimization — duplicate scores
    /// were identical; off reproduces the naive recompute-everything
    /// behaviour for ablations).
    pub dedupe_pair_scores: bool,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        Self {
            entity_type: "author_ref".to_owned(),
            key_attr: "name".to_owned(),
            canopy: CanopyParams::default(),
            discretizer: Discretizer::default(),
            kernel: SimilarityKernel::default(),
            max_canopy_size: Some(384),
            boundary_hops: 1,
            max_neighborhood_size: Some(256),
            dedupe_pair_scores: true,
        }
    }
}

/// Result of the blocking pipeline.
#[derive(Debug)]
pub struct BlockingOutput {
    /// The total cover ready for the framework.
    pub cover: Cover,
    /// Number of canopies produced by the cheap pass.
    pub canopies: usize,
    /// Candidate pairs annotated onto the dataset.
    pub candidate_pairs: usize,
    /// Kernel evaluations skipped because the pair-score cache had
    /// already scored the pair in an overlapping canopy (0 when
    /// [`BlockingConfig::dedupe_pair_scores`] is off).
    pub pair_scores_reused: u64,
    /// Exact-kernel evaluations this pass actually performed (the
    /// delta-proportional cost of a churn re-block).
    pub pairs_scored: u64,
}

/// Run the full blocking pipeline on `dataset`:
///
/// 1. collect `(entity, key)` points of `entity_type`;
/// 2. canopy-cluster them with the cheap n-gram similarity;
/// 3. annotate candidate pairs: for every within-canopy pair, compute
///    exact Jaro-Winkler on the keys and record the discretized level in
///    the dataset (`similar(e1, e2, level)`);
/// 4. assemble a total cover (canopies + singleton residuals + boundary).
///
/// Returns an error only if the constructed cover fails validation
/// (which would indicate a bug — the construction is total by design and
/// the validation is kept as an internal consistency check).
pub fn block_dataset(dataset: &mut Dataset, config: &BlockingConfig) -> Result<BlockingOutput> {
    block_dataset_with_features(dataset, config, None)
}

/// [`block_dataset`] reusing a prebuilt [`FeatureCache`] (e.g. the one
/// `em_datagen` interns at render time) instead of re-tokenizing the
/// corpus. The caller guarantees the cache was built over the same
/// `(entity_type, key_attr)` corpus of this dataset; a cache whose n-gram
/// size disagrees with `config.canopy.ngram` is ignored and the pipeline
/// falls back to building its own (the canopy index is gram-id based, so
/// a mismatched cache would change recall).
pub fn block_dataset_with_features(
    dataset: &mut Dataset,
    config: &BlockingConfig,
    features: Option<&FeatureCache>,
) -> Result<BlockingOutput> {
    block_dataset_session(dataset, config, features, None)
}

/// [`block_dataset_with_features`] with a caller-owned pair-score cache.
///
/// A session that re-blocks a *growing* dataset passes the same
/// `PairCache` every time: pairs scored by a previous blocking pass are
/// skipped outright (their annotation is already on the dataset and
/// `Dataset::set_similar` keeps it), so each re-block pays the expensive
/// kernel only for pairs involving new entities — the delta. Requires
/// [`BlockingConfig::dedupe_pair_scores`]; with it off the external
/// cache is ignored (the ablation arm recomputes everything by design).
///
/// Only meaningful for kernels whose score is a pure function of the two
/// feature vectors (Jaro-Winkler, AuthorName): a cached score replayed
/// on a grown corpus must equal what a cold run over that corpus would
/// compute. [`SimilarityKernel::TfIdfCosine`] weighs tokens by corpus
/// frequency, so sessions using it must clear the cache (and rebuild the
/// feature cache) instead of reusing scores.
pub fn block_dataset_session(
    dataset: &mut Dataset,
    config: &BlockingConfig,
    features: Option<&FeatureCache>,
    session_scores: Option<&PairCache<f64>>,
) -> Result<BlockingOutput> {
    // One pass over the corpus: tokenize, intern, parse, and weight every
    // key exactly once — or zero passes when the caller already did.
    // Everything below reads from this cache.
    let built;
    let cache: &FeatureCache = match features {
        Some(shared) if shared.config().ngram == config.canopy.ngram => shared,
        _ => {
            built = FeatureCache::build(
                dataset,
                &config.entity_type,
                &config.key_attr,
                FeatureConfig {
                    ngram: config.canopy.ngram,
                },
            );
            &built
        }
    };
    let points: Vec<EntityId> = {
        let ty = dataset.entities.type_id(&config.entity_type);
        match ty {
            Some(ty) => dataset
                .entities
                .ids_of_type(ty)
                .filter(|&e| cache.get(e).is_some())
                .collect(),
            None => Vec::new(),
        }
    };

    let canopy_sets = canopies_cached(&points, cache, &config.canopy);
    annotate_and_cover(dataset, config, cache, canopy_sets, session_scores)
}

/// The shared back half of every blocking entry point: sub-block
/// oversized canopies, score + annotate within-canopy pairs, assemble
/// the total cover.
fn annotate_and_cover(
    dataset: &mut Dataset,
    config: &BlockingConfig,
    cache: &FeatureCache,
    mut canopy_sets: Vec<Vec<EntityId>>,
    session_scores: Option<&PairCache<f64>>,
) -> Result<BlockingOutput> {
    if let Some(max) = config.max_canopy_size {
        canopy_sets = canopy_sets
            .into_iter()
            .flat_map(|canopy| sub_block(canopy, cache, max))
            .collect();
    }

    // Exact similarity within canopies, straight from cached features.
    // Overlapping canopies repeat pairs; the pair-score cache makes each
    // pair's kernel evaluation (and level annotation) happen exactly once
    // — across re-blocks too, when the caller owns the cache.
    let fresh_scores;
    let scores: &PairCache<f64> = match session_scores {
        Some(shared) => shared,
        None => {
            fresh_scores = PairCache::new();
            &fresh_scores
        }
    };
    let hits_before = scores.stats().hits;
    let mut candidate_pairs = 0usize;
    let mut pairs_scored = 0u64;
    let mut annotations: Vec<(Pair, SimLevel)> = Vec::new();
    for canopy in &canopy_sets {
        for (i, &a) in canopy.iter().enumerate() {
            for &b in &canopy[i + 1..] {
                let (Some(fa), Some(fb)) = (cache.get(a), cache.get(b)) else {
                    continue;
                };
                let pair = Pair::new(a, b);
                let score = if config.dedupe_pair_scores {
                    if scores.get(pair).is_some() {
                        continue; // already scored *and* annotated
                    }
                    let s = config.kernel.score(fa, fb);
                    scores.insert(pair, s);
                    s
                } else {
                    config.kernel.score(fa, fb)
                };
                pairs_scored += 1;
                if let Some(level) = config.discretizer.level(score) {
                    annotations.push((pair, level));
                }
            }
        }
    }
    let pair_scores_reused = scores.stats().hits - hits_before;
    for (pair, level) in annotations {
        if dataset.set_similar(pair, level) {
            candidate_pairs += 1;
        }
    }

    let mut cover = cover_from_canopies(dataset, canopy_sets.clone(), config.boundary_hops);
    cover = dedupe_exact(&cover);
    if let Some(max) = config.max_neighborhood_size {
        cover = split_oversized(&cover, dataset, max);
        cover = dedupe_exact(&cover);
    }
    cover.validate_total(dataset)?;
    Ok(BlockingOutput {
        cover,
        canopies: canopy_sets.len(),
        candidate_pairs,
        pair_scores_reused,
        pairs_scored,
    })
}

/// One candidate pair whose annotation this churn re-block changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotationChange {
    /// The pair.
    pub pair: Pair,
    /// Its level before the re-block (None = not a candidate).
    pub before: Option<SimLevel>,
    /// Its level after (None = no longer a candidate).
    pub after: Option<SimLevel>,
}

/// What a churn re-block did beyond the [`BlockingOutput`].
#[derive(Debug)]
pub struct ChurnBlockingOutput {
    /// The regular blocking output (cover, counters).
    pub output: BlockingOutput,
    /// Every candidate pair whose annotation changed — removed because
    /// its canopy co-location vanished, added between pre-existing
    /// entities, or re-discretized at a different level. These pairs
    /// seed the session's component-scoped rollback.
    pub changed_pairs: Vec<AnnotationChange>,
    /// Canopies replayed from the memo without an index query.
    pub canopies_replayed: u64,
    /// Canopies recomputed against the inverted index.
    pub canopies_recomputed: u64,
}

/// The churn-aware re-block behind `MatchSession::update`: an
/// incremental canopy pass with cross-pass replay ([`CanopyMemo`]), a
/// *suspect-pair purge* that withdraws annotations only where canopy
/// co-location can have changed, and a report of every annotation the
/// pass ended up changing.
///
/// `delta_grams` holds the gram-id set of every added or removed point
/// (removed points' sets captured before their features were dropped);
/// only canopies centered within the loose threshold of a delta point
/// re-query the index (see [`canopies_cached_incremental`]).
/// When `purge_suspects` is set (deltas with retractions), the pairs of
/// every *changed* canopy — old and new membership alike — are
/// un-annotated and evicted from the score cache before the annotate
/// loop runs, so the loop re-derives exactly what a cold pass over the
/// edited dataset would: pairs still co-located come back at the same
/// kernel score, pairs that lost co-location stay gone. `protected`
/// pairs (caller-supplied links and pre-blocking annotations) are never
/// purged — cold runs see them on the dataset too.
///
/// Byte-identical cover + annotations to [`block_dataset_session`] over
/// the same dataset and (fresh) caches, at delta-proportional cost.
#[allow(clippy::too_many_arguments)]
pub fn block_dataset_churn(
    dataset: &mut Dataset,
    config: &BlockingConfig,
    cache: &FeatureCache,
    session_scores: &PairCache<f64>,
    memo: &mut CanopyMemo,
    delta_grams: &[Vec<u32>],
    purge_suspects: bool,
    protected: &FxHashMap<Pair, SimLevel>,
) -> Result<ChurnBlockingOutput> {
    let points: Vec<EntityId> = {
        let ty = dataset.entities.type_id(&config.entity_type);
        match ty {
            Some(ty) => dataset
                .entities
                .ids_of_type(ty)
                .filter(|&e| cache.get(e).is_some())
                .collect(),
            None => Vec::new(),
        }
    };
    let (canopy_sets, delta) =
        canopies_cached_incremental(&points, cache, &config.canopy, memo, delta_grams);

    // Suspect pairs: every pair of every changed canopy, old or new
    // membership. Only their co-location can have changed, so only they
    // are purged and re-derived; protected pairs keep their annotation
    // (the annotate loop may still raise it, mirroring a cold pass).
    let mut suspects: Vec<Pair> = Vec::new();
    if purge_suspects {
        let mut seen: FxHashSet<Pair> = FxHashSet::default();
        for changed in &delta.changed {
            for members in [&changed.old_members, &changed.new_members] {
                for (i, &a) in members.iter().enumerate() {
                    for &b in &members[i + 1..] {
                        let pair = Pair::new(a, b);
                        if seen.insert(pair) && !protected.contains_key(&pair) {
                            suspects.push(pair);
                        }
                    }
                }
            }
        }
        suspects.sort_unstable();
    }
    // Pre-purge levels: the diff below is against what the dataset held
    // when the caller handed it over.
    let before: Vec<(Pair, Option<SimLevel>)> = suspects
        .iter()
        .map(|&p| (p, dataset.similarity(p)))
        .collect();
    for &pair in &suspects {
        dataset.retract_similar(pair);
        session_scores.remove(pair);
    }

    let output = annotate_and_cover(dataset, config, cache, canopy_sets, Some(session_scores))?;

    let mut changed_pairs: Vec<AnnotationChange> = Vec::new();
    for (pair, before) in before {
        let after = dataset.similarity(pair);
        if before != after {
            changed_pairs.push(AnnotationChange {
                pair,
                before,
                after,
            });
        }
    }
    Ok(ChurnBlockingOutput {
        output,
        changed_pairs,
        canopies_replayed: delta.replayed,
        canopies_recomputed: delta.recomputed,
    })
}

/// Split an oversized canopy into overlapping windows over members
/// sorted by `(last name, first name)`, so compatible author names stay
/// within a window. Window size = `max`, stride = `max / 2`. Name keys
/// come pre-parsed from the feature cache.
fn sub_block(canopy: Vec<EntityId>, cache: &FeatureCache, max: usize) -> Vec<Vec<EntityId>> {
    if canopy.len() <= max {
        return vec![canopy];
    }
    let mut keyed: Vec<(String, EntityId)> = canopy
        .into_iter()
        .map(|e| {
            let key = cache
                .get(e)
                .map_or_else(String::new, |f| format!("{} {}", f.name.last, f.name.first));
            (key, e)
        })
        .collect();
    keyed.sort();
    let stride = (max / 2).max(1);
    let mut out = Vec::new();
    let mut start = 0;
    loop {
        let end = (start + max).min(keyed.len());
        out.push(keyed[start..end].iter().map(|&(_, e)| e).collect());
        if end == keyed.len() {
            break;
        }
        start += stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::SimLevel;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        let author = ds.entities.intern_type("author_ref");
        let paper = ds.entities.intern_type("paper");
        let name = ds.entities.intern_attr("name");
        let names = [
            "john smith",
            "john smith", // exact duplicate of e0
            "jon smith",  // near duplicate
            "jane doe",
            "j doe",
            "minos garofalakis",
        ];
        for n in names {
            let id = ds.entities.add_entity(author);
            ds.entities.set_attr(id, name, n);
        }
        // A paper authored by two of the refs (boundary material).
        let p = ds.entities.add_entity(paper);
        let authored = ds.relations.declare("authored", false);
        ds.relations.add_tuple(authored, e(0), p);
        ds.relations.add_tuple(authored, e(3), p);
        let co = ds.relations.declare("coauthor", true);
        ds.relations.add_tuple(co, e(0), e(3));
        ds
    }

    #[test]
    fn pipeline_produces_valid_total_cover() {
        let mut ds = dataset();
        let out = block_dataset(&mut ds, &BlockingConfig::default()).expect("pipeline");
        assert!(out.cover.validate_total(&ds).is_ok());
        assert!(out.canopies >= 2);
    }

    #[test]
    fn exact_duplicates_become_level3_candidates() {
        let mut ds = dataset();
        let _ = block_dataset(&mut ds, &BlockingConfig::default()).unwrap();
        assert_eq!(ds.similarity(Pair::new(e(0), e(1))), Some(SimLevel(3)));
        let near = ds.similarity(Pair::new(e(0), e(2))).expect("candidate");
        assert!(near >= SimLevel(1));
    }

    #[test]
    fn dissimilar_names_are_not_candidates() {
        let mut ds = dataset();
        let _ = block_dataset(&mut ds, &BlockingConfig::default()).unwrap();
        assert_eq!(ds.similarity(Pair::new(e(0), e(5))), None);
        assert_eq!(ds.similarity(Pair::new(e(3), e(5))), None);
    }

    #[test]
    fn similar_pairs_share_a_neighborhood() {
        let mut ds = dataset();
        let out = block_dataset(&mut ds, &BlockingConfig::default()).unwrap();
        for (pair, _) in ds.candidate_pairs() {
            assert!(
                !out.cover.containing_pair(pair).is_empty(),
                "candidate {pair} lost by the cover"
            );
        }
    }

    #[test]
    fn oversized_canopy_is_sub_blocked() {
        let mut ds = Dataset::new();
        let author = ds.entities.intern_type("author_ref");
        let name = ds.entities.intern_attr("name");
        // 12 same-surname refs; max_canopy_size 6 forces windowing.
        for i in 0..12 {
            let id = ds.entities.add_entity(author);
            ds.entities.set_attr(id, name, format!("a{i:02} smith"));
        }
        let config = BlockingConfig {
            max_canopy_size: Some(6),
            ..Default::default()
        };
        let out = block_dataset(&mut ds, &config).unwrap();
        assert!(
            out.cover.max_size() <= 6,
            "windows bound the neighborhood size: {}",
            out.cover.max_size()
        );
        // Adjacent names still share a window.
        assert!(ds.is_candidate(Pair::new(e(0), e(1))));
    }

    #[test]
    fn pair_score_dedupe_does_not_change_the_output() {
        let mut with_dedupe = dataset();
        let mut without = dataset();
        let on = BlockingConfig::default();
        let off = BlockingConfig {
            dedupe_pair_scores: false,
            ..Default::default()
        };
        let out_on = block_dataset(&mut with_dedupe, &on).unwrap();
        let out_off = block_dataset(&mut without, &off).unwrap();
        assert_eq!(out_on.candidate_pairs, out_off.candidate_pairs);
        assert_eq!(out_off.pair_scores_reused, 0, "cache unused when off");
        let mut pairs_on: Vec<_> = with_dedupe.candidate_pairs().collect();
        let mut pairs_off: Vec<_> = without.candidate_pairs().collect();
        pairs_on.sort_unstable();
        pairs_off.sort_unstable();
        assert_eq!(pairs_on, pairs_off);
    }

    #[test]
    fn session_score_cache_skips_previously_scored_pairs_on_reblock() {
        let mut ds = dataset();
        let scores = PairCache::new();
        let config = BlockingConfig::default();
        let first = block_dataset_session(&mut ds, &config, None, Some(&scores)).unwrap();
        assert!(
            !scores.is_empty(),
            "session cache captured the pass's scores"
        );
        let pairs_before: usize = ds.candidate_pairs().count();
        // Re-blocking the unchanged dataset with the same cache re-scores
        // nothing and annotates nothing new.
        let second = block_dataset_session(&mut ds, &config, None, Some(&scores)).unwrap();
        assert_eq!(second.candidate_pairs, 0, "no new candidates");
        assert!(
            second.pair_scores_reused >= first.candidate_pairs as u64,
            "every previously scored pair replays: {} < {}",
            second.pair_scores_reused,
            first.candidate_pairs
        );
        assert_eq!(ds.candidate_pairs().count(), pairs_before);
        assert_eq!(second.cover.len(), first.cover.len());
    }

    #[test]
    fn tfidf_kernel_annotates_shared_token_pairs() {
        let mut ds = dataset();
        let config = BlockingConfig {
            kernel: SimilarityKernel::TfIdfCosine,
            ..Default::default()
        };
        let _ = block_dataset(&mut ds, &config).unwrap();
        // Exact duplicates share every token: cosine 1 → level 3.
        assert_eq!(ds.similarity(Pair::new(e(0), e(1))), Some(SimLevel(3)));
    }

    #[test]
    fn empty_type_yields_singleton_cover() {
        let mut ds = dataset();
        let config = BlockingConfig {
            entity_type: "venue".to_owned(), // nonexistent
            ..Default::default()
        };
        let out = block_dataset(&mut ds, &config).unwrap();
        // Every entity still covered (as singletons).
        assert!(out.cover.validate_cover(&ds).is_ok());
        assert_eq!(out.candidate_pairs, 0);
    }
}
