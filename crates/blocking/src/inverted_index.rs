//! N-gram inverted index: the cheap distance behind canopy clustering.
//!
//! Canopies need a distance that can enumerate "everything plausibly
//! close to X" without comparing X against the whole dataset. An inverted
//! index from character n-grams to document ids does exactly that: the
//! candidates for X are the union of the posting lists of X's n-grams,
//! and the overlap counts give an upper-bound Jaccard estimate for free.

use em_core::hash::FxHashMap;
use em_similarity::ngram::ngram_set;

/// Inverted index over the character n-grams of a string collection.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    n: usize,
    /// n-gram → ids of documents containing it (ascending).
    postings: FxHashMap<String, Vec<u32>>,
    /// per-document n-gram set size (for Jaccard denominators).
    gram_counts: Vec<u32>,
}

impl InvertedIndex {
    /// Build the index over `docs` with `n`-grams. Document ids are the
    /// slice positions.
    pub fn build(docs: &[String], n: usize) -> Self {
        let mut postings: FxHashMap<String, Vec<u32>> = FxHashMap::default();
        let mut gram_counts = Vec::with_capacity(docs.len());
        for (id, doc) in docs.iter().enumerate() {
            let grams = ngram_set(doc, n);
            gram_counts.push(grams.len() as u32);
            for gram in grams {
                postings.entry(gram).or_default().push(id as u32);
            }
        }
        Self {
            n,
            postings,
            gram_counts,
        }
    }

    /// The n-gram size of the index.
    pub fn ngram_size(&self) -> usize {
        self.n
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.gram_counts.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.gram_counts.is_empty()
    }

    /// Number of distinct n-grams of document `id`.
    pub fn gram_count(&self, id: u32) -> u32 {
        self.gram_counts[id as usize]
    }

    /// Candidate documents sharing at least one n-gram with `query`,
    /// with shared-gram counts. The query is an arbitrary string (not
    /// necessarily indexed).
    pub fn candidates(&self, query: &str) -> FxHashMap<u32, u32> {
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        for gram in ngram_set(query, self.n) {
            if let Some(ids) = self.postings.get(&gram) {
                for &id in ids {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Cheap Jaccard similarity between an indexed document and a query
    /// given their shared-gram count: `shared / (|q| + |d| − shared)`.
    pub fn jaccard_from_overlap(&self, doc: u32, query_grams: u32, shared: u32) -> f64 {
        let union = query_grams + self.gram_count(doc) - shared;
        if union == 0 {
            return 1.0;
        }
        f64::from(shared) / f64::from(union)
    }

    /// All candidates of `query` at Jaccard ≥ `threshold`.
    pub fn candidates_above(&self, query: &str, threshold: f64) -> Vec<(u32, f64)> {
        let query_grams = ngram_set(query, self.n).len() as u32;
        let mut out: Vec<(u32, f64)> = self
            .candidates(query)
            .into_iter()
            .map(|(id, shared)| (id, self.jaccard_from_overlap(id, query_grams, shared)))
            .filter(|&(_, sim)| sim >= threshold)
            .collect();
        out.sort_unstable_by_key(|a| a.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<String> {
        ["john smith", "jon smith", "jane doe", "john smithe"]
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn build_indexes_every_doc() {
        let idx = InvertedIndex::build(&docs(), 3);
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        assert_eq!(idx.ngram_size(), 3);
        assert!(idx.gram_count(0) > 0);
    }

    #[test]
    fn exact_duplicate_query_scores_one() {
        let idx = InvertedIndex::build(&docs(), 3);
        let hits = idx.candidates_above("john smith", 0.999);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn near_duplicates_are_found_above_loose_threshold() {
        let idx = InvertedIndex::build(&docs(), 3);
        let hits = idx.candidates_above("john smith", 0.4);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&3), "john smithe shares most grams");
        assert!(!ids.contains(&2), "jane doe is unrelated");
    }

    #[test]
    fn candidates_count_shared_grams() {
        let idx = InvertedIndex::build(&docs(), 3);
        let counts = idx.candidates("jane doe");
        // Identical doc shares all of its grams.
        assert_eq!(counts[&2], idx.gram_count(2));
    }

    #[test]
    fn unrelated_query_yields_nothing() {
        let idx = InvertedIndex::build(&docs(), 3);
        assert!(idx.candidates_above("xyzzyx", 0.1).is_empty());
    }

    #[test]
    fn empty_collection() {
        let idx = InvertedIndex::build(&[], 3);
        assert!(idx.is_empty());
        assert!(idx.candidates("anything").is_empty());
    }
}
