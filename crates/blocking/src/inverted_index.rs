//! N-gram inverted index: the cheap distance behind canopy clustering.
//!
//! Canopies need a distance that can enumerate "everything plausibly
//! close to X" without comparing X against the whole dataset. An inverted
//! index from character n-grams to document ids does exactly that: the
//! candidates for X are the union of the posting lists of X's n-grams,
//! and the overlap counts give an upper-bound Jaccard estimate for free.
//!
//! Grams are interned to dense `u32` ids at build time
//! ([`em_similarity::TokenInterner`]), so posting lists are indexed by a
//! plain vector and queries over **pre-interned gram ids** (the
//! [`em_similarity::FeatureVec`] gram sets of a feature cache) never
//! touch a string or a hash map. The `&str` query API remains as a thin
//! wrapper that interns the query's grams on the fly.

use em_core::hash::FxHashMap;
use em_similarity::feature::TokenInterner;
use em_similarity::ngram::for_each_ngram;

/// Inverted index over the character n-grams of a string collection.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    n: usize,
    /// gram string → dense gram id. Present only when the index was
    /// built from strings; an index built from pre-interned gram ids
    /// ([`Self::from_gram_ids`]) borrows its caller's vocabulary and
    /// answers id queries only.
    grams: Option<TokenInterner>,
    /// gram id → ids of documents containing it (ascending).
    postings: Vec<Vec<u32>>,
    /// per-document n-gram set size (for Jaccard denominators).
    gram_counts: Vec<u32>,
}

impl InvertedIndex {
    /// Build the index over `docs` with `n`-grams. Document ids are the
    /// slice positions.
    pub fn build(docs: &[String], n: usize) -> Self {
        let mut grams = TokenInterner::new();
        let sets: Vec<Vec<u32>> = docs
            .iter()
            .map(|doc| {
                let mut ids: Vec<u32> = Vec::new();
                for_each_ngram(doc, n, |g| ids.push(grams.intern(g)));
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect();
        let refs: Vec<&[u32]> = sets.iter().map(Vec::as_slice).collect();
        let vocab = grams.len();
        Self::from_parts(n, Some(grams), vocab, &refs)
    }

    /// Build from pre-interned, sorted/deduplicated gram-id sets (one
    /// per document) over a vocabulary of `vocab_size` grams — the
    /// zero-recompute path used when a feature cache already extracted
    /// every document. The id sets are read once, not copied, and no
    /// gram string is stored; query with [`Self::candidates_for_ids`] /
    /// [`Self::candidates_above_ids`] (string queries panic).
    pub fn from_gram_ids(sets: &[&[u32]], vocab_size: usize, n: usize) -> Self {
        Self::from_parts(n, None, vocab_size, sets)
    }

    fn from_parts(
        n: usize,
        grams: Option<TokenInterner>,
        vocab_size: usize,
        sets: &[&[u32]],
    ) -> Self {
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); vocab_size];
        let mut gram_counts = Vec::with_capacity(sets.len());
        for (id, set) in sets.iter().enumerate() {
            gram_counts.push(set.len() as u32);
            for &gram in *set {
                postings[gram as usize].push(id as u32);
            }
        }
        Self {
            n,
            grams,
            postings,
            gram_counts,
        }
    }

    /// The n-gram size of the index.
    pub fn ngram_size(&self) -> usize {
        self.n
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.gram_counts.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.gram_counts.is_empty()
    }

    /// Number of distinct n-grams of document `id`.
    pub fn gram_count(&self, id: u32) -> u32 {
        self.gram_counts[id as usize]
    }

    /// Distinct gram ids of a query string under the index vocabulary,
    /// plus the query's total distinct-gram count (including grams not in
    /// the vocabulary, which the Jaccard denominator needs).
    ///
    /// # Panics
    /// Panics if the index was built from pre-interned ids (no string
    /// vocabulary to resolve against).
    fn query_gram_ids(&self, query: &str) -> (Vec<u32>, u32) {
        let grams = self
            .grams
            .as_ref()
            .expect("string queries require an index built from strings (InvertedIndex::build)");
        let mut known: Vec<u32> = Vec::new();
        let mut unknown: Vec<String> = Vec::new();
        for_each_ngram(query, self.n, |g| match grams.get(g) {
            Some(id) => known.push(id),
            None => unknown.push(g.to_owned()),
        });
        known.sort_unstable();
        known.dedup();
        unknown.sort_unstable();
        unknown.dedup();
        let total = known.len() + unknown.len();
        (known, total as u32)
    }

    /// Candidate documents sharing at least one n-gram with `query`,
    /// with shared-gram counts. The query is an arbitrary string (not
    /// necessarily indexed).
    pub fn candidates(&self, query: &str) -> FxHashMap<u32, u32> {
        let (ids, _) = self.query_gram_ids(query);
        self.candidates_for_ids(&ids)
    }

    /// Candidates for a pre-interned, deduplicated gram-id set.
    pub fn candidates_for_ids(&self, gram_ids: &[u32]) -> FxHashMap<u32, u32> {
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        for &gram in gram_ids {
            if let Some(ids) = self.postings.get(gram as usize) {
                for &id in ids {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// Cheap Jaccard similarity between an indexed document and a query
    /// given their shared-gram count: `shared / (|q| + |d| − shared)`.
    pub fn jaccard_from_overlap(&self, doc: u32, query_grams: u32, shared: u32) -> f64 {
        let union = query_grams + self.gram_count(doc) - shared;
        if union == 0 {
            return 1.0;
        }
        f64::from(shared) / f64::from(union)
    }

    /// All candidates of `query` at Jaccard ≥ `threshold`.
    pub fn candidates_above(&self, query: &str, threshold: f64) -> Vec<(u32, f64)> {
        let (ids, total) = self.query_gram_ids(query);
        self.candidates_above_counted(&ids, total, threshold)
    }

    /// All candidates of a pre-interned gram-id set at Jaccard ≥
    /// `threshold`. The set must be deduplicated and drawn from the
    /// index's own vocabulary; its length is the query's distinct-gram
    /// count.
    pub fn candidates_above_ids(&self, gram_ids: &[u32], threshold: f64) -> Vec<(u32, f64)> {
        self.candidates_above_counted(gram_ids, gram_ids.len() as u32, threshold)
    }

    fn candidates_above_counted(
        &self,
        gram_ids: &[u32],
        query_grams: u32,
        threshold: f64,
    ) -> Vec<(u32, f64)> {
        let mut out: Vec<(u32, f64)> = self
            .candidates_for_ids(gram_ids)
            .into_iter()
            .map(|(id, shared)| (id, self.jaccard_from_overlap(id, query_grams, shared)))
            .filter(|&(_, sim)| sim >= threshold)
            .collect();
        out.sort_unstable_by_key(|a| a.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_similarity::ngram::ngram_set;

    fn docs() -> Vec<String> {
        ["john smith", "jon smith", "jane doe", "john smithe"]
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn build_indexes_every_doc() {
        let idx = InvertedIndex::build(&docs(), 3);
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        assert_eq!(idx.ngram_size(), 3);
        assert!(idx.gram_count(0) > 0);
    }

    #[test]
    fn exact_duplicate_query_scores_one() {
        let idx = InvertedIndex::build(&docs(), 3);
        let hits = idx.candidates_above("john smith", 0.999);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
    }

    #[test]
    fn near_duplicates_are_found_above_loose_threshold() {
        let idx = InvertedIndex::build(&docs(), 3);
        let hits = idx.candidates_above("john smith", 0.4);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&3), "john smithe shares most grams");
        assert!(!ids.contains(&2), "jane doe is unrelated");
    }

    #[test]
    fn candidates_count_shared_grams() {
        let idx = InvertedIndex::build(&docs(), 3);
        let counts = idx.candidates("jane doe");
        // Identical doc shares all of its grams.
        assert_eq!(counts[&2], idx.gram_count(2));
    }

    #[test]
    fn unrelated_query_yields_nothing() {
        let idx = InvertedIndex::build(&docs(), 3);
        assert!(idx.candidates_above("xyzzyx", 0.1).is_empty());
    }

    #[test]
    fn out_of_vocabulary_grams_still_count_in_denominator() {
        let idx = InvertedIndex::build(&docs(), 3);
        // "john smithx" shares grams with doc 0 but its novel grams must
        // lower the Jaccard estimate below 1.
        let hits = idx.candidates_above("john smithx", 0.1);
        let john = hits.iter().find(|&&(id, _)| id == 0).expect("candidate");
        let expected = {
            let q = ngram_set("john smithx", 3);
            let d = ngram_set("john smith", 3);
            let shared = q.iter().filter(|g| d.contains(g)).count() as f64;
            shared / (q.len() as f64 + d.len() as f64 - shared)
        };
        assert!((john.1 - expected).abs() < 1e-12);
    }

    #[test]
    fn interned_query_path_matches_string_path() {
        let idx = InvertedIndex::build(&docs(), 3);
        // Query with doc 1's own gram set: both paths must agree.
        let mut gram_ids: Vec<u32> = Vec::new();
        let vocab = idx.grams.as_ref().expect("string-built index");
        for_each_ngram("jon smith", 3, |g| {
            gram_ids.push(vocab.get(g).expect("indexed gram"));
        });
        gram_ids.sort_unstable();
        gram_ids.dedup();
        let by_ids = idx.candidates_above_ids(&gram_ids, 0.3);
        let by_str = idx.candidates_above("jon smith", 0.3);
        assert_eq!(by_ids, by_str);
    }

    #[test]
    fn empty_collection() {
        let idx = InvertedIndex::build(&[], 3);
        assert!(idx.is_empty());
        assert!(idx.candidates("anything").is_empty());
    }

    #[test]
    fn id_built_index_answers_id_queries() {
        let sets: Vec<&[u32]> = vec![&[0, 1, 2], &[1, 2, 3], &[7]];
        let idx = InvertedIndex::from_gram_ids(&sets, 8, 3);
        assert_eq!(idx.len(), 3);
        let hits = idx.candidates_above_ids(&[1, 2, 3], 0.4);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(hits[1].1, 1.0, "identical set");
    }

    #[test]
    #[should_panic(expected = "built from strings")]
    fn id_built_index_rejects_string_queries() {
        let sets: Vec<&[u32]> = vec![&[0, 1]];
        let idx = InvertedIndex::from_gram_ids(&sets, 2, 3);
        let _ = idx.candidates("john smith");
    }
}
