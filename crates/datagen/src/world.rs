//! The latent bibliographic world: true authors, papers, authorship, and
//! citations — before any reference noise is applied.

use crate::names::{NamePool, ZipfSampler};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Index of a true author in [`World::authors`].
pub type AuthorIdx = u32;

/// A true (latent) author.
#[derive(Debug, Clone)]
pub struct Author {
    /// Given name.
    pub first: String,
    /// Family name.
    pub last: String,
}

impl Author {
    /// Canonical full name.
    pub fn full_name(&self) -> String {
        format!("{} {}", self.first, self.last)
    }
}

/// Parameters of the world generator.
#[derive(Debug, Clone, Copy)]
pub struct WorldParams {
    /// Number of distinct authors.
    pub n_authors: usize,
    /// Number of papers.
    pub n_papers: usize,
    /// Maximum authors per paper (sizes are drawn in `1..=max`).
    pub max_authors_per_paper: usize,
    /// Probability (0–1) that a coauthor is drawn from an existing
    /// collaborator instead of the global pool — higher values create
    /// denser collaboration communities.
    pub collaboration_locality: f64,
    /// Maximum citations per paper (drawn uniformly in `0..=max`, only
    /// toward earlier papers).
    pub max_citations_per_paper: usize,
    /// Zipf exponent for author productivity (how skewed paper counts
    /// are).
    pub productivity_exponent: f64,
    /// Fraction of the author count used as the *last-name pool* size —
    /// smaller values mean more surname clashes.
    pub last_name_pool_fraction: f64,
    /// Zipf exponent for name *assignment* (how concentrated usage of
    /// popular names is; 0 = uniform).
    pub name_zipf_exponent: f64,
    /// Probability that a paper reuses a random earlier paper's full
    /// team (same author order) — research groups publishing series.
    /// Repeat teams are what create the correlated match clusters
    /// ("either all of them or none", §2.1) that collective matching
    /// exists for.
    pub team_repeat: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorldParams {
    fn default() -> Self {
        Self {
            n_authors: 200,
            n_papers: 300,
            max_authors_per_paper: 4,
            collaboration_locality: 0.5,
            max_citations_per_paper: 3,
            productivity_exponent: 0.9,
            last_name_pool_fraction: 0.4,
            name_zipf_exponent: 0.6,
            team_repeat: 0.2,
            seed: 42,
        }
    }
}

/// A generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// The true authors.
    pub authors: Vec<Author>,
    /// Papers as author-index lists (each list deduplicated).
    pub papers: Vec<Vec<AuthorIdx>>,
    /// Citations `(citing, cited)` over paper indices, `cited < citing`.
    pub citations: Vec<(u32, u32)>,
}

impl World {
    /// Total number of author references (paper-author slots).
    pub fn reference_count(&self) -> usize {
        self.papers.iter().map(Vec::len).sum()
    }
}

/// Generate a world from parameters (deterministic per seed).
pub fn generate_world(params: &WorldParams) -> World {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let last_pool = ((params.n_authors as f64 * params.last_name_pool_fraction) as usize).max(1);
    let first_pool = (params.n_authors / 2).max(1);
    let pool = NamePool::generate(&mut rng, first_pool, last_pool);
    let first_zipf = ZipfSampler::new(pool.first.len(), params.name_zipf_exponent);
    let last_zipf = ZipfSampler::new(pool.last.len(), params.name_zipf_exponent);

    let authors: Vec<Author> = (0..params.n_authors)
        .map(|_| Author {
            first: pool.first[first_zipf.sample(&mut rng)].clone(),
            last: pool.last[last_zipf.sample(&mut rng)].clone(),
        })
        .collect();

    let productivity = ZipfSampler::new(params.n_authors, params.productivity_exponent);
    let mut collaborators: Vec<Vec<AuthorIdx>> = vec![Vec::new(); params.n_authors];
    let mut papers: Vec<Vec<AuthorIdx>> = Vec::with_capacity(params.n_papers);
    for _ in 0..params.n_papers {
        // Team repetition: reuse a previous team wholesale (same order).
        if !papers.is_empty() && rng.random_bool(params.team_repeat) {
            let prior = rng.random_range(0..papers.len());
            let team = papers[prior].clone();
            for (i, &a) in team.iter().enumerate() {
                for &b in &team[i + 1..] {
                    if !collaborators[a as usize].contains(&b) {
                        collaborators[a as usize].push(b);
                        collaborators[b as usize].push(a);
                    }
                }
            }
            papers.push(team);
            continue;
        }
        let size = rng.random_range(1..=params.max_authors_per_paper.max(1));
        let lead = productivity.sample(&mut rng) as AuthorIdx;
        let mut team = vec![lead];
        while team.len() < size {
            let next: AuthorIdx = if rng.random_bool(params.collaboration_locality) {
                // Prefer an existing collaborator of someone on the team.
                let anchor = team[rng.random_range(0..team.len())];
                let known = &collaborators[anchor as usize];
                if known.is_empty() {
                    productivity.sample(&mut rng) as AuthorIdx
                } else {
                    known[rng.random_range(0..known.len())]
                }
            } else {
                productivity.sample(&mut rng) as AuthorIdx
            };
            if !team.contains(&next) {
                team.push(next);
            } else if team.len() == params.n_authors {
                break;
            } else {
                // Collision: fall back to a uniform draw to guarantee
                // progress on tiny author pools.
                let uniform = rng.random_range(0..params.n_authors) as AuthorIdx;
                if !team.contains(&uniform) {
                    team.push(uniform);
                }
            }
        }
        for (i, &a) in team.iter().enumerate() {
            for &b in &team[i + 1..] {
                if !collaborators[a as usize].contains(&b) {
                    collaborators[a as usize].push(b);
                    collaborators[b as usize].push(a);
                }
            }
        }
        papers.push(team);
    }

    // Citations: uniformly toward earlier papers (a crude
    // preferential-by-recency model is unnecessary for the experiments).
    let mut citations = Vec::new();
    for citing in 1..papers.len() {
        let n_cites = rng.random_range(0..=params.max_citations_per_paper);
        for _ in 0..n_cites {
            let cited = rng.random_range(0..citing);
            citations.push((citing as u32, cited as u32));
        }
    }
    citations.sort_unstable();
    citations.dedup();

    World {
        authors,
        papers,
        citations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_has_requested_shape() {
        let params = WorldParams::default();
        let w = generate_world(&params);
        assert_eq!(w.authors.len(), 200);
        assert_eq!(w.papers.len(), 300);
        assert!(w.reference_count() >= 300);
        for team in &w.papers {
            assert!(!team.is_empty() && team.len() <= 4);
            let mut t = team.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), team.len(), "no duplicate authors on a paper");
        }
    }

    #[test]
    fn citations_point_backwards() {
        let w = generate_world(&WorldParams::default());
        for &(citing, cited) in &w.citations {
            assert!(cited < citing);
        }
    }

    #[test]
    fn surname_clashes_exist() {
        // The last-name pool is smaller than the author count, so some
        // distinct authors must share a surname — the core difficulty of
        // the matching problem.
        let w = generate_world(&WorldParams::default());
        let mut lasts: Vec<&str> = w.authors.iter().map(|a| a.last.as_str()).collect();
        lasts.sort_unstable();
        lasts.dedup();
        assert!(lasts.len() < w.authors.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_world(&WorldParams::default());
        let b = generate_world(&WorldParams::default());
        assert_eq!(a.papers, b.papers);
        let c = generate_world(&WorldParams {
            seed: 43,
            ..Default::default()
        });
        assert_ne!(a.papers, c.papers);
    }

    #[test]
    fn collaboration_locality_densifies_coauthorship() {
        let sparse = generate_world(&WorldParams {
            collaboration_locality: 0.0,
            seed: 7,
            ..Default::default()
        });
        let dense = generate_world(&WorldParams {
            collaboration_locality: 0.95,
            seed: 7,
            ..Default::default()
        });
        let distinct_pairs = |w: &World| {
            let mut pairs = std::collections::HashSet::new();
            for team in &w.papers {
                for (i, &a) in team.iter().enumerate() {
                    for &b in &team[i + 1..] {
                        pairs.insert((a.min(b), a.max(b)));
                    }
                }
            }
            pairs.len()
        };
        // Same number of slots, but locality reuses pairs ⇒ fewer
        // distinct collaborations.
        assert!(distinct_pairs(&dense) < distinct_pairs(&sparse));
    }
}
