//! Synthetic name pools and Zipf sampling.
//!
//! Real author-name distributions are heavy-tailed: a few surnames are
//! shared by many authors (which is what makes entity matching hard). The
//! generator builds pronounceable names from syllables and assigns them
//! by Zipf-distributed draws, so the synthetic data reproduces the name
//! clash structure that drives the paper's neighborhood-size differences
//! between HEPTH and DBLP.

use rand::{Rng, RngExt};

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "f", "g", "gr", "h", "j", "k", "kr", "l", "m", "n", "p", "r", "s",
    "sh", "st", "t", "th", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ei", "ou"];
const CODAS: &[&str] = &["", "n", "r", "s", "l", "m", "ng", "rd", "tt"];

/// Generate one pronounceable name of 2–3 syllables.
pub fn synth_name(rng: &mut impl Rng) -> String {
    let syllables = rng.random_range(2..=3);
    let mut out = String::new();
    for _ in 0..syllables {
        out.push_str(ONSETS[rng.random_range(0..ONSETS.len())]);
        out.push_str(VOWELS[rng.random_range(0..VOWELS.len())]);
    }
    out.push_str(CODAS[rng.random_range(0..CODAS.len())]);
    out
}

/// A pool of distinct first and last names.
#[derive(Debug, Clone)]
pub struct NamePool {
    /// Distinct given names.
    pub first: Vec<String>,
    /// Distinct family names.
    pub last: Vec<String>,
}

impl NamePool {
    /// Build pools of the requested sizes (names are deduplicated, so
    /// the pools may be marginally smaller than requested).
    pub fn generate(rng: &mut impl Rng, n_first: usize, n_last: usize) -> Self {
        let gen_pool = |n: usize, rng: &mut dyn FnMut() -> String| {
            let mut pool: Vec<String> = (0..n * 2).map(|_| rng()).collect();
            pool.sort_unstable();
            pool.dedup();
            pool.truncate(n);
            pool
        };
        let first = gen_pool(n_first, &mut || synth_name(rng));
        let last = gen_pool(n_last, &mut || synth_name(rng));
        Self { first, last }
    }
}

/// Zipf sampler over `0..n` with exponent `s` (inverse-CDF method with a
/// precomputed table, O(log n) per draw).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Sampler over ranks `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(exponent);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n` (rank 0 most likely).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synth_names_are_nonempty_lowercase() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let n = synth_name(&mut rng);
            assert!(!n.is_empty());
            assert!(n.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn name_pool_sizes_and_uniqueness() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = NamePool::generate(&mut rng, 100, 50);
        assert!(pool.first.len() >= 90, "got {}", pool.first.len());
        assert!(pool.last.len() >= 45);
        let mut f = pool.first.clone();
        f.dedup();
        assert_eq!(f.len(), pool.first.len(), "no duplicates");
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let sampler = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0;
        const DRAWS: usize = 5000;
        for _ in 0..DRAWS {
            if sampler.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s = 1 over 1000 ranks, the top 10 carry ~39% of the mass.
        assert!(head > DRAWS / 4, "head draws: {head}");
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let sampler = ZipfSampler::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            assert!(sampler.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_rejects_empty_domain() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| synth_name(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| synth_name(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
