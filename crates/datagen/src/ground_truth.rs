//! Ground truth: the latent author behind every reference.

use crate::world::AuthorIdx;
use em_core::hash::FxHashMap;
use em_core::{EntityId, Pair};

/// Reference → true-author mapping, with cluster utilities.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    author_of: FxHashMap<EntityId, AuthorIdx>,
    clusters: FxHashMap<AuthorIdx, Vec<EntityId>>,
}

impl GroundTruth {
    /// Empty ground truth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that reference `entity` denotes true author `author`.
    pub fn record(&mut self, entity: EntityId, author: AuthorIdx) {
        self.author_of.insert(entity, author);
        self.clusters.entry(author).or_default().push(entity);
    }

    /// True author of a reference, if known.
    pub fn author_of(&self, entity: EntityId) -> Option<AuthorIdx> {
        self.author_of.get(&entity).copied()
    }

    /// Whether both endpoints denote the same true author.
    pub fn is_match(&self, pair: Pair) -> bool {
        match (self.author_of(pair.lo()), self.author_of(pair.hi())) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Number of references with a recorded author.
    pub fn len(&self) -> usize {
        self.author_of.len()
    }

    /// Whether no references are recorded.
    pub fn is_empty(&self) -> bool {
        self.author_of.is_empty()
    }

    /// Number of distinct authors that appear.
    pub fn distinct_authors(&self) -> usize {
        self.clusters.len()
    }

    /// Total number of true matching pairs: `Σ_cluster C(n, 2)`.
    pub fn true_pair_count(&self) -> usize {
        self.clusters
            .values()
            .map(|c| c.len() * (c.len() - 1) / 2)
            .sum()
    }

    /// Iterate over all true matching pairs (can be large; HEPTH-scale
    /// worlds have hundreds of thousands).
    pub fn true_pairs(&self) -> impl Iterator<Item = Pair> + '_ {
        self.clusters.values().flat_map(|cluster| {
            cluster
                .iter()
                .enumerate()
                .flat_map(move |(i, &a)| cluster[i + 1..].iter().map(move |&b| Pair::new(a, b)))
        })
    }

    /// The reference clusters (one per author that has ≥ 1 reference).
    pub fn clusters(&self) -> impl Iterator<Item = &[EntityId]> + '_ {
        self.clusters.values().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u32) -> EntityId {
        EntityId(id)
    }

    fn sample() -> GroundTruth {
        let mut gt = GroundTruth::new();
        gt.record(e(0), 10);
        gt.record(e(1), 10);
        gt.record(e(2), 10);
        gt.record(e(3), 20);
        gt.record(e(4), 20);
        gt.record(e(5), 30);
        gt
    }

    #[test]
    fn lookups() {
        let gt = sample();
        assert_eq!(gt.author_of(e(0)), Some(10));
        assert_eq!(gt.author_of(e(9)), None);
        assert!(gt.is_match(Pair::new(e(0), e(2))));
        assert!(!gt.is_match(Pair::new(e(0), e(3))));
        assert!(!gt.is_match(Pair::new(e(5), e(9))), "unknown is non-match");
    }

    #[test]
    fn pair_counting() {
        let gt = sample();
        assert_eq!(gt.len(), 6);
        assert_eq!(gt.distinct_authors(), 3);
        // C(3,2) + C(2,2) + C(1,2) = 3 + 1 + 0.
        assert_eq!(gt.true_pair_count(), 4);
        let listed: Vec<Pair> = gt.true_pairs().collect();
        assert_eq!(listed.len(), 4);
        assert!(listed.iter().all(|&p| gt.is_match(p)));
    }

    #[test]
    fn clusters_partition_references() {
        let gt = sample();
        let total: usize = gt.clusters().map(<[EntityId]>::len).sum();
        assert_eq!(total, gt.len());
    }
}
