//! Dataset profiles mirroring the paper's three evaluation datasets.
//!
//! Reference statistics from §6 of the paper:
//!
//! | dataset  | references | papers    | authors   | character |
//! |----------|-----------:|----------:|----------:|-----------|
//! | HEPTH    | 58,515     | 29,555    | 13,092    | abbreviated names → few, large neighborhoods (13K / 1.3M pairs) |
//! | DBLP     | 50,195     | 19,408    | 21,278    | full names + injected mutations → many small neighborhoods (30K / 0.5M pairs) |
//! | DBLP-BIG | 4,606,712  | 2,303,254 | —         | grid-scale (1.7M neighborhoods / 41.7M pairs) |
//!
//! Profiles default to `scale = 0.1`-ish sizes for test/bench turnaround;
//! `scaled(1.0)` reproduces the paper's counts.

use crate::noise::NoiseParams;
use crate::world::WorldParams;

/// How the `coauthor` relation is materialized from paper teams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CoauthorStyle {
    /// Adjacent author positions only (`t1–t2, t2–t3, …`), as extraction
    /// pipelines that respect author order produce. This is the topology
    /// of the paper's own Figure 1 (a path `a1–b2–c2–d1`, *not* a
    /// clique), and it is what makes evidence chains span neighborhoods —
    /// the regime message passing exists for.
    Chain,
    /// Adjacent author positions plus the closing `t_k–t1` edge. Still a
    /// subgraph of true co-authorships, but 4-author repeat teams now
    /// induce *cycles* in the pair-evidence graph — the all-or-nothing
    /// correlated sets that only maximal message passing recovers under
    /// the learned weights (a path of three weak pairs scores
    /// 3·(−2.28) + 2·2.46 < 0, while a 4-cycle scores
    /// 4·(−2.28) + 4·2.46 > 0).
    #[default]
    Ring,
    /// Full per-paper cliques (the literal "self-join on Authored").
    /// Under cliques, every pair's entire evidence closure lies inside
    /// its one-hop relational boundary, so local runs are already
    /// complete — a reproduction finding recorded in EXPERIMENTS.md.
    Clique,
}

/// A named generation profile: world shape + noise regime.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Profile name (used in reports).
    pub name: String,
    /// World-generation parameters.
    pub world: WorldParams,
    /// Reference noise parameters.
    pub noise: NoiseParams,
    /// Coauthor materialization topology.
    pub coauthor_style: CoauthorStyle,
}

impl DatasetProfile {
    /// HEPTH-style: heavy first-name abbreviation, KDD-Cup scale at 1.0.
    pub fn hepth() -> Self {
        Self {
            name: "hepth".to_owned(),
            world: WorldParams {
                n_authors: 13_092,
                n_papers: 29_555,
                max_authors_per_paper: 4,
                collaboration_locality: 0.75,
                max_citations_per_paper: 4,
                productivity_exponent: 0.85,
                last_name_pool_fraction: 0.55,
                name_zipf_exponent: 0.55,
                team_repeat: 0.30,
                seed: 0x4E47,
            },
            noise: NoiseParams {
                abbreviate_first: 0.65,
                typo: 0.04,
                swap_order: 0.10,
            },
            coauthor_style: CoauthorStyle::Ring,
        }
    }

    /// DBLP-style: full names with injected mutations.
    pub fn dblp() -> Self {
        Self {
            name: "dblp".to_owned(),
            world: WorldParams {
                n_authors: 21_278,
                n_papers: 19_408,
                max_authors_per_paper: 4,
                collaboration_locality: 0.5,
                max_citations_per_paper: 3,
                productivity_exponent: 0.8,
                last_name_pool_fraction: 0.65,
                name_zipf_exponent: 0.45,
                team_repeat: 0.25,
                seed: 0xDB1,
            },
            noise: NoiseParams {
                abbreviate_first: 0.0,
                typo: 0.20,
                swap_order: 0.05,
            },
            coauthor_style: CoauthorStyle::Ring,
        }
    }

    /// DBLP-BIG: the full-DBLP grid workload.
    pub fn dblp_big() -> Self {
        let mut profile = Self::dblp();
        profile.name = "dblp-big".to_owned();
        profile.world.n_authors = 1_200_000;
        profile.world.n_papers = 2_303_254;
        profile.world.seed = 0xB16;
        profile
    }

    /// Scale the world size by `factor` (noise regime unchanged).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.world.n_authors = ((self.world.n_authors as f64 * factor) as usize).max(4);
        self.world.n_papers = ((self.world.n_papers as f64 * factor) as usize).max(4);
        self
    }

    /// Override the seed (for multi-trial experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.world.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        let h = DatasetProfile::hepth();
        assert_eq!(h.world.n_authors, 13_092);
        assert_eq!(h.world.n_papers, 29_555);
        let d = DatasetProfile::dblp();
        assert_eq!(d.world.n_authors, 21_278);
        assert!(d.noise.abbreviate_first == 0.0 && d.noise.typo > 0.0);
        let big = DatasetProfile::dblp_big();
        assert_eq!(big.world.n_papers, 2_303_254);
    }

    #[test]
    fn scaling_shrinks_worlds() {
        let s = DatasetProfile::hepth().scaled(0.01);
        assert_eq!(s.world.n_authors, 130);
        assert_eq!(s.world.n_papers, 295);
        // Noise is independent of scale.
        assert_eq!(s.noise.abbreviate_first, 0.65);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = DatasetProfile::dblp().scaled(0.0);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = DatasetProfile::dblp().with_seed(99);
        assert_eq!(a.world.seed, 99);
        assert_eq!(a.world.n_authors, DatasetProfile::dblp().world.n_authors);
    }
}
