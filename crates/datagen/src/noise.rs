//! Reference noise: how a true author name appears in a bibliography.
//!
//! Two regimes matter for reproducing the paper's datasets:
//!
//! * **HEPTH-style abbreviation** — first names are usually reduced to
//!   initials ("V. Rastogi"), producing many name clashes, hence fewer
//!   but larger canopies (the paper: 13K neighborhoods / 1.3M pairs);
//! * **DBLP-style mutation** — full names with occasional small typos
//!   (the paper injected mutations into clean DBLP and kept the original
//!   as ground truth), producing many small canopies (30K neighborhoods /
//!   0.5M pairs).

use rand::{Rng, RngExt};

/// Noise parameters for rendering one author reference.
#[derive(Debug, Clone, Copy)]
pub struct NoiseParams {
    /// Probability of abbreviating the first name to its initial.
    pub abbreviate_first: f64,
    /// Probability of applying one random typo to the rendered name.
    pub typo: f64,
    /// Probability of rendering as `"last first"` order (bibliography
    /// style variance).
    pub swap_order: f64,
}

impl NoiseParams {
    /// No noise at all (references are exact full names).
    pub fn clean() -> Self {
        Self {
            abbreviate_first: 0.0,
            typo: 0.0,
            swap_order: 0.0,
        }
    }
}

/// One random edit: substitution, deletion, insertion, or adjacent
/// transposition at a random position (ASCII lowercase alphabet).
pub fn apply_typo(rng: &mut impl Rng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_owned();
    }
    let mut out = chars.clone();
    let pos = rng.random_range(0..chars.len());
    let random_char = (b'a' + rng.random_range(0..26u8)) as char;
    match rng.random_range(0..4u8) {
        0 => out[pos] = random_char, // substitute
        1 => {
            out.remove(pos); // delete
        }
        2 => out.insert(pos, random_char), // insert
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1); // transpose
            } else {
                out[pos] = random_char;
            }
        }
    }
    if out.is_empty() {
        s.to_owned()
    } else {
        out.into_iter().collect()
    }
}

/// Render a true `(first, last)` author as a noisy reference string.
pub fn render_reference(
    rng: &mut impl Rng,
    first: &str,
    last: &str,
    params: &NoiseParams,
) -> String {
    let first_part = if !first.is_empty() && rng.random_bool(params.abbreviate_first) {
        let initial: String = first.chars().take(1).collect();
        format!("{initial}.")
    } else {
        first.to_owned()
    };
    let mut name = if rng.random_bool(params.swap_order) {
        format!("{last}, {first_part}")
    } else {
        format!("{first_part} {last}")
    };
    if rng.random_bool(params.typo) {
        name = apply_typo(rng, &name);
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_noise_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = render_reference(&mut rng, "john", "smith", &NoiseParams::clean());
        assert_eq!(s, "john smith");
    }

    #[test]
    fn abbreviation_produces_initials() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = NoiseParams {
            abbreviate_first: 1.0,
            typo: 0.0,
            swap_order: 0.0,
        };
        assert_eq!(
            render_reference(&mut rng, "john", "smith", &params),
            "j. smith"
        );
    }

    #[test]
    fn swap_order_renders_comma_form() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = NoiseParams {
            abbreviate_first: 0.0,
            typo: 0.0,
            swap_order: 1.0,
        };
        assert_eq!(
            render_reference(&mut rng, "john", "smith", &params),
            "smith, john"
        );
    }

    #[test]
    fn typo_changes_at_most_one_edit() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let mutated = apply_typo(&mut rng, "rastogi");
            let dist = em_similarity::damerau_levenshtein("rastogi", &mutated);
            assert!(dist <= 1, "{mutated:?} is {dist} edits away");
        }
    }

    #[test]
    fn typo_on_single_char_never_empties() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert!(!apply_typo(&mut rng, "a").is_empty());
        }
    }

    #[test]
    fn typo_on_empty_string_is_noop() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(apply_typo(&mut rng, ""), "");
    }
}
