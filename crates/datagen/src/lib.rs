//! # em-datagen — synthetic bibliographies with ground truth
//!
//! The paper evaluates on HEPTH (KDD Cup 2003), a mutated DBLP snapshot,
//! and full DBLP ("DBLP-BIG"). None of those are redistributable with
//! this repository, so this crate generates synthetic bibliographic
//! worlds with the same statistical signature (see `DESIGN.md` for the
//! substitution argument):
//!
//! * a latent [`world`] of true authors (Zipf-shared names, Zipf
//!   productivity, community-structured coauthorship, backward
//!   citations);
//! * a [`noise`] model rendering each paper-author slot as a noisy
//!   *reference* — abbreviation-heavy for HEPTH, mutation-only for DBLP
//!   (the paper's own DBLP is also synthetic noise over clean data);
//! * [`profiles`] with the paper's exact reference/paper/author counts
//!   at `scale = 1.0`;
//! * a [`generator`] producing an [`em_core::Dataset`] (entities,
//!   `authored`/`coauthor`/`cites` relations) plus [`GroundTruth`].

#![warn(missing_docs)]

pub mod generator;
pub mod ground_truth;
pub mod names;
pub mod noise;
pub mod profiles;
pub mod world;

pub use generator::{generate, GeneratedDataset};
pub use ground_truth::GroundTruth;
pub use noise::NoiseParams;
pub use profiles::{CoauthorStyle, DatasetProfile};
pub use world::{generate_world, World, WorldParams};
