//! Rendering a world into an entity-matching [`Dataset`] with ground
//! truth.
//!
//! Entities: one `author_ref` per paper-author slot (with the noisy name
//! as its `name` attribute plus parsed `fname`/`lname`), and one `paper`
//! per paper. Relations: `authored(ref, paper)`, `coauthor(ref, ref)`
//! within a paper (the paper notes `Coauthor` is derivable from
//! `Authored` by a self-join — both are materialized for matcher
//! convenience), and `cites(paper, paper)`.

use crate::ground_truth::GroundTruth;
use crate::noise::render_reference;
use crate::profiles::DatasetProfile;
use crate::world::{generate_world, World};
use em_core::{Dataset, EntityId};
use em_similarity::{FeatureCache, FeatureConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated instance: the dataset, its ground truth, and handles.
#[derive(Debug)]
pub struct GeneratedDataset {
    /// The matchable dataset (similarity annotation is the blocking
    /// crate's job).
    pub dataset: Dataset,
    /// Reference → true author.
    pub truth: GroundTruth,
    /// All author-reference entities, in generation order.
    pub references: Vec<EntityId>,
    /// All paper entities, indexed by world paper index.
    pub papers: Vec<EntityId>,
    /// Interned string features of every reference's `name` key, built
    /// once at render time. The blocking pipeline
    /// (`em_blocking::block_dataset_with_features`) and any profile
    /// evaluation over the generated names read from this one cache
    /// instead of re-tokenizing and re-interning the corpus.
    pub features: FeatureCache,
}

/// Generate a dataset from a profile (deterministic per profile seed).
pub fn generate(profile: &DatasetProfile) -> GeneratedDataset {
    let world = generate_world(&profile.world);
    render(profile, &world)
}

/// Render an already generated world (exposed so tests can inspect the
/// same world under different noise regimes).
pub fn render(profile: &DatasetProfile, world: &World) -> GeneratedDataset {
    // Separate RNG stream for noise so world structure and noise are
    // independently reproducible.
    let mut noise_rng = StdRng::seed_from_u64(profile.world.seed ^ 0x00_15_E0_0D);
    let mut dataset = Dataset::new();
    let author_ty = dataset.entities.intern_type("author_ref");
    let paper_ty = dataset.entities.intern_type("paper");
    let name_attr = dataset.entities.intern_attr("name");
    let fname_attr = dataset.entities.intern_attr("fname");
    let lname_attr = dataset.entities.intern_attr("lname");
    let title_attr = dataset.entities.intern_attr("title");
    let authored = dataset.relations.declare("authored", false);
    let coauthor = dataset.relations.declare("coauthor", true);
    let cites = dataset.relations.declare("cites", false);

    let mut truth = GroundTruth::new();
    let mut references = Vec::with_capacity(world.reference_count());
    let mut papers = Vec::with_capacity(world.papers.len());
    let mut points: Vec<(EntityId, String)> = Vec::with_capacity(world.reference_count());

    for (paper_idx, team) in world.papers.iter().enumerate() {
        let paper_entity = dataset.entities.add_entity(paper_ty);
        dataset
            .entities
            .set_attr(paper_entity, title_attr, format!("paper-{paper_idx}"));
        papers.push(paper_entity);

        let mut team_refs: Vec<EntityId> = Vec::with_capacity(team.len());
        for &author_idx in team {
            let author = &world.authors[author_idx as usize];
            let rendered =
                render_reference(&mut noise_rng, &author.first, &author.last, &profile.noise);
            let key = em_similarity::normalize_name(&rendered);
            let parsed = em_similarity::NameKey::parse(&rendered);
            let reference = dataset.entities.add_entity(author_ty);
            points.push((reference, key.clone()));
            dataset.entities.set_attr(reference, name_attr, key);
            dataset
                .entities
                .set_attr(reference, fname_attr, parsed.first);
            dataset
                .entities
                .set_attr(reference, lname_attr, parsed.last);
            dataset
                .relations
                .add_tuple(authored, reference, paper_entity);
            truth.record(reference, author_idx);
            references.push(reference);
            team_refs.push(reference);
        }
        match profile.coauthor_style {
            crate::profiles::CoauthorStyle::Clique => {
                for (i, &a) in team_refs.iter().enumerate() {
                    for &b in &team_refs[i + 1..] {
                        dataset.relations.add_tuple(coauthor, a, b);
                    }
                }
            }
            crate::profiles::CoauthorStyle::Chain => {
                for pair in team_refs.windows(2) {
                    dataset.relations.add_tuple(coauthor, pair[0], pair[1]);
                }
            }
            crate::profiles::CoauthorStyle::Ring => {
                for pair in team_refs.windows(2) {
                    dataset.relations.add_tuple(coauthor, pair[0], pair[1]);
                }
                // Close the ring for half the papers: closed rings create
                // the cyclic all-or-nothing clusters only MMP recovers,
                // open chains create the anchored multi-hop chains SMP
                // recovers; real extraction noise produces both.
                if team_refs.len() > 2 && rand::RngExt::random_bool(&mut noise_rng, 0.5) {
                    dataset.relations.add_tuple(
                        coauthor,
                        team_refs[team_refs.len() - 1],
                        team_refs[0],
                    );
                }
            }
        }
    }
    for &(citing, cited) in &world.citations {
        dataset
            .relations
            .add_tuple(cites, papers[citing as usize], papers[cited as usize]);
    }

    // One corpus pass interns every key's tokens, n-grams, TF-IDF vector
    // and parsed name; blocking and profile evaluation share it.
    let features =
        FeatureCache::from_points(&points, dataset.entities.len(), FeatureConfig::default());

    GeneratedDataset {
        dataset,
        truth,
        references,
        papers,
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DatasetProfile;

    fn tiny(profile: DatasetProfile) -> GeneratedDataset {
        generate(&profile.scaled(0.004))
    }

    #[test]
    fn generated_shape_is_consistent() {
        let g = tiny(DatasetProfile::dblp());
        assert_eq!(g.truth.len(), g.references.len());
        assert_eq!(
            g.dataset.entities.len(),
            g.references.len() + g.papers.len()
        );
        // Every reference has a non-empty name.
        for &r in &g.references {
            let name = g.dataset.entities.attr(r, "name").expect("name set");
            assert!(!name.is_empty());
        }
    }

    #[test]
    fn coauthors_share_a_paper() {
        let g = tiny(DatasetProfile::dblp());
        let co = g.dataset.relations.relation_id("coauthor").unwrap();
        let authored = g.dataset.relations.relation_id("authored").unwrap();
        for &(a, b) in g.dataset.relations.tuples(co) {
            let papers_a = g.dataset.relations.neighbors_out(authored, a);
            let papers_b = g.dataset.relations.neighbors_out(authored, b);
            assert!(
                papers_a.iter().any(|p| papers_b.contains(p)),
                "coauthor tuple without shared paper"
            );
        }
    }

    #[test]
    fn hepth_profile_abbreviates_more_than_dblp() {
        let count_initials = |g: &GeneratedDataset| {
            g.references
                .iter()
                .filter(|&&r| {
                    g.dataset
                        .entities
                        .attr(r, "fname")
                        .is_some_and(|f| f.chars().count() <= 1)
                })
                .count() as f64
                / g.references.len() as f64
        };
        let hepth = tiny(DatasetProfile::hepth());
        let dblp = tiny(DatasetProfile::dblp());
        assert!(count_initials(&hepth) > 0.5);
        assert!(count_initials(&dblp) < 0.2);
    }

    #[test]
    fn true_clusters_have_consistent_surnames_mostly() {
        // Sanity: references of the same author should usually share a
        // surname (modulo typos).
        let g = tiny(DatasetProfile::dblp());
        let mut consistent = 0usize;
        let mut total = 0usize;
        for cluster in g.truth.clusters() {
            if cluster.len() < 2 {
                continue;
            }
            let lname = |e| g.dataset.entities.attr(e, "lname").unwrap_or("");
            let first = lname(cluster[0]);
            for &other in &cluster[1..] {
                total += 1;
                if lname(other) == first {
                    consistent += 1;
                }
            }
        }
        if total > 0 {
            assert!(
                consistent as f64 / total as f64 > 0.5,
                "{consistent}/{total}"
            );
        }
    }

    #[test]
    fn shared_feature_cache_covers_every_reference() {
        let g = tiny(DatasetProfile::hepth());
        assert_eq!(g.features.len(), g.references.len());
        for &r in &g.references {
            let fv = g.features.get(r).expect("every reference has features");
            assert_eq!(
                fv.key,
                g.dataset.entities.attr(r, "name").expect("name"),
                "cache key is the stored blocking key"
            );
            assert!(!fv.grams.is_empty() || fv.key.len() < 3);
        }
        // Papers are not in the name corpus.
        for &p in &g.papers {
            assert!(g.features.get(p).is_none());
        }
    }

    #[test]
    fn determinism() {
        let a = generate(&DatasetProfile::dblp().scaled(0.002));
        let b = generate(&DatasetProfile::dblp().scaled(0.002));
        assert_eq!(a.references.len(), b.references.len());
        for (&ra, &rb) in a.references.iter().zip(&b.references) {
            assert_eq!(
                a.dataset.entities.attr(ra, "name"),
                b.dataset.entities.attr(rb, "name")
            );
        }
    }
}
