//! Deterministic fault injection for the epoch-fenced runtime.
//!
//! A [`FaultPlan`] tells specific shard drivers to misbehave at
//! specific epochs — panic mid-drain, go silent at a fence, or delay an
//! epoch response — so the coordinator's recovery paths (panic
//! catching, bounded fence timeouts with retry/backoff, sequential
//! re-execution of a dead shard's work) are exercised on demand and
//! reproducibly. Plans are plain data: build one by hand for a targeted
//! test, or derive one from a seed ([`FaultPlan::seeded`]) so a soak
//! run injects a different, reproducible fault per update.
//!
//! Faults are **crash faults**, not corruption faults: a faulty shard
//! stops contributing (or contributes late), it never contributes wrong
//! evidence. Recovery therefore preserves byte-identical outputs — the
//! coordinator re-executes the lost shard's components from the
//! broadcast history, and the fixpoint is independent of evaluation
//! order (the consistency theorems).

use std::time::Duration;

/// One way a shard driver can misbehave, pinned to an epoch (1-based:
/// epoch 1 is the initial full evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the driver thread during the epoch's drain. The
    /// coordinator observes the death via the thread handle and
    /// re-executes the shard's components inline.
    Panic {
        /// Epoch at which the driver panics.
        epoch: u64,
    },
    /// Process the epoch but never send its response — and stay silent
    /// for every later epoch — simulating a hung fence. The coordinator
    /// declares the shard dead after its timeout budget and recovers;
    /// the stalled thread is joined at `Stop` and its outcome
    /// discarded.
    Stall {
        /// Epoch from which the driver goes silent.
        epoch: u64,
    },
    /// Delay the epoch's response by `delay` — a slow exchange rather
    /// than a lost one. Shorter than the timeout budget it only burns
    /// retries; longer, it degenerates into a stall (and the late
    /// response is dropped on arrival).
    Delay {
        /// Epoch whose response is delayed.
        epoch: u64,
        /// How long the response is held back.
        delay: Duration,
    },
}

impl FaultKind {
    /// The epoch this fault fires at.
    pub fn epoch(&self) -> u64 {
        match *self {
            FaultKind::Panic { epoch }
            | FaultKind::Stall { epoch }
            | FaultKind::Delay { epoch, .. } => epoch,
        }
    }
}

/// A deterministic schedule of shard faults: `(shard, fault)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults — the default for every runtime entry
    /// point).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a panic fault: shard `shard` panics during epoch `epoch`.
    pub fn panic_shard(mut self, shard: usize, epoch: u64) -> Self {
        self.faults.push((shard, FaultKind::Panic { epoch }));
        self
    }

    /// Add a stall fault: shard `shard` goes silent from epoch `epoch`.
    pub fn stall_shard(mut self, shard: usize, epoch: u64) -> Self {
        self.faults.push((shard, FaultKind::Stall { epoch }));
        self
    }

    /// Add a delay fault: shard `shard` holds epoch `epoch`'s response
    /// back by `delay`.
    pub fn delay_response(mut self, shard: usize, epoch: u64, delay: Duration) -> Self {
        self.faults.push((shard, FaultKind::Delay { epoch, delay }));
        self
    }

    /// Derive a one-fault plan deterministically from `seed`: a
    /// reproducible choice of victim shard (`< shards`), epoch (1 or 2
    /// — the epochs every run has), and fault kind. The soak harness
    /// calls this per update so thousands of updates exercise all three
    /// recovery paths without any run being unreproducible. `shards ==
    /// 0` yields an empty plan.
    pub fn seeded(seed: u64, shards: usize) -> Self {
        if shards == 0 {
            return Self::new();
        }
        let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let shard = (next() % shards as u64) as usize;
        let epoch = 1 + next() % 2;
        let kind = match next() % 3 {
            0 => FaultKind::Panic { epoch },
            1 => FaultKind::Stall { epoch },
            _ => FaultKind::Delay {
                epoch,
                delay: Duration::from_millis(1 + next() % 5),
            },
        };
        Self {
            faults: vec![(shard, kind)],
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The faults scheduled for one shard, in insertion order.
    pub fn for_shard(&self, shard: usize) -> Vec<FaultKind> {
        self.faults
            .iter()
            .filter(|(s, _)| *s == shard)
            .map(|&(_, k)| k)
            .collect()
    }
}

/// Runtime knobs of the epoch coordinator: fault injection, the
/// fence-timeout budget, and per-fence invariant checking. The
/// plain `shard_*_planned` entry points use [`RuntimeOptions::default`];
/// the `_opts` variants take an explicit value.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// First fence-wait timeout. Each retry doubles it (backoff), so
    /// the total budget before a silent shard is declared dead is
    /// `fence_timeout * (2^(fence_retries + 1) - 1)`.
    pub fence_timeout: Duration,
    /// Extra timed attempts after the first timeout expires.
    pub fence_retries: u32,
    /// Faults to inject (empty = healthy run).
    pub faults: FaultPlan,
    /// Check evidence-log replay, evidence disjointness, union-find
    /// closure, and tombstone consistency at every epoch fence,
    /// recording results in the run's [`em_core::framework::RunStats`].
    pub check_invariants: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            fence_timeout: Duration::from_secs(10),
            fence_retries: 3,
            faults: FaultPlan::new(),
            check_invariants: false,
        }
    }
}

impl RuntimeOptions {
    /// Options that inject `faults` and keep every other default.
    pub fn with_faults(faults: FaultPlan) -> Self {
        Self {
            faults,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_schedule_per_shard() {
        let plan = FaultPlan::new()
            .panic_shard(0, 2)
            .stall_shard(2, 1)
            .delay_response(0, 1, Duration::from_millis(3));
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.for_shard(0),
            vec![
                FaultKind::Panic { epoch: 2 },
                FaultKind::Delay {
                    epoch: 1,
                    delay: Duration::from_millis(3)
                }
            ]
        );
        assert_eq!(plan.for_shard(1), vec![]);
        assert_eq!(plan.for_shard(2), vec![FaultKind::Stall { epoch: 1 }]);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = FaultPlan::seeded(seed, 4);
            let b = FaultPlan::seeded(seed, 4);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            assert_eq!(a.len(), 1);
            let (shard, kind) = a.faults[0];
            assert!(shard < 4);
            assert!((1..=2).contains(&kind.epoch()));
        }
        assert!(FaultPlan::seeded(7, 0).is_empty());
        // All three kinds appear across seeds.
        let kinds: std::collections::HashSet<u8> = (0..64)
            .map(|s| match FaultPlan::seeded(s, 4).faults[0].1 {
                FaultKind::Panic { .. } => 0,
                FaultKind::Stall { .. } => 1,
                FaultKind::Delay { .. } => 2,
            })
            .collect();
        assert_eq!(kinds.len(), 3, "seeds cover panic, stall, and delay");
    }

    #[test]
    fn default_options_are_fault_free() {
        let opts = RuntimeOptions::default();
        assert!(opts.faults.is_empty());
        assert!(!opts.check_invariants);
        assert!(opts.fence_retries > 0);
        assert!(opts.fence_timeout > Duration::ZERO);
    }
}
