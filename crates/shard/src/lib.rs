//! # em-shard — the sharded message-passing runtime
//!
//! The paper's headline scale result (Table 1: DBLP-BIG on a 30-machine
//! grid, ~11× speedup) was previously only *simulated* by replaying
//! measured costs onto virtual machines. This crate is the real thing,
//! at thread granularity: the [`em_core::framework::DependencyIndex`]
//! is partitioned into shards along **neighborhood-overlap connected
//! components** — in the evidence-routing sense of overlap, two
//! neighborhoods sharing a candidate pair
//! ([`em_core::framework::DependencyIndex::evidence_components`]) —
//! components are packed onto `k` shards with a locality-aware LPT
//! balancer keyed by estimated (or measured) neighborhood cost
//! ([`partition`]), and one delta-driven scheduler per shard runs on
//! its own thread with cross-shard evidence exchanged as epoch-fenced
//! delta messages over channels ([`runtime`]), converging to a
//! deterministic global fixpoint byte-identical to the single-machine
//! run.
//!
//! Why components are the unit of placement, what happens when one
//! component dwarfs the share (real canopy covers chain into exactly
//! that), and what crosses shards anyway, is documented on
//! [`partition`] and [`runtime`]; the one-paragraph version: all
//! *activation* is component-local, so a shard is self-driving within
//! an epoch, but MMP's promotion check reads the whole `M+` and the
//! message-merge closure is global — so every shard keeps an evidence
//! replica lagged by at most one epoch, maximal messages flow to the
//! coordinator's single store, and supermodularity makes promotion
//! against a lagged replica sound and eventually complete.

#![warn(missing_docs)]

pub mod fault;
pub mod partition;
pub mod runtime;

pub use fault::{FaultKind, FaultPlan, RuntimeOptions};
pub use partition::{estimate_costs, PlacementUnit, ShardPlan, SplitPolicy};
#[allow(deprecated)]
pub use runtime::{shard_mmp, shard_smp};
pub use runtime::{
    shard_mmp_planned, shard_mmp_planned_opts, shard_smp_planned, shard_smp_planned_opts,
    ShardConfig, ShardLoad, ShardReport,
};
