//! Evidence-component partitioning and the locality-aware balancer.
//!
//! The preferred unit of placement is an **evidence component**
//! ([`DependencyIndex::evidence_components`]): a connected component of
//! the graph whose edges are "these two neighborhoods share a candidate
//! pair". That is the exact routing adjacency — one neighborhood's
//! output is evidence for another precisely when they share a pair — so
//! a shard that owns whole components is self-driving: every message
//! it generates activates only its own neighborhoods, within the same
//! epoch, and every pair of overlapping maximal messages originates on
//! one shard.
//!
//! Real canopy covers, however, chain: on the hepth/dblp workloads one
//! evidence component carries ~99% of the estimated cost, and a
//! partition that never splits it degenerates to a single busy shard.
//! The balancer therefore supports two policies for components whose
//! cost reaches the ideal per-shard share `total/k`:
//!
//! * [`SplitPolicy::Pin`] — keep the component whole; LPT places it
//!   alone on a shard (provably: nothing joins it until every other
//!   shard is at least as loaded, which the remaining mass cannot
//!   reach). Strict locality, no balance.
//! * [`SplitPolicy::Split`] (default) — break the oversized component
//!   into per-neighborhood placement units so LPT can balance them.
//!   Boundary pairs then take one epoch fence to cross shards, and the
//!   runtime centralizes message-store closure at the coordinator
//!   (see [`crate::runtime`]) — which it does unconditionally, so
//!   correctness never depends on the policy.
//!
//! Packing is LPT (longest processing time first): units sorted by
//! descending cost, each placed on the currently least-loaded shard —
//! within 4/3 of the optimal makespan (Graham's bound), deterministic,
//! and the same discipline the grid simulator's
//! `Assignment::Lpt` mode replays.

use em_core::cover::{Cover, NeighborhoodId};
use em_core::framework::DependencyIndex;
use em_core::Dataset;

/// What to do with an evidence component whose cost reaches the ideal
/// per-shard share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Keep it whole; LPT pins it alone on a shard.
    Pin,
    /// Break it into per-neighborhood units so the load balances.
    #[default]
    Split,
}

/// Deterministic per-neighborhood cost estimate, in abstract units.
///
/// The matcher's per-neighborhood cost is superlinear in the number of
/// matching decisions (the paper's own observation behind SMP's speed),
/// so the estimate is quadratic in the candidate-pair count plus a
/// linear grounding term; `+1` keeps every neighborhood visible to the
/// balancer. Callers with measured costs (a previous run's trace) can
/// pass those instead — [`ShardPlan::build`] only sees the slice.
pub fn estimate_costs(dataset: &Dataset, cover: &Cover) -> Vec<u64> {
    cover
        .ids()
        .map(|id| {
            let view = cover.view(dataset, id);
            let pairs = view.candidate_pairs().len() as u64;
            let members = view.len() as u64;
            pairs * pairs + members + 1
        })
        .collect()
}

/// One unit the balancer places: a whole evidence component, or a
/// single neighborhood of a split one.
#[derive(Debug, Clone)]
pub struct PlacementUnit {
    /// Member neighborhoods, sorted ascending.
    pub neighborhoods: Vec<NeighborhoodId>,
    /// Summed cost.
    pub cost: u64,
    /// Index of the evidence component this unit came from.
    pub component: usize,
    /// Whether the unit is a fragment of an oversized component.
    pub split: bool,
}

/// The partition one sharded run executes.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Evidence components, each sorted ascending, ordered by smallest
    /// member id.
    pub components: Vec<Vec<NeighborhoodId>>,
    /// Summed neighborhood cost of each component.
    pub component_cost: Vec<u64>,
    /// The placement units LPT packed.
    pub units: Vec<PlacementUnit>,
    /// Shard index of each unit.
    pub unit_shard: Vec<usize>,
    /// Member neighborhoods of each shard, sorted ascending.
    pub shards: Vec<Vec<NeighborhoodId>>,
    /// Summed estimated cost of each shard.
    pub shard_cost: Vec<u64>,
    /// Oversized components broken into per-neighborhood units.
    pub split_components: usize,
    /// Oversized components kept whole (LPT pins each solo): every
    /// oversized component under [`SplitPolicy::Pin`], and — under
    /// [`SplitPolicy::Split`] — oversized components of a single
    /// neighborhood, which have nothing to split.
    pub pinned_components: usize,
    /// The per-neighborhood costs the plan was built from.
    pub costs: Vec<u64>,
    /// The split policy the plan was built with (re-used by
    /// [`ShardPlan::replan_from`]).
    pub policy: SplitPolicy,
}

impl ShardPlan {
    /// Partition `index`'s evidence components onto `shards` shards by
    /// LPT over `costs` (one entry per neighborhood).
    ///
    /// # Panics
    /// Panics when `shards` is zero or `costs` does not cover every
    /// neighborhood of the index.
    pub fn build(
        index: &DependencyIndex,
        shards: usize,
        costs: &[u64],
        policy: SplitPolicy,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        let components = index.evidence_components();
        let component_cost: Vec<u64> = components
            .iter()
            .map(|c| c.iter().map(|id| costs[id.index()]).sum())
            .collect();
        let total: u64 = component_cost.iter().sum();
        let share = (total / shards as u64).max(1);

        let mut units: Vec<PlacementUnit> = Vec::new();
        let mut split_components = 0usize;
        let mut pinned_components = 0usize;
        for (i, comp) in components.iter().enumerate() {
            let oversized = shards > 1 && component_cost[i] >= share;
            if oversized && policy == SplitPolicy::Split && comp.len() > 1 {
                split_components += 1;
                for &id in comp {
                    units.push(PlacementUnit {
                        neighborhoods: vec![id],
                        cost: costs[id.index()],
                        component: i,
                        split: true,
                    });
                }
            } else {
                if oversized {
                    pinned_components += 1;
                }
                units.push(PlacementUnit {
                    neighborhoods: comp.clone(),
                    cost: component_cost[i],
                    component: i,
                    split: false,
                });
            }
        }

        // LPT: most expensive unit first onto the least-loaded shard;
        // ties broken by smallest first-neighborhood id, then shard id —
        // fully deterministic.
        let mut order: Vec<usize> = (0..units.len()).collect();
        order.sort_by_key(|&u| (std::cmp::Reverse(units[u].cost), units[u].neighborhoods[0]));
        let mut unit_shard = vec![0usize; units.len()];
        let mut shard_cost = vec![0u64; shards];
        for &u in &order {
            let s = shard_cost
                .iter()
                .enumerate()
                .min_by_key(|&(si, c)| (*c, si))
                .map(|(si, _)| si)
                .expect("at least one shard");
            unit_shard[u] = s;
            shard_cost[s] += units[u].cost;
        }

        let mut shard_members: Vec<Vec<NeighborhoodId>> = vec![Vec::new(); shards];
        for (u, unit) in units.iter().enumerate() {
            shard_members[unit_shard[u]].extend(unit.neighborhoods.iter().copied());
        }
        for members in &mut shard_members {
            members.sort_unstable();
        }

        Self {
            components,
            component_cost,
            units,
            unit_shard,
            shards: shard_members,
            shard_cost,
            split_components,
            pinned_components,
            costs: costs.to_vec(),
            policy,
        }
    }

    /// Measured-cost re-planning: rebuild the partition with the same
    /// shard count and policy, but with the balancer's cost slice
    /// replaced by a previous run's **measured** per-neighborhood busy
    /// times (`ShardReport::measured`, nanoseconds, summed over visits).
    /// Neighborhoods the report did not measure fall back to cost 1,
    /// the cheapest unit, so they cannot displace measured load — which
    /// means the report should cover (nearly) every neighborhood to be
    /// a sane basis. Cold runs measure everything; warm-started runs
    /// skip unchanged views and produce sparse traces, so callers (the
    /// session does this) should only re-plan from full-coverage
    /// reports. The deterministic estimate the original plan used is
    /// thereby corrected by exactly the skew the estimate got wrong;
    /// `table1_grid` prints the two plans side by side.
    pub fn replan_from(&self, index: &DependencyIndex, report: &crate::ShardReport) -> ShardPlan {
        let mut costs = vec![1u64; self.costs.len()];
        for &(id, busy) in &report.measured {
            if id.index() < costs.len() {
                costs[id.index()] = (busy.as_nanos() as u64).max(1);
            }
        }
        ShardPlan::build(index, self.shards.len(), &costs, self.policy)
    }

    /// Repair the plan for a cover that **changed shape** — a churned
    /// session's re-block renumbers neighborhoods and can shrink, grow,
    /// split, or merge evidence components. The previous plan's
    /// neighborhood-indexed state (costs, unit membership, measured
    /// traces) is meaningless against the new ids, so repair keeps only
    /// what *is* stable — the shard count and the split policy — and
    /// re-partitions the new index's components over fresh `costs`.
    /// Handles shrunk covers gracefully: with fewer components than
    /// shards the spares are left empty, exactly as [`ShardPlan::build`]
    /// does, and an empty cover yields an all-empty plan.
    pub fn repair(&self, index: &DependencyIndex, costs: &[u64]) -> ShardPlan {
        ShardPlan::build(index, self.shards.len(), costs, self.policy)
    }

    /// `max / mean` of the estimated shard loads (1.0 = perfectly
    /// balanced; empty shards count into the mean, as in the grid
    /// simulator's skew).
    pub fn est_skew(&self) -> f64 {
        skew(&self.shard_cost)
    }

    /// Neighborhood count of the largest evidence component.
    pub fn largest_component(&self) -> usize {
        self.components.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Cost of the most expensive evidence component.
    pub fn largest_component_cost(&self) -> u64 {
        self.component_cost.iter().copied().max().unwrap_or(0)
    }

    /// Units placed on shard `s`.
    pub fn units_on(&self, s: usize) -> usize {
        self.unit_shard.iter().filter(|&&a| a == s).count()
    }
}

/// `max / mean` of a load vector; 1.0 when empty or all-zero.
pub(crate) fn skew(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if loads.is_empty() || total == 0 {
        return 1.0;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    max / (total as f64 / loads.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::testing::paper_example;

    fn paper_plan(k: usize, policy: SplitPolicy) -> (ShardPlan, Vec<u64>, usize) {
        let (ds, cover, _, _) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        let costs = estimate_costs(&ds, &cover);
        (
            ShardPlan::build(&index, k, &costs, policy),
            costs,
            cover.len(),
        )
    }

    #[test]
    fn plan_partitions_every_neighborhood_exactly_once() {
        for policy in [SplitPolicy::Pin, SplitPolicy::Split] {
            for k in [1, 2, 3, 7] {
                let (plan, costs, n) = paper_plan(k, policy);
                assert_eq!(plan.shards.len(), k);
                let mut seen: Vec<NeighborhoodId> = plan.shards.iter().flatten().copied().collect();
                seen.sort_unstable();
                let all: Vec<NeighborhoodId> = (0..n as u32).map(NeighborhoodId).collect();
                assert_eq!(seen, all, "k={k}: every neighborhood on exactly one shard");
                assert_eq!(
                    plan.shard_cost.iter().sum::<u64>(),
                    costs.iter().sum::<u64>()
                );
                // Units of unsplit components land whole.
                for (u, unit) in plan.units.iter().enumerate() {
                    if !unit.split {
                        assert_eq!(unit.neighborhoods, plan.components[unit.component]);
                    }
                    let shard = &plan.shards[plan.unit_shard[u]];
                    assert!(unit
                        .neighborhoods
                        .iter()
                        .all(|id| shard.binary_search(id).is_ok()));
                }
            }
        }
    }

    #[test]
    fn pin_policy_keeps_a_giant_component_whole_and_solo() {
        let (ds, cover, _, _) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        // Rig the costs: neighborhood 0's component dwarfs everything.
        let mut costs = vec![1u64; cover.len()];
        costs[0] = 1000;
        let plan = ShardPlan::build(&index, 3, &costs, SplitPolicy::Pin);
        assert!(plan.pinned_components >= 1);
        assert_eq!(plan.split_components, 0);
        let giant = plan
            .units
            .iter()
            .position(|u| u.neighborhoods.contains(&NeighborhoodId(0)))
            .expect("unit of n0");
        let giant_shard = plan.unit_shard[giant];
        for (u, &s) in plan.unit_shard.iter().enumerate() {
            if u != giant {
                assert_ne!(s, giant_shard, "unit {u} must avoid the pinned shard");
            }
        }
        assert!(plan.est_skew() > 1.0, "a pinned giant skews the plan");
    }

    #[test]
    fn split_policy_balances_a_giant_component() {
        let (ds, cover, _, _) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        // Make one multi-neighborhood component oversized but splittable.
        let component_of_0 = index
            .evidence_components()
            .into_iter()
            .find(|c| c.contains(&NeighborhoodId(0)))
            .expect("component of n0");
        let mut costs = vec![1u64; cover.len()];
        for id in &component_of_0 {
            costs[id.index()] = 100;
        }
        let pin = ShardPlan::build(&index, 2, &costs, SplitPolicy::Pin);
        let split = ShardPlan::build(&index, 2, &costs, SplitPolicy::Split);
        if component_of_0.len() > 1 {
            assert_eq!(split.split_components, 1);
            assert!(
                split.est_skew() <= pin.est_skew(),
                "splitting must not balance worse ({} vs {})",
                split.est_skew(),
                pin.est_skew()
            );
        }
    }

    #[test]
    fn repair_re_partitions_a_shrunk_cover() {
        use em_core::{Dataset, EntityId, Pair, SimLevel};
        let (plan, _, _) = paper_plan(4, SplitPolicy::Split);
        // A much smaller post-churn world: two disjoint components.
        let mut ds = Dataset::new();
        let ty = ds.entities.intern_type("t");
        for _ in 0..4 {
            ds.entities.add_entity(ty);
        }
        ds.set_similar(Pair::new(EntityId(0), EntityId(1)), SimLevel(1));
        ds.set_similar(Pair::new(EntityId(2), EntityId(3)), SimLevel(1));
        let cover = em_core::Cover::from_neighborhoods(vec![
            vec![EntityId(0), EntityId(1)],
            vec![EntityId(2), EntityId(3)],
        ]);
        let index = DependencyIndex::build(&ds, &cover);
        let repaired = plan.repair(&index, &[3, 5]);
        assert_eq!(repaired.shards.len(), 4, "shard count survives");
        assert_eq!(repaired.policy, plan.policy);
        let mut seen: Vec<NeighborhoodId> = repaired.shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![NeighborhoodId(0), NeighborhoodId(1)]);
        assert_eq!(
            repaired.shards.iter().filter(|s| s.is_empty()).count(),
            2,
            "spare shards stay empty"
        );
    }

    #[test]
    fn more_shards_than_units_leaves_spares_empty() {
        let (plan, _, _) = paper_plan(16, SplitPolicy::Pin);
        let non_empty = plan.shards.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(non_empty, plan.units.len().min(16));
    }

    #[test]
    fn build_is_deterministic() {
        let (a, _, _) = paper_plan(4, SplitPolicy::Split);
        let (b, _, _) = paper_plan(4, SplitPolicy::Split);
        assert_eq!(a.unit_shard, b.unit_shard);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.shard_cost, b.shard_cost);
    }

    #[test]
    fn skew_of_balanced_loads_is_one() {
        assert!((skew(&[5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((skew(&[]) - 1.0).abs() < 1e-12);
        assert!((skew(&[0, 0]) - 1.0).abs() < 1e-12);
        assert!((skew(&[9, 3]) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = paper_plan(0, SplitPolicy::Split);
    }
}
