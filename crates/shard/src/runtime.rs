//! The epoch-fenced sharded runtime.
//!
//! One [`em_core::framework::SmpDriver`]/[`MmpDriver`] per shard, each
//! on its own thread with a [`DependencyIndex`] restricted to its
//! member neighborhoods, exchanging evidence as **epoch-fenced delta
//! messages** over channels:
//!
//! ```text
//!            ┌─ Epoch{delta} ──▶ shard 0: absorb → fence → drain ─┐
//! coordinator├─ Epoch{delta} ──▶ shard 1: absorb → fence → drain ─┤ EpochDone{delta,
//!            └─ Epoch{delta} ──▶ shard 2: absorb → fence → drain ─┘            messages}
//!                  ▲                                              │
//!                  └─ merge · message closure · promote ◀─────────┘
//! ```
//!
//! Within an epoch a shard runs its delta-driven scheduler to local
//! quiescence — intra-shard evidence takes effect immediately, which is
//! what the component-aligned placement buys. Cross-shard evidence
//! travels once per epoch: the coordinator folds every shard's
//! produced delta into the global epoch-tracked evidence (pairs that
//! raced in from several shards dedup against it), merges the shards'
//! maximal messages into the **one global
//! [`em_core::framework::MessageStore`]**, promotes to fixpoint, and
//! broadcasts the fresh pairs back out. Centralizing the store is what
//! makes splitting an oversized evidence component sound: two messages
//! sharing a pair may then originate on different shards, and the
//! paper's `(T ∪ TC)*` merge closure is only maintainable where both
//! are visible. The matcher-dominated work — base evaluations and
//! conditioned probes, with their per-shard local-evidence caches and
//! probe memos — never leaves the shards; what crosses the boundary is
//! pairs and message handles.
//!
//! **Termination** is a by-product of the fence: the coordinator only
//! inspects the merged delta once all `k` responses for the epoch are
//! in, so "all shards idle and no delta in flight" reduces to "this
//! epoch's merged delta is empty", at which point it broadcasts `Stop`.
//!
//! **Determinism**: each shard's schedule is deterministic, responses
//! are reduced in shard-id order, and the fixpoint itself is
//! independent of evaluation order (the consistency theorems; promotion
//! against a one-epoch-stale replica is sound for supermodular models
//! and retried when the missing evidence arrives). The final match set
//! is byte-identical to the single-machine run's.

use crate::fault::{FaultKind, RuntimeOptions};
use crate::partition::{estimate_costs, skew, ShardPlan, SplitPolicy};
use crossbeam::channel::{self, Receiver, Sender};
use em_core::cover::{Cover, NeighborhoodId};
use em_core::framework::{
    mark_dirty_around, promote_dirty, CertificateBank, CertificateSet, DependencyIndex, EvalTrace,
    InvariantChecker, MemoBank, MessageStore, MmpConfig, MmpDriver, ProbeMemo, RunStats, SmpDriver,
    WarmStart,
};
use em_core::{
    Dataset, Evidence, GlobalScorer, MatchOutput, Matcher, Pair, PairSet, ProbabilisticMatcher,
};
use std::time::{Duration, Instant};

/// Sharded-runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shards (each runs on its own thread).
    pub shards: usize,
    /// What to do with evidence components too big to balance.
    pub policy: SplitPolicy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            policy: SplitPolicy::default(),
        }
    }
}

impl ShardConfig {
    /// `shards` shards with the default split policy.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Default::default()
        }
    }
}

/// Per-shard load figures of one run.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Member neighborhoods.
    pub neighborhoods: usize,
    /// Placement units (whole components or split fragments) assigned.
    pub units: usize,
    /// Estimated cost (the balancer's units).
    pub est_cost: u64,
    /// Measured busy time (absorb + drain, summed over epochs).
    pub busy: Duration,
    /// Neighborhood evaluations performed.
    pub evaluations: u64,
}

/// What a sharded run reports besides its matches.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Number of shards.
    pub shards: usize,
    /// Number of evidence components.
    pub components: usize,
    /// Neighborhood count of the largest component.
    pub largest_component: usize,
    /// Estimated cost of the most expensive component.
    pub largest_component_cost: u64,
    /// Oversized components split into per-neighborhood units.
    pub split_components: usize,
    /// Oversized components kept whole and pinned solo: all of them
    /// under [`SplitPolicy::Pin`]; single-neighborhood ones (nothing to
    /// split) even under [`SplitPolicy::Split`].
    pub pinned_components: usize,
    /// Epoch fences until the global fixpoint (≥ 2: at least one work
    /// epoch plus the empty confirming epoch).
    pub epochs: u64,
    /// Distinct evidence pairs exchanged across shards.
    pub cross_shard_pairs: u64,
    /// Per-shard loads.
    pub per_shard: Vec<ShardLoad>,
    /// `max/mean` of the estimated shard loads (the balancer's view).
    pub est_skew: f64,
    /// `max/mean` of the measured busy times.
    pub busy_skew: f64,
    /// Longest shard busy time — the sharded wall-clock bound.
    pub makespan: Duration,
    /// Summed shard busy time — the single-machine equivalent work.
    pub total_work: Duration,
    /// `total_work / makespan`; > 1 whenever at least two shards did
    /// real work.
    pub speedup: f64,
    /// The per-neighborhood cost estimates the plan was built from
    /// (indexed by neighborhood id) — the deterministic trace the grid
    /// simulator's LPT mode is validated against.
    pub neighborhood_costs: Vec<u64>,
    /// Measured per-neighborhood evaluation costs, summed over visits.
    pub measured: Vec<(NeighborhoodId, Duration)>,
    /// Shard driver threads lost to a panic (injected or organic).
    pub shard_panics: u64,
    /// Fence-wait attempts that expired before every live shard
    /// responded (retries count individually).
    pub fence_timeouts: u64,
    /// Shards declared dead after their fence-timeout budget while the
    /// thread was still alive (hung fences; their eventual outcomes are
    /// discarded).
    pub stalled_shards: u64,
    /// Dead or stalled shards whose epoch work the coordinator
    /// re-executed sequentially from the broadcast history.
    pub shards_recovered: u64,
    /// Epoch responses that arrived after their shard was declared dead
    /// (or arrived twice) and were dropped.
    pub late_responses_dropped: u64,
}

impl ShardReport {
    /// Estimated makespan: the most loaded shard in the balancer's cost
    /// units (deterministic counterpart of [`ShardReport::makespan`]).
    pub fn est_makespan(&self) -> u64 {
        self.per_shard.iter().map(|s| s.est_cost).max().unwrap_or(0)
    }
}

enum ToShard {
    Epoch { delta: Vec<Pair> },
    Stop,
}

struct EpochDone {
    shard: usize,
    delta: Vec<Pair>,
    messages: Vec<Vec<Pair>>,
}

struct ShardOutcome {
    stats: RunStats,
    busy: Duration,
    trace: EvalTrace,
    /// Probe memos at quiescence, keyed by view identity (MMP only).
    memos: MemoBank,
    /// Score-gap certificates at quiescence, parallel to `memos`.
    certs: CertificateBank,
}

/// One shard's epoch loop over its driver; generic so SMP and MMP share
/// the runtime verbatim.
trait EpochWorker {
    fn absorb(&mut self, delta: &[Pair]);
    fn fence(&mut self) -> em_core::Epoch;
    fn drain(&mut self);
    /// This epoch's outgoing delta and maximal messages.
    fn produced(&mut self, since: em_core::Epoch) -> (Vec<Pair>, Vec<Vec<Pair>>);
    fn finish(self) -> (RunStats, EvalTrace, MemoBank, CertificateBank);
}

struct SmpWorker<'a> {
    driver: SmpDriver<'a>,
    matcher: &'a (dyn Matcher + Sync),
}

impl EpochWorker for SmpWorker<'_> {
    fn absorb(&mut self, delta: &[Pair]) {
        self.driver.absorb(delta);
    }
    fn fence(&mut self) -> em_core::Epoch {
        self.driver.fence()
    }
    fn drain(&mut self) {
        self.driver.run(self.matcher);
    }
    fn produced(&mut self, since: em_core::Epoch) -> (Vec<Pair>, Vec<Vec<Pair>>) {
        (self.driver.delta_since(since).to_vec(), Vec::new())
    }
    fn finish(mut self) -> (RunStats, EvalTrace, MemoBank, CertificateBank) {
        let trace = self.driver.take_trace();
        (
            *self.driver.stats(),
            trace,
            MemoBank::new(),
            CertificateBank::new(),
        )
    }
}

struct MmpWorker<'a> {
    driver: MmpDriver<'a>,
    matcher: &'a (dyn ProbabilisticMatcher + Sync),
    scorer: &'a (dyn GlobalScorer + Send + Sync),
    /// Whether to bank probe memos at quiescence (only when the caller
    /// passed a cross-run [`MemoBank`]).
    collect_memos: bool,
}

impl EpochWorker for MmpWorker<'_> {
    fn absorb(&mut self, delta: &[Pair]) {
        self.driver.absorb(delta, self.scorer);
    }
    fn fence(&mut self) -> em_core::Epoch {
        self.driver.fence()
    }
    fn drain(&mut self) {
        self.driver.run(self.matcher, self.scorer);
    }
    fn produced(&mut self, since: em_core::Epoch) -> (Vec<Pair>, Vec<Vec<Pair>>) {
        (
            self.driver.delta_since(since).to_vec(),
            self.driver.take_outbox(),
        )
    }
    fn finish(mut self) -> (RunStats, EvalTrace, MemoBank, CertificateBank) {
        let trace = self.driver.take_trace();
        let mut memos = MemoBank::new();
        let mut certs = CertificateBank::new();
        if self.collect_memos {
            self.driver.bank_memos(&mut memos);
            self.driver.bank_certificates(&mut certs);
        }
        (*self.driver.stats(), trace, memos, certs)
    }
}

/// Counters the coordinator accumulates while surviving faults.
#[derive(Debug, Default, Clone, Copy)]
struct FaultCounters {
    shard_panics: u64,
    fence_timeouts: u64,
    stalled_shards: u64,
    shards_recovered: u64,
    late_responses_dropped: u64,
}

fn worker_loop<W: EpochWorker>(
    mut worker: W,
    shard: usize,
    rx: Receiver<ToShard>,
    tx: Sender<EpochDone>,
    faults: Vec<FaultKind>,
) -> ShardOutcome {
    let mut busy = Duration::ZERO;
    let mut epoch = 0u64;
    let mut stalled = false;
    loop {
        match rx.recv().expect("coordinator alive") {
            ToShard::Stop => break,
            ToShard::Epoch { delta } => {
                epoch += 1;
                let t0 = Instant::now();
                worker.absorb(&delta);
                let fence = worker.fence();
                if faults
                    .iter()
                    .any(|f| matches!(f, FaultKind::Panic { epoch: e } if *e == epoch))
                {
                    panic!("injected fault: shard {shard} panics at epoch {epoch}");
                }
                worker.drain();
                let (produced, messages) = worker.produced(fence);
                busy += t0.elapsed();
                stalled = stalled
                    || faults
                        .iter()
                        .any(|f| matches!(f, FaultKind::Stall { epoch: e } if *e <= epoch));
                if stalled {
                    // Hung fence: the epoch's work happened but its
                    // response never leaves the shard.
                    continue;
                }
                if let Some(FaultKind::Delay { delay, .. }) = faults
                    .iter()
                    .find(|f| matches!(f, FaultKind::Delay { epoch: e, .. } if *e == epoch))
                    .copied()
                {
                    std::thread::sleep(delay);
                }
                tx.send(EpochDone {
                    shard,
                    delta: produced,
                    messages,
                })
                .expect("coordinator alive");
            }
        }
    }
    let (stats, trace, memos, certs) = worker.finish();
    ShardOutcome {
        stats,
        busy,
        trace,
        memos,
        certs,
    }
}

/// Run the epoch protocol over `k` workers built by `make_worker`,
/// reducing each epoch's responses with `reduce` (which folds deltas
/// and messages into `global` and returns the fresh pairs to
/// broadcast). Returns the global evidence at fixpoint, per-shard
/// outcomes, the epoch count, the distinct cross-shard pair count, and
/// the fault/recovery counters.
///
/// ## Graceful degradation
///
/// A shard driver that panics mid-epoch (observed via its
/// [`std::thread::JoinHandle`]) or goes silent past the bounded
/// fence-timeout budget ([`RuntimeOptions::fence_timeout`] with
/// [`RuntimeOptions::fence_retries`] doubling-backoff retries) is
/// declared **dead**. The coordinator then re-executes that shard's
/// components *sequentially, inline*: a fresh worker over the same
/// member neighborhoods absorbs the full broadcast history (initial
/// evidence is baked in at construction, so history replay reconstructs
/// exactly the evidence every live shard has seen) and drains to local
/// quiescence; its produced delta joins the epoch's reduce like any
/// other response. Every later epoch drives the replacement inline.
/// This is sound because the fixpoint is independent of evaluation
/// order and history (the consistency theorems): re-derived pairs dedup
/// against the global evidence and re-sent messages merge idempotently
/// into the one store — so outputs stay byte-identical to the healthy
/// run, which is CI-gated.
///
/// Exactly one outcome per shard slot enters the final stats fold: a
/// panicked driver's partial counters die with its thread, and a
/// stalled driver that later joins cleanly has its outcome discarded in
/// favor of its replacement's (merging both would double-count; see
/// [`RunStats::merge`]). Responses from shards already declared dead
/// are dropped and counted.
fn run_epochs<W, F, R>(
    k: usize,
    evidence: &Evidence,
    opts: &RuntimeOptions,
    make_worker: F,
    mut reduce: R,
) -> (Evidence, Vec<ShardOutcome>, u64, u64, FaultCounters)
where
    W: EpochWorker + Send,
    F: Fn(usize) -> W + Sync,
    R: FnMut(&mut Evidence, Vec<EpochDone>) -> Vec<Pair>,
{
    let make_worker = &make_worker;
    std::thread::scope(|scope| {
        let (done_tx, done_rx) = channel::unbounded::<EpochDone>();
        let mut to_shard: Vec<Sender<ToShard>> = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        for shard in 0..k {
            let (tx, rx) = channel::unbounded::<ToShard>();
            to_shard.push(tx);
            let done_tx = done_tx.clone();
            let faults = opts.faults.for_shard(shard);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("em-shard-{shard}"))
                    .spawn_scoped(scope, move || {
                        worker_loop(make_worker(shard), shard, rx, done_tx, faults)
                    })
                    .expect("spawn shard driver"),
            );
        }
        drop(done_tx);

        let mut counters = FaultCounters::default();
        let mut dead: Vec<bool> = vec![false; k];
        // Inline replacement workers for dead shards, with the wall
        // time they have spent (their busy figure).
        let mut inline: Vec<Option<(W, Duration)>> = (0..k).map(|_| None).collect();
        // Every broadcast delta so far, flattened — what a replacement
        // worker absorbs to reconstruct a dead shard's evidence state.
        let mut history: Vec<Pair> = Vec::new();
        // Build a replacement for shard `s` and produce its response
        // for the current epoch (whose delta is already in `history`).
        let recover = |s: usize, history: &[Pair]| -> (W, Duration, EpochDone) {
            let mut w = make_worker(s);
            let t0 = Instant::now();
            w.absorb(history);
            let fence = w.fence();
            w.drain();
            let (produced, messages) = w.produced(fence);
            (
                w,
                t0.elapsed(),
                EpochDone {
                    shard: s,
                    delta: produced,
                    messages,
                },
            )
        };

        let mut global = Evidence::from_parts(evidence.positive.clone(), evidence.negative.clone());
        let mut epochs = 0u64;
        let mut cross_shard_pairs = 0u64;
        let mut delta: Vec<Pair> = Vec::new();
        loop {
            epochs += 1;
            history.extend_from_slice(&delta);
            for (s, tx) in to_shard.iter().enumerate() {
                if dead[s] {
                    continue;
                }
                // A panicked driver has dropped its receiver; ignore
                // the send error — the death is handled at the fence.
                let _ = tx.send(ToShard::Epoch {
                    delta: delta.clone(),
                });
            }
            let mut responses: Vec<Option<EpochDone>> = (0..k).map(|_| None).collect();
            // Dead shards first: drive their inline replacements.
            for s in 0..k {
                if let Some((w, busy)) = inline[s].as_mut() {
                    let t0 = Instant::now();
                    w.absorb(&delta);
                    let fence = w.fence();
                    w.drain();
                    let (produced, messages) = w.produced(fence);
                    *busy += t0.elapsed();
                    responses[s] = Some(EpochDone {
                        shard: s,
                        delta: produced,
                        messages,
                    });
                }
            }
            // The fence: nothing proceeds until every live shard
            // reported its epoch, so there are never deltas in flight
            // when the merged delta is inspected for termination. Poll
            // with a liveness check (a worker only exits before `Stop`
            // by panicking, and its sibling senders keep the channel
            // open) and a bounded, retried timeout for silent shards.
            let mut attempt = 0u32;
            let mut budget = opts.fence_timeout;
            let mut waited = Instant::now();
            loop {
                let missing: Vec<usize> = (0..k)
                    .filter(|&s| !dead[s] && responses[s].is_none())
                    .collect();
                if missing.is_empty() {
                    break;
                }
                if let Some(done) = done_rx.try_recv() {
                    let s = done.shard;
                    if dead[s] || responses[s].is_some() {
                        counters.late_responses_dropped += 1;
                    } else {
                        responses[s] = Some(done);
                    }
                    continue;
                }
                // A driver that finished without responding panicked:
                // recover it now.
                let mut observed_panic = false;
                for &s in &missing {
                    if handles[s].is_finished() {
                        dead[s] = true;
                        counters.shard_panics += 1;
                        counters.shards_recovered += 1;
                        let (w, busy, done) = recover(s, &history);
                        inline[s] = Some((w, busy));
                        responses[s] = Some(done);
                        observed_panic = true;
                    }
                }
                if observed_panic {
                    continue;
                }
                if waited.elapsed() >= budget {
                    counters.fence_timeouts += 1;
                    if attempt >= opts.fence_retries {
                        // Timeout budget exhausted: the silent shards
                        // are stalled. Declare them dead and recover;
                        // their eventual responses (and join outcomes)
                        // are discarded.
                        for s in missing {
                            dead[s] = true;
                            counters.stalled_shards += 1;
                            counters.shards_recovered += 1;
                            let (w, busy, done) = recover(s, &history);
                            inline[s] = Some((w, busy));
                            responses[s] = Some(done);
                        }
                        break;
                    }
                    attempt += 1;
                    budget *= 2;
                    waited = Instant::now();
                    continue;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            // Reduce in shard-id order — deterministic regardless of
            // thread scheduling.
            let fresh = reduce(&mut global, responses.into_iter().flatten().collect());
            if fresh.is_empty() {
                break;
            }
            cross_shard_pairs += fresh.len() as u64;
            delta = fresh;
        }
        for tx in &to_shard {
            // Stalled drivers are still blocked on their inbox and need
            // the `Stop`; panicked ones have dropped their receiver.
            let _ = tx.send(ToShard::Stop);
        }
        let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(k);
        for (s, h) in handles.into_iter().enumerate() {
            let joined = h.join();
            let replacement = inline[s].take();
            let finish = |pair: (W, Duration)| {
                let (stats, trace, memos, certs) = pair.0.finish();
                ShardOutcome {
                    stats,
                    busy: pair.1,
                    trace,
                    memos,
                    certs,
                }
            };
            match (joined, replacement) {
                (Ok(outcome), None) => outcomes.push(outcome),
                // A stalled driver joined cleanly, but its replacement
                // already re-did its work — keeping both would
                // double-count every neighborhood they evaluated in
                // common, so the stalled outcome is discarded.
                (Ok(_stalled), Some(r)) => outcomes.push(finish(r)),
                (Err(_panic), Some(r)) => outcomes.push(finish(r)),
                // A death the fence never observed (e.g. a panic after
                // the final response): nothing replaced it, so this is
                // a genuine failure — propagate it.
                (Err(panic), None) => std::panic::resume_unwind(panic),
            }
        }
        (global, outcomes, epochs, cross_shard_pairs, counters)
    })
}

/// Assemble the output + report shared by both schemes.
#[allow(clippy::too_many_arguments)]
fn assemble(
    start: Instant,
    plan: &ShardPlan,
    coordinator_stats: RunStats,
    global: Evidence,
    outcomes: Vec<ShardOutcome>,
    epochs: u64,
    cross_shard_pairs: u64,
    faults: FaultCounters,
) -> (MatchOutput, ShardReport) {
    let mut stats = coordinator_stats;
    stats.shard_panics += faults.shard_panics;
    stats.fence_timeouts += faults.fence_timeouts;
    stats.shards_recovered += faults.shards_recovered;
    let mut per_shard = Vec::with_capacity(outcomes.len());
    let mut measured: Vec<(NeighborhoodId, Duration)> = Vec::new();
    let mut busy_units = Vec::with_capacity(outcomes.len());
    let mut makespan = Duration::ZERO;
    let mut total_work = Duration::ZERO;
    for (s, outcome) in outcomes.into_iter().enumerate() {
        stats.merge(&outcome.stats);
        per_shard.push(ShardLoad {
            shard: s,
            neighborhoods: plan.shards[s].len(),
            units: plan.units_on(s),
            est_cost: plan.shard_cost[s],
            busy: outcome.busy,
            evaluations: outcome.stats.neighborhoods_processed,
        });
        busy_units.push(outcome.busy.as_nanos() as u64);
        makespan = makespan.max(outcome.busy);
        total_work += outcome.busy;
        measured.extend(outcome.trace);
    }
    measured.sort_by_key(|&(id, _)| id);
    // Sum repeated visits of the same neighborhood into one entry.
    measured.dedup_by(|next, acc| {
        if next.0 == acc.0 {
            acc.1 += next.1;
            true
        } else {
            false
        }
    });
    stats.finalize(start.elapsed(), epochs);

    let report = ShardReport {
        shards: plan.shards.len(),
        components: plan.components.len(),
        largest_component: plan.largest_component(),
        largest_component_cost: plan.largest_component_cost(),
        split_components: plan.split_components,
        pinned_components: plan.pinned_components,
        epochs,
        cross_shard_pairs,
        est_skew: plan.est_skew(),
        busy_skew: skew(&busy_units),
        makespan,
        total_work,
        speedup: if makespan > Duration::ZERO {
            total_work.as_secs_f64() / makespan.as_secs_f64()
        } else {
            1.0
        },
        per_shard,
        neighborhood_costs: plan.costs.clone(),
        measured,
        shard_panics: faults.shard_panics,
        fence_timeouts: faults.fence_timeouts,
        stalled_shards: faults.stalled_shards,
        shards_recovered: faults.shards_recovered,
        late_responses_dropped: faults.late_responses_dropped,
    };

    let negative = global.negative.clone();
    let mut matches = global.into_positive();
    for p in negative.iter() {
        matches.remove(p);
    }
    (MatchOutput { matches, stats }, report)
}

/// Sharded SMP: the fixpoint equals the sequential SMP fixpoint.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate) with `Backend::Sharded`; `shard_smp_planned` is the engine hook"
)]
pub fn shard_smp(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &ShardConfig,
) -> (MatchOutput, ShardReport) {
    let index = DependencyIndex::build(dataset, cover);
    let costs = estimate_costs(dataset, cover);
    let plan = ShardPlan::build(&index, config.shards, &costs, config.policy);
    shard_smp_planned(matcher, dataset, cover, &index, &plan, evidence)
}

/// The sharded SMP engine over a caller-owned [`DependencyIndex`] and
/// [`ShardPlan`] — what a session uses so the index survives across runs
/// and the plan can be rebuilt from measured costs
/// ([`ShardPlan::replan_from`]). The deprecated [`shard_smp`] wrapper
/// builds both from estimates and delegates here.
pub fn shard_smp_planned(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    index: &DependencyIndex,
    plan: &ShardPlan,
    evidence: &Evidence,
) -> (MatchOutput, ShardReport) {
    shard_smp_planned_opts(
        matcher,
        dataset,
        cover,
        index,
        plan,
        evidence,
        &RuntimeOptions::default(),
    )
}

/// [`shard_smp_planned`] with explicit [`RuntimeOptions`]: fault
/// injection, the fence-timeout budget, and per-fence invariant checks.
#[allow(clippy::too_many_arguments)]
pub fn shard_smp_planned_opts(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    index: &DependencyIndex,
    plan: &ShardPlan,
    evidence: &Evidence,
    opts: &RuntimeOptions,
) -> (MatchOutput, ShardReport) {
    let start = Instant::now();
    let plan_ref = plan;
    let index_ref = index;
    let mut coordinator_stats = RunStats::default();
    let (global, outcomes, epochs, crossed, faults) = run_epochs(
        plan.shards.len(),
        evidence,
        opts,
        |shard| {
            let mut driver = SmpDriver::for_members(
                dataset,
                cover,
                index_ref,
                &plan_ref.shards[shard],
                evidence,
            );
            driver.enable_trace();
            SmpWorker { driver, matcher }
        },
        |global, responses| {
            let fence = global.advance_epoch();
            for done in responses {
                for p in done.delta {
                    global.insert_positive(p);
                }
            }
            if opts.check_invariants {
                let mut checker = InvariantChecker::new(dataset);
                checker.check_evidence(global);
                checker.finish().record(&mut coordinator_stats);
            }
            global.delta_since(fence).to_vec()
        },
    );
    assemble(
        start,
        plan,
        coordinator_stats,
        global,
        outcomes,
        epochs,
        crossed,
        faults,
    )
}

/// Sharded MMP: the fixpoint equals [`em_core::framework::mmp`]'s for
/// exact supermodular matchers (the same caveat as
/// [`MmpConfig::incremental`] applies to approximate backends). Shards
/// compute base matches and maximal messages; the coordinator owns the
/// message store and the promotion loop.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate) with `Backend::Sharded`; `shard_mmp_planned` is the engine hook"
)]
pub fn shard_mmp(
    matcher: &(dyn ProbabilisticMatcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    mmp_config: &MmpConfig,
    config: &ShardConfig,
) -> (MatchOutput, ShardReport) {
    let index = DependencyIndex::build(dataset, cover);
    let costs = estimate_costs(dataset, cover);
    let plan = ShardPlan::build(&index, config.shards, &costs, config.policy);
    shard_mmp_planned(
        matcher, dataset, cover, &index, &plan, evidence, mmp_config, None,
    )
}

/// Per-shard warm-start slice: probe memos for unchanged member views
/// plus the initial worklist (the changed members only).
struct ShardSeed {
    memos: Vec<(NeighborhoodId, ProbeMemo)>,
    /// Score-gap certificates for the seeded memos (only for views
    /// whose memo withdrawal succeeded — the bank's key discipline).
    certs: Vec<(NeighborhoodId, CertificateSet)>,
    active: Vec<NeighborhoodId>,
}

/// The sharded MMP engine over a caller-owned index and plan (see
/// [`shard_smp_planned`]).
///
/// `warm`, when given, is the cross-run [`WarmStart`]: the coordinator
/// adopts the previous fixpoint's message store (every carried message
/// re-checked for promotion against the current evidence and scorer),
/// each shard's initial worklist is restricted to the member
/// neighborhoods whose view identity misses the memo bank (i.e. views
/// that changed since the previous fixpoint — unchanged views would
/// reproduce their quiescent state, and their messages are already in
/// the carried store), and bank hits seed the shard drivers' probe
/// memos so delta-activated revisits replay instead of re-probing. At
/// quiescence the store and memos flow back into `warm` for the next
/// run. Only consulted for [`MmpConfig::incremental`] runs — replay is
/// the incremental path.
#[allow(clippy::too_many_arguments)]
pub fn shard_mmp_planned(
    matcher: &(dyn ProbabilisticMatcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    index: &DependencyIndex,
    plan: &ShardPlan,
    evidence: &Evidence,
    mmp_config: &MmpConfig,
    warm: Option<&mut WarmStart>,
) -> (MatchOutput, ShardReport) {
    shard_mmp_planned_opts(
        matcher,
        dataset,
        cover,
        index,
        plan,
        evidence,
        mmp_config,
        warm,
        &RuntimeOptions::default(),
    )
}

/// [`shard_mmp_planned`] with explicit [`RuntimeOptions`]: fault
/// injection, the fence-timeout budget, and per-fence invariant checks
/// (which for MMP also validate the coordinator's message store).
#[allow(clippy::too_many_arguments)]
pub fn shard_mmp_planned_opts(
    matcher: &(dyn ProbabilisticMatcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    index: &DependencyIndex,
    plan: &ShardPlan,
    evidence: &Evidence,
    mmp_config: &MmpConfig,
    mut warm: Option<&mut WarmStart>,
    opts: &RuntimeOptions,
) -> (MatchOutput, ShardReport) {
    let start = Instant::now();
    if !mmp_config.incremental {
        warm = None;
    }
    // Pre-partition the warm state by shard so each worker thread can
    // take its slice without contending on the caller's bank.
    let seeds: Vec<std::sync::Mutex<Option<ShardSeed>>> = {
        let mut per_shard: Vec<Option<ShardSeed>> = (0..plan.shards.len()).map(|_| None).collect();
        if let Some(warm) = warm.as_deref_mut() {
            for (slot, members) in per_shard.iter_mut().zip(&plan.shards) {
                let mut seed = ShardSeed {
                    memos: Vec::new(),
                    certs: Vec::new(),
                    active: Vec::new(),
                };
                for &id in members {
                    let view = cover.view(dataset, id);
                    match warm.bank.withdraw_grown(&view, warm.entity_floor) {
                        // Identical view: quiescent; its messages are in
                        // the carried store — skip it. Certificates ride
                        // along in case routed evidence reactivates it.
                        Some((memo, true)) => {
                            seed.memos.push((id, memo));
                            if let Some(set) = warm.certs.withdraw_grown(&view, warm.entity_floor) {
                                seed.certs.push((id, set));
                            }
                        }
                        // Grown view: re-evaluate with the old memo so
                        // untouched components replay. Its certificates
                        // ride along (withdrawn only on a memo hit).
                        Some((memo, false)) => {
                            seed.memos.push((id, memo));
                            if let Some(set) = warm.certs.withdraw_grown(&view, warm.entity_floor) {
                                seed.certs.push((id, set));
                            }
                            seed.active.push(id);
                        }
                        None => seed.active.push(id),
                    }
                }
                *slot = Some(seed);
            }
        }
        per_shard.into_iter().map(std::sync::Mutex::new).collect()
    };
    let seeds_ref = &seeds;
    let collect_memos = warm.is_some();
    let plan_ref = plan;
    let index_ref = index;
    // One grounding shared read-only by every shard, exactly like the
    // round-based executor.
    let scorer = matcher.global_scorer(dataset);
    let scorer_ref: &(dyn GlobalScorer + Send + Sync) = scorer.as_ref();
    // `memo_capacity` bounds the run's total memoized probe entries, so
    // each shard's private pool gets an equal slice of it.
    let per_shard_config = MmpConfig {
        memo_capacity: if mmp_config.memo_capacity == usize::MAX {
            usize::MAX
        } else {
            (mmp_config.memo_capacity / plan.shards.len().max(1)).max(1)
        },
        ..*mmp_config
    };
    let per_shard_config = &per_shard_config;
    // A warm run adopts the previous fixpoint's store and re-checks
    // every carried message's promotion in the first reduce.
    let mut store = match warm.as_deref_mut() {
        Some(warm) => std::mem::take(&mut warm.store),
        None => MessageStore::new(),
    };
    let mut dirty_messages: Vec<Pair> = store.roots();
    let mut coordinator_stats = RunStats::default();
    let (global, outcomes, epochs, crossed, faults) = run_epochs(
        plan.shards.len(),
        evidence,
        opts,
        |shard| {
            let mut driver = MmpDriver::for_members(
                dataset,
                cover,
                index_ref,
                &plan_ref.shards[shard],
                evidence,
                per_shard_config,
            );
            driver.defer_promotions();
            driver.enable_trace();
            if let Some(seed) = seeds_ref[shard].lock().expect("seed lock").take() {
                driver.seed_worklist(&seed.active);
                for (id, memo) in seed.memos {
                    driver.seed_memo(id, memo);
                }
                for (id, set) in seed.certs {
                    driver.seed_certificates(id, set);
                }
            }
            MmpWorker {
                driver,
                matcher,
                scorer: scorer_ref,
                collect_memos,
            }
        },
        |global, responses| {
            let fence = global.advance_epoch();
            // Fold direct matches; remember which are new for dirty
            // marking.
            let mut batch = PairSet::new();
            for done in &responses {
                for &p in &done.delta {
                    if global.insert_positive(p) {
                        batch.insert(p);
                    }
                }
            }
            // Merge the shards' maximal messages into the one store the
            // closure invariant lives in.
            for done in responses {
                for message in done.messages {
                    if message.iter().any(|p| global.negative.contains(*p)) {
                        continue;
                    }
                    if let Some(root) = store.add_message(&message) {
                        dirty_messages.push(root);
                    }
                }
            }
            mark_dirty_around(&batch, scorer_ref, &mut store, &mut dirty_messages);
            promote_dirty(
                &mut store,
                scorer_ref,
                global,
                &mut dirty_messages,
                &mut coordinator_stats,
            );
            if opts.check_invariants {
                let mut checker = InvariantChecker::new(dataset);
                checker.check_evidence(global);
                checker.check_message_store(&store);
                checker.finish().record(&mut coordinator_stats);
            }
            global.delta_since(fence).to_vec()
        },
    );
    let mut outcomes = outcomes;
    if let Some(warm) = warm {
        warm.store = store;
        for outcome in &mut outcomes {
            warm.bank.absorb(std::mem::take(&mut outcome.memos));
            warm.certs.absorb(std::mem::take(&mut outcome.certs));
        }
    }
    assemble(
        start,
        plan,
        coordinator_stats,
        global,
        outcomes,
        epochs,
        crossed,
        faults,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::framework::{mmp_with_order, smp_with_order};
    use em_core::testing::paper_example;

    fn config(shards: usize, policy: SplitPolicy) -> ShardConfig {
        ShardConfig { shards, policy }
    }

    // Engine-hook shims with the deprecated wrappers' historical shape.
    fn run_shard_smp(
        matcher: &(dyn Matcher + Sync),
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
        config: &ShardConfig,
    ) -> (MatchOutput, ShardReport) {
        let index = DependencyIndex::build(dataset, cover);
        let plan = ShardPlan::build(
            &index,
            config.shards,
            &estimate_costs(dataset, cover),
            config.policy,
        );
        shard_smp_planned(matcher, dataset, cover, &index, &plan, evidence)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_shard_mmp(
        matcher: &(dyn ProbabilisticMatcher + Sync),
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
        mmp_config: &MmpConfig,
        config: &ShardConfig,
    ) -> (MatchOutput, ShardReport) {
        let index = DependencyIndex::build(dataset, cover);
        let plan = ShardPlan::build(
            &index,
            config.shards,
            &estimate_costs(dataset, cover),
            config.policy,
        );
        shard_mmp_planned(
            matcher, dataset, cover, &index, &plan, evidence, mmp_config, None,
        )
    }

    fn smp(
        matcher: &dyn Matcher,
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
    ) -> MatchOutput {
        smp_with_order(matcher, dataset, cover, evidence, None)
    }

    fn mmp(
        matcher: &dyn ProbabilisticMatcher,
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
        config: &MmpConfig,
    ) -> MatchOutput {
        mmp_with_order(matcher, dataset, cover, evidence, config, None)
    }

    #[test]
    fn shard_smp_equals_sequential_fixpoint() {
        let (ds, cover, matcher, _) = paper_example();
        let sequential = smp(&matcher, &ds, &cover, &Evidence::none());
        for policy in [SplitPolicy::Pin, SplitPolicy::Split] {
            for shards in [1, 2, 3, 5] {
                let (out, report) = run_shard_smp(
                    &matcher,
                    &ds,
                    &cover,
                    &Evidence::none(),
                    &config(shards, policy),
                );
                assert_eq!(out.matches, sequential.matches, "shards={shards}");
                assert_eq!(report.shards, shards);
                assert!(report.epochs >= 2, "work epoch + confirming epoch");
                let evals: u64 = report.per_shard.iter().map(|s| s.evaluations).sum();
                assert_eq!(evals, out.stats.neighborhoods_processed);
            }
        }
    }

    #[test]
    fn shard_mmp_equals_sequential_fixpoint() {
        let (ds, cover, matcher, expected) = paper_example();
        let sequential = mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
        );
        assert_eq!(sequential.matches, expected);
        for policy in [SplitPolicy::Pin, SplitPolicy::Split] {
            for shards in [1, 2, 4] {
                let (out, report) = run_shard_mmp(
                    &matcher,
                    &ds,
                    &cover,
                    &Evidence::none(),
                    &MmpConfig::default(),
                    &config(shards, policy),
                );
                assert_eq!(out.matches, expected, "shards={shards} policy={policy:?}");
                assert_eq!(out.stats.rounds, report.epochs);
                assert!(report.makespan <= report.total_work + Duration::from_nanos(1));
            }
        }
    }

    #[test]
    fn shard_mmp_full_recompute_arm_matches_too() {
        let (ds, cover, matcher, expected) = paper_example();
        let mmp_config = MmpConfig {
            incremental: false,
            ..Default::default()
        };
        let (out, _) = run_shard_mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &mmp_config,
            &config(3, SplitPolicy::Split),
        );
        assert_eq!(out.matches, expected);
    }

    #[test]
    fn report_accounts_for_every_neighborhood_and_unit() {
        let (ds, cover, matcher, _) = paper_example();
        let (out, report) = run_shard_mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
            &config(2, SplitPolicy::Split),
        );
        assert_eq!(
            report
                .per_shard
                .iter()
                .map(|s| s.neighborhoods)
                .sum::<usize>(),
            cover.len()
        );
        assert_eq!(report.neighborhood_costs.len(), cover.len());
        // Every neighborhood was measured at least once.
        assert_eq!(report.measured.len(), cover.len());
        assert!(report.est_skew >= 1.0 - 1e-9);
        assert!(report.busy_skew >= 1.0 - 1e-9);
        assert!(report.speedup >= 1.0 - 1e-9);
        assert!(out.stats.promotions > 0, "the paper example promotes");
    }

    #[test]
    fn replan_from_measured_costs_is_valid_and_byte_identical() {
        let (ds, cover, matcher, expected) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        let plan = ShardPlan::build(&index, 2, &estimate_costs(&ds, &cover), SplitPolicy::Split);
        let (out, report) = shard_mmp_planned(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
        );
        assert_eq!(out.matches, expected);

        let replanned = plan.replan_from(&index, &report);
        assert_eq!(replanned.shards.len(), plan.shards.len());
        assert_eq!(replanned.policy, plan.policy);
        // The balancer's cost slice is now the measured busy times.
        for &(id, busy) in &report.measured {
            assert_eq!(replanned.costs[id.index()], (busy.as_nanos() as u64).max(1));
        }
        // Still a partition, and the fixpoint does not depend on the plan.
        let mut seen: Vec<NeighborhoodId> = replanned.shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), cover.len());
        let (again, report2) = shard_mmp_planned(
            &matcher,
            &ds,
            &cover,
            &index,
            &replanned,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
        );
        assert_eq!(again.matches, expected);
        assert_eq!(report2.shards, 2);
    }

    /// Silence the default panic message for injected faults so fault
    /// tests do not spam stderr; restores nothing (hooks are global, so
    /// the filter just forwards anything that is not an injected
    /// fault).
    fn quiet_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.starts_with("injected fault:"));
                if !injected {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn panicked_shard_recovers_to_the_same_fixpoint() {
        quiet_injected_panics();
        let (ds, cover, matcher, expected) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        for shards in [2, 3] {
            let plan = ShardPlan::build(
                &index,
                shards,
                &estimate_costs(&ds, &cover),
                SplitPolicy::Split,
            );
            for victim in 0..shards {
                for epoch in [1, 2] {
                    let opts = RuntimeOptions::with_faults(
                        crate::fault::FaultPlan::new().panic_shard(victim, epoch),
                    );
                    let (out, report) = shard_mmp_planned_opts(
                        &matcher,
                        &ds,
                        &cover,
                        &index,
                        &plan,
                        &Evidence::none(),
                        &MmpConfig::default(),
                        None,
                        &opts,
                    );
                    assert_eq!(
                        out.matches, expected,
                        "shards={shards} victim={victim} epoch={epoch}"
                    );
                    assert_eq!(report.shard_panics, 1);
                    assert_eq!(report.shards_recovered, 1);
                    assert_eq!(out.stats.shard_panics, 1);
                    assert_eq!(out.stats.shards_recovered, 1);
                }
            }
        }
    }

    #[test]
    fn panicked_smp_shard_recovers_too() {
        quiet_injected_panics();
        let (ds, cover, matcher, _) = paper_example();
        let sequential = smp(&matcher, &ds, &cover, &Evidence::none());
        let index = DependencyIndex::build(&ds, &cover);
        let plan = ShardPlan::build(&index, 3, &estimate_costs(&ds, &cover), SplitPolicy::Pin);
        let opts = RuntimeOptions::with_faults(crate::fault::FaultPlan::new().panic_shard(1, 1));
        let (out, report) = shard_smp_planned_opts(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &Evidence::none(),
            &opts,
        );
        assert_eq!(out.matches, sequential.matches);
        assert_eq!(report.shard_panics, 1);
        assert_eq!(report.shards_recovered, 1);
    }

    #[test]
    fn stalled_shard_is_declared_dead_and_recovered() {
        let (ds, cover, matcher, expected) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        let plan = ShardPlan::build(&index, 2, &estimate_costs(&ds, &cover), SplitPolicy::Split);
        let opts = RuntimeOptions {
            // Tight budget so the test declares death fast: 5ms + one
            // 10ms retry.
            fence_timeout: Duration::from_millis(5),
            fence_retries: 1,
            faults: crate::fault::FaultPlan::new().stall_shard(0, 1),
            check_invariants: true,
        };
        let (out, report) = shard_mmp_planned_opts(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
            &opts,
        );
        assert_eq!(out.matches, expected);
        assert_eq!(report.stalled_shards, 1);
        assert_eq!(report.shards_recovered, 1);
        assert!(report.fence_timeouts >= 1);
        assert_eq!(report.shard_panics, 0);
        assert!(out.stats.invariant_checks > 0, "fence checks ran");
        assert_eq!(out.stats.invariant_violations, 0);
    }

    #[test]
    fn delayed_response_within_budget_is_not_a_death() {
        let (ds, cover, matcher, expected) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        let plan = ShardPlan::build(&index, 2, &estimate_costs(&ds, &cover), SplitPolicy::Split);
        let opts = RuntimeOptions {
            fence_timeout: Duration::from_secs(10),
            fence_retries: 3,
            faults: crate::fault::FaultPlan::new().delay_response(1, 1, Duration::from_millis(20)),
            check_invariants: false,
        };
        let (out, report) = shard_mmp_planned_opts(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
            &opts,
        );
        assert_eq!(out.matches, expected);
        assert_eq!(report.shards_recovered, 0, "a slow shard is not dead");
        assert_eq!(report.shard_panics, 0);
        assert_eq!(report.stalled_shards, 0);
    }

    #[test]
    fn delay_past_the_budget_degenerates_to_a_stall_and_drops_the_late_response() {
        let (ds, cover, matcher, expected) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        let plan = ShardPlan::build(&index, 2, &estimate_costs(&ds, &cover), SplitPolicy::Split);
        let opts = RuntimeOptions {
            fence_timeout: Duration::from_millis(2),
            fence_retries: 0,
            faults: crate::fault::FaultPlan::new().delay_response(0, 1, Duration::from_millis(100)),
            check_invariants: false,
        };
        let (out, report) = shard_mmp_planned_opts(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
            &opts,
        );
        assert_eq!(out.matches, expected);
        assert_eq!(report.stalled_shards, 1);
        assert_eq!(report.shards_recovered, 1);
    }

    #[test]
    fn every_shard_dying_degenerates_to_sequential() {
        quiet_injected_panics();
        let (ds, cover, matcher, expected) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        let plan = ShardPlan::build(&index, 3, &estimate_costs(&ds, &cover), SplitPolicy::Split);
        let faults = crate::fault::FaultPlan::new()
            .panic_shard(0, 1)
            .panic_shard(1, 1)
            .panic_shard(2, 2);
        let (out, report) = shard_mmp_planned_opts(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
            &RuntimeOptions::with_faults(faults),
        );
        assert_eq!(out.matches, expected);
        assert_eq!(report.shard_panics, 3);
        assert_eq!(report.shards_recovered, 3);
    }

    #[test]
    fn warm_started_run_survives_a_panic() {
        quiet_injected_panics();
        let (ds, cover, matcher, expected) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        let plan = ShardPlan::build(&index, 2, &estimate_costs(&ds, &cover), SplitPolicy::Split);
        // Healthy warm run to fill the bank...
        let mut warm = WarmStart::new();
        let (first, _) = shard_mmp_planned(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &Evidence::none(),
            &MmpConfig::default(),
            Some(&mut warm),
        );
        assert_eq!(first.matches, expected);
        warm.entity_floor = ds.entities.len() as u32;
        // ...then a faulted warm re-run, seeded (as sessions do) with
        // the previous fixpoint as evidence: the victim's seed was
        // taken by the original worker, so its replacement re-evaluates
        // its full worklist — slower, but byte-identical.
        let evidence = Evidence::positive(first.matches.clone());
        let opts = RuntimeOptions::with_faults(crate::fault::FaultPlan::new().panic_shard(0, 1));
        let (again, report) = shard_mmp_planned_opts(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &evidence,
            &MmpConfig::default(),
            Some(&mut warm),
            &opts,
        );
        assert_eq!(again.matches, expected);
        assert_eq!(report.shards_recovered, 1);
    }

    #[test]
    fn initial_evidence_flows_through_the_sharded_run() {
        let (ds, cover, matcher, _) = paper_example();
        // Feed the sequential SMP fixpoint back in as evidence: the
        // sharded run must reproduce the sequential MMP-on-evidence
        // fixpoint.
        let smp_out = smp(&matcher, &ds, &cover, &Evidence::none());
        let evidence = Evidence::positive(smp_out.matches.clone());
        let sequential = mmp(&matcher, &ds, &cover, &evidence, &MmpConfig::default());
        let (sharded, _) = run_shard_mmp(
            &matcher,
            &ds,
            &cover,
            &evidence,
            &MmpConfig::default(),
            &config(2, SplitPolicy::Split),
        );
        assert_eq!(sharded.matches, sequential.matches);
        assert!(smp_out.matches.is_subset(&sharded.matches));
    }
}
