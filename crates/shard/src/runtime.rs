//! The epoch-fenced sharded runtime.
//!
//! One [`em_core::framework::SmpDriver`]/[`MmpDriver`] per shard, each
//! on its own thread with a [`DependencyIndex`] restricted to its
//! member neighborhoods, exchanging evidence as **epoch-fenced delta
//! messages** over channels:
//!
//! ```text
//!            ┌─ Epoch{delta} ──▶ shard 0: absorb → fence → drain ─┐
//! coordinator├─ Epoch{delta} ──▶ shard 1: absorb → fence → drain ─┤ EpochDone{delta,
//!            └─ Epoch{delta} ──▶ shard 2: absorb → fence → drain ─┘            messages}
//!                  ▲                                              │
//!                  └─ merge · message closure · promote ◀─────────┘
//! ```
//!
//! Within an epoch a shard runs its delta-driven scheduler to local
//! quiescence — intra-shard evidence takes effect immediately, which is
//! what the component-aligned placement buys. Cross-shard evidence
//! travels once per epoch: the coordinator folds every shard's
//! produced delta into the global epoch-tracked evidence (pairs that
//! raced in from several shards dedup against it), merges the shards'
//! maximal messages into the **one global
//! [`em_core::framework::MessageStore`]**, promotes to fixpoint, and
//! broadcasts the fresh pairs back out. Centralizing the store is what
//! makes splitting an oversized evidence component sound: two messages
//! sharing a pair may then originate on different shards, and the
//! paper's `(T ∪ TC)*` merge closure is only maintainable where both
//! are visible. The matcher-dominated work — base evaluations and
//! conditioned probes, with their per-shard local-evidence caches and
//! probe memos — never leaves the shards; what crosses the boundary is
//! pairs and message handles.
//!
//! **Termination** is a by-product of the fence: the coordinator only
//! inspects the merged delta once all `k` responses for the epoch are
//! in, so "all shards idle and no delta in flight" reduces to "this
//! epoch's merged delta is empty", at which point it broadcasts `Stop`.
//!
//! **Determinism**: each shard's schedule is deterministic, responses
//! are reduced in shard-id order, and the fixpoint itself is
//! independent of evaluation order (the consistency theorems; promotion
//! against a one-epoch-stale replica is sound for supermodular models
//! and retried when the missing evidence arrives). The final match set
//! is byte-identical to the single-machine run's.

use crate::partition::{estimate_costs, skew, ShardPlan, SplitPolicy};
use crossbeam::channel::{self, Receiver, Sender};
use em_core::cover::{Cover, NeighborhoodId};
use em_core::framework::{
    mark_dirty_around, promote_dirty, DependencyIndex, EvalTrace, MemoBank, MessageStore,
    MmpConfig, MmpDriver, ProbeMemo, RunStats, SmpDriver, WarmStart,
};
use em_core::{
    Dataset, Evidence, GlobalScorer, MatchOutput, Matcher, Pair, PairSet, ProbabilisticMatcher,
};
use std::time::{Duration, Instant};

/// Sharded-runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shards (each runs on its own thread).
    pub shards: usize,
    /// What to do with evidence components too big to balance.
    pub policy: SplitPolicy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            policy: SplitPolicy::default(),
        }
    }
}

impl ShardConfig {
    /// `shards` shards with the default split policy.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Default::default()
        }
    }
}

/// Per-shard load figures of one run.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Member neighborhoods.
    pub neighborhoods: usize,
    /// Placement units (whole components or split fragments) assigned.
    pub units: usize,
    /// Estimated cost (the balancer's units).
    pub est_cost: u64,
    /// Measured busy time (absorb + drain, summed over epochs).
    pub busy: Duration,
    /// Neighborhood evaluations performed.
    pub evaluations: u64,
}

/// What a sharded run reports besides its matches.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Number of shards.
    pub shards: usize,
    /// Number of evidence components.
    pub components: usize,
    /// Neighborhood count of the largest component.
    pub largest_component: usize,
    /// Estimated cost of the most expensive component.
    pub largest_component_cost: u64,
    /// Oversized components split into per-neighborhood units.
    pub split_components: usize,
    /// Oversized components kept whole and pinned solo: all of them
    /// under [`SplitPolicy::Pin`]; single-neighborhood ones (nothing to
    /// split) even under [`SplitPolicy::Split`].
    pub pinned_components: usize,
    /// Epoch fences until the global fixpoint (≥ 2: at least one work
    /// epoch plus the empty confirming epoch).
    pub epochs: u64,
    /// Distinct evidence pairs exchanged across shards.
    pub cross_shard_pairs: u64,
    /// Per-shard loads.
    pub per_shard: Vec<ShardLoad>,
    /// `max/mean` of the estimated shard loads (the balancer's view).
    pub est_skew: f64,
    /// `max/mean` of the measured busy times.
    pub busy_skew: f64,
    /// Longest shard busy time — the sharded wall-clock bound.
    pub makespan: Duration,
    /// Summed shard busy time — the single-machine equivalent work.
    pub total_work: Duration,
    /// `total_work / makespan`; > 1 whenever at least two shards did
    /// real work.
    pub speedup: f64,
    /// The per-neighborhood cost estimates the plan was built from
    /// (indexed by neighborhood id) — the deterministic trace the grid
    /// simulator's LPT mode is validated against.
    pub neighborhood_costs: Vec<u64>,
    /// Measured per-neighborhood evaluation costs, summed over visits.
    pub measured: Vec<(NeighborhoodId, Duration)>,
}

impl ShardReport {
    /// Estimated makespan: the most loaded shard in the balancer's cost
    /// units (deterministic counterpart of [`ShardReport::makespan`]).
    pub fn est_makespan(&self) -> u64 {
        self.per_shard.iter().map(|s| s.est_cost).max().unwrap_or(0)
    }
}

enum ToShard {
    Epoch { delta: Vec<Pair> },
    Stop,
}

struct EpochDone {
    shard: usize,
    delta: Vec<Pair>,
    messages: Vec<Vec<Pair>>,
}

struct ShardOutcome {
    stats: RunStats,
    busy: Duration,
    trace: EvalTrace,
    /// Probe memos at quiescence, keyed by view identity (MMP only).
    memos: MemoBank,
}

/// One shard's epoch loop over its driver; generic so SMP and MMP share
/// the runtime verbatim.
trait EpochWorker {
    fn absorb(&mut self, delta: &[Pair]);
    fn fence(&mut self) -> em_core::Epoch;
    fn drain(&mut self);
    /// This epoch's outgoing delta and maximal messages.
    fn produced(&mut self, since: em_core::Epoch) -> (Vec<Pair>, Vec<Vec<Pair>>);
    fn finish(self) -> (RunStats, EvalTrace, MemoBank);
}

struct SmpWorker<'a> {
    driver: SmpDriver<'a>,
    matcher: &'a (dyn Matcher + Sync),
}

impl EpochWorker for SmpWorker<'_> {
    fn absorb(&mut self, delta: &[Pair]) {
        self.driver.absorb(delta);
    }
    fn fence(&mut self) -> em_core::Epoch {
        self.driver.fence()
    }
    fn drain(&mut self) {
        self.driver.run(self.matcher);
    }
    fn produced(&mut self, since: em_core::Epoch) -> (Vec<Pair>, Vec<Vec<Pair>>) {
        (self.driver.delta_since(since).to_vec(), Vec::new())
    }
    fn finish(mut self) -> (RunStats, EvalTrace, MemoBank) {
        let trace = self.driver.take_trace();
        (*self.driver.stats(), trace, MemoBank::new())
    }
}

struct MmpWorker<'a> {
    driver: MmpDriver<'a>,
    matcher: &'a (dyn ProbabilisticMatcher + Sync),
    scorer: &'a (dyn GlobalScorer + Send + Sync),
    /// Whether to bank probe memos at quiescence (only when the caller
    /// passed a cross-run [`MemoBank`]).
    collect_memos: bool,
}

impl EpochWorker for MmpWorker<'_> {
    fn absorb(&mut self, delta: &[Pair]) {
        self.driver.absorb(delta, self.scorer);
    }
    fn fence(&mut self) -> em_core::Epoch {
        self.driver.fence()
    }
    fn drain(&mut self) {
        self.driver.run(self.matcher, self.scorer);
    }
    fn produced(&mut self, since: em_core::Epoch) -> (Vec<Pair>, Vec<Vec<Pair>>) {
        (
            self.driver.delta_since(since).to_vec(),
            self.driver.take_outbox(),
        )
    }
    fn finish(mut self) -> (RunStats, EvalTrace, MemoBank) {
        let trace = self.driver.take_trace();
        let mut memos = MemoBank::new();
        if self.collect_memos {
            self.driver.bank_memos(&mut memos);
        }
        (*self.driver.stats(), trace, memos)
    }
}

fn worker_loop<W: EpochWorker>(
    mut worker: W,
    shard: usize,
    rx: Receiver<ToShard>,
    tx: Sender<EpochDone>,
) -> ShardOutcome {
    let mut busy = Duration::ZERO;
    loop {
        match rx.recv().expect("coordinator alive") {
            ToShard::Stop => break,
            ToShard::Epoch { delta } => {
                let t0 = Instant::now();
                worker.absorb(&delta);
                let fence = worker.fence();
                worker.drain();
                let (produced, messages) = worker.produced(fence);
                busy += t0.elapsed();
                tx.send(EpochDone {
                    shard,
                    delta: produced,
                    messages,
                })
                .expect("coordinator alive");
            }
        }
    }
    let (stats, trace, memos) = worker.finish();
    ShardOutcome {
        stats,
        busy,
        trace,
        memos,
    }
}

/// Run the epoch protocol over `k` workers built by `make_worker`,
/// reducing each epoch's responses with `reduce` (which folds deltas
/// and messages into `global` and returns the fresh pairs to
/// broadcast). Returns the global evidence at fixpoint, per-shard
/// outcomes, the epoch count, and the distinct cross-shard pair count.
fn run_epochs<W, F, R>(
    k: usize,
    evidence: &Evidence,
    make_worker: F,
    mut reduce: R,
) -> (Evidence, Vec<ShardOutcome>, u64, u64)
where
    W: EpochWorker + Send,
    F: Fn(usize) -> W + Sync,
    R: FnMut(&mut Evidence, Vec<EpochDone>) -> Vec<Pair>,
{
    let make_worker = &make_worker;
    std::thread::scope(|scope| {
        let (done_tx, done_rx) = channel::unbounded::<EpochDone>();
        let mut to_shard: Vec<Sender<ToShard>> = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        for shard in 0..k {
            let (tx, rx) = channel::unbounded::<ToShard>();
            to_shard.push(tx);
            let done_tx = done_tx.clone();
            handles.push(scope.spawn(move || worker_loop(make_worker(shard), shard, rx, done_tx)));
        }
        drop(done_tx);

        let mut global = Evidence::from_parts(evidence.positive.clone(), evidence.negative.clone());
        let mut epochs = 0u64;
        let mut cross_shard_pairs = 0u64;
        let mut delta: Vec<Pair> = Vec::new();
        loop {
            epochs += 1;
            for tx in &to_shard {
                tx.send(ToShard::Epoch {
                    delta: delta.clone(),
                })
                .expect("shard alive");
            }
            // The fence: nothing proceeds until every shard reported its
            // epoch, so there are never deltas in flight when the merged
            // delta is inspected for termination. A worker only exits
            // before `Stop` by panicking, and its sibling senders keep
            // the channel open — so a plain blocking recv would hang
            // forever on a dead shard; poll with a liveness check and
            // propagate the death as a panic instead.
            let mut responses: Vec<Option<EpochDone>> = (0..k).map(|_| None).collect();
            for _ in 0..k {
                let done = loop {
                    if let Some(done) = done_rx.try_recv() {
                        break done;
                    }
                    if handles.iter().any(|h| h.is_finished()) {
                        panic!("a shard worker terminated before its epoch response");
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                };
                let slot = done.shard;
                responses[slot] = Some(done);
            }
            // Reduce in shard-id order — deterministic regardless of
            // thread scheduling.
            let fresh = reduce(&mut global, responses.into_iter().flatten().collect());
            if fresh.is_empty() {
                break;
            }
            cross_shard_pairs += fresh.len() as u64;
            delta = fresh;
        }
        for tx in &to_shard {
            tx.send(ToShard::Stop).expect("shard alive");
        }
        let outcomes: Vec<ShardOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("shard thread"))
            .collect();
        (global, outcomes, epochs, cross_shard_pairs)
    })
}

/// Assemble the output + report shared by both schemes.
fn assemble(
    start: Instant,
    plan: &ShardPlan,
    coordinator_stats: RunStats,
    global: Evidence,
    outcomes: Vec<ShardOutcome>,
    epochs: u64,
    cross_shard_pairs: u64,
) -> (MatchOutput, ShardReport) {
    let mut stats = coordinator_stats;
    let mut per_shard = Vec::with_capacity(outcomes.len());
    let mut measured: Vec<(NeighborhoodId, Duration)> = Vec::new();
    let mut busy_units = Vec::with_capacity(outcomes.len());
    let mut makespan = Duration::ZERO;
    let mut total_work = Duration::ZERO;
    for (s, outcome) in outcomes.into_iter().enumerate() {
        stats.merge(&outcome.stats);
        per_shard.push(ShardLoad {
            shard: s,
            neighborhoods: plan.shards[s].len(),
            units: plan.units_on(s),
            est_cost: plan.shard_cost[s],
            busy: outcome.busy,
            evaluations: outcome.stats.neighborhoods_processed,
        });
        busy_units.push(outcome.busy.as_nanos() as u64);
        makespan = makespan.max(outcome.busy);
        total_work += outcome.busy;
        measured.extend(outcome.trace);
    }
    measured.sort_by_key(|&(id, _)| id);
    // Sum repeated visits of the same neighborhood into one entry.
    measured.dedup_by(|next, acc| {
        if next.0 == acc.0 {
            acc.1 += next.1;
            true
        } else {
            false
        }
    });
    stats.finalize(start.elapsed(), epochs);

    let report = ShardReport {
        shards: plan.shards.len(),
        components: plan.components.len(),
        largest_component: plan.largest_component(),
        largest_component_cost: plan.largest_component_cost(),
        split_components: plan.split_components,
        pinned_components: plan.pinned_components,
        epochs,
        cross_shard_pairs,
        est_skew: plan.est_skew(),
        busy_skew: skew(&busy_units),
        makespan,
        total_work,
        speedup: if makespan > Duration::ZERO {
            total_work.as_secs_f64() / makespan.as_secs_f64()
        } else {
            1.0
        },
        per_shard,
        neighborhood_costs: plan.costs.clone(),
        measured,
    };

    let negative = global.negative.clone();
    let mut matches = global.into_positive();
    for p in negative.iter() {
        matches.remove(p);
    }
    (MatchOutput { matches, stats }, report)
}

/// Sharded SMP: the fixpoint equals the sequential SMP fixpoint.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate) with `Backend::Sharded`; `shard_smp_planned` is the engine hook"
)]
pub fn shard_smp(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &ShardConfig,
) -> (MatchOutput, ShardReport) {
    let index = DependencyIndex::build(dataset, cover);
    let costs = estimate_costs(dataset, cover);
    let plan = ShardPlan::build(&index, config.shards, &costs, config.policy);
    shard_smp_planned(matcher, dataset, cover, &index, &plan, evidence)
}

/// The sharded SMP engine over a caller-owned [`DependencyIndex`] and
/// [`ShardPlan`] — what a session uses so the index survives across runs
/// and the plan can be rebuilt from measured costs
/// ([`ShardPlan::replan_from`]). The deprecated [`shard_smp`] wrapper
/// builds both from estimates and delegates here.
pub fn shard_smp_planned(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    index: &DependencyIndex,
    plan: &ShardPlan,
    evidence: &Evidence,
) -> (MatchOutput, ShardReport) {
    let start = Instant::now();
    let plan_ref = plan;
    let index_ref = index;
    let (global, outcomes, epochs, crossed) = run_epochs(
        plan.shards.len(),
        evidence,
        |shard| {
            let mut driver = SmpDriver::for_members(
                dataset,
                cover,
                index_ref,
                &plan_ref.shards[shard],
                evidence,
            );
            driver.enable_trace();
            SmpWorker { driver, matcher }
        },
        |global, responses| {
            let fence = global.advance_epoch();
            for done in responses {
                for p in done.delta {
                    global.insert_positive(p);
                }
            }
            global.delta_since(fence).to_vec()
        },
    );
    assemble(
        start,
        plan,
        RunStats::default(),
        global,
        outcomes,
        epochs,
        crossed,
    )
}

/// Sharded MMP: the fixpoint equals [`em_core::framework::mmp`]'s for
/// exact supermodular matchers (the same caveat as
/// [`MmpConfig::incremental`] applies to approximate backends). Shards
/// compute base matches and maximal messages; the coordinator owns the
/// message store and the promotion loop.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate) with `Backend::Sharded`; `shard_mmp_planned` is the engine hook"
)]
pub fn shard_mmp(
    matcher: &(dyn ProbabilisticMatcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    mmp_config: &MmpConfig,
    config: &ShardConfig,
) -> (MatchOutput, ShardReport) {
    let index = DependencyIndex::build(dataset, cover);
    let costs = estimate_costs(dataset, cover);
    let plan = ShardPlan::build(&index, config.shards, &costs, config.policy);
    shard_mmp_planned(
        matcher, dataset, cover, &index, &plan, evidence, mmp_config, None,
    )
}

/// Per-shard warm-start slice: probe memos for unchanged member views
/// plus the initial worklist (the changed members only).
struct ShardSeed {
    memos: Vec<(NeighborhoodId, ProbeMemo)>,
    active: Vec<NeighborhoodId>,
}

/// The sharded MMP engine over a caller-owned index and plan (see
/// [`shard_smp_planned`]).
///
/// `warm`, when given, is the cross-run [`WarmStart`]: the coordinator
/// adopts the previous fixpoint's message store (every carried message
/// re-checked for promotion against the current evidence and scorer),
/// each shard's initial worklist is restricted to the member
/// neighborhoods whose view identity misses the memo bank (i.e. views
/// that changed since the previous fixpoint — unchanged views would
/// reproduce their quiescent state, and their messages are already in
/// the carried store), and bank hits seed the shard drivers' probe
/// memos so delta-activated revisits replay instead of re-probing. At
/// quiescence the store and memos flow back into `warm` for the next
/// run. Only consulted for [`MmpConfig::incremental`] runs — replay is
/// the incremental path.
#[allow(clippy::too_many_arguments)]
pub fn shard_mmp_planned(
    matcher: &(dyn ProbabilisticMatcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    index: &DependencyIndex,
    plan: &ShardPlan,
    evidence: &Evidence,
    mmp_config: &MmpConfig,
    mut warm: Option<&mut WarmStart>,
) -> (MatchOutput, ShardReport) {
    let start = Instant::now();
    if !mmp_config.incremental {
        warm = None;
    }
    // Pre-partition the warm state by shard so each worker thread can
    // take its slice without contending on the caller's bank.
    let seeds: Vec<std::sync::Mutex<Option<ShardSeed>>> = {
        let mut per_shard: Vec<Option<ShardSeed>> = (0..plan.shards.len()).map(|_| None).collect();
        if let Some(warm) = warm.as_deref_mut() {
            for (slot, members) in per_shard.iter_mut().zip(&plan.shards) {
                let mut seed = ShardSeed {
                    memos: Vec::new(),
                    active: Vec::new(),
                };
                for &id in members {
                    let view = cover.view(dataset, id);
                    match warm.bank.withdraw_grown(&view, warm.entity_floor) {
                        // Identical view: quiescent; its messages are in
                        // the carried store — skip it.
                        Some((memo, true)) => seed.memos.push((id, memo)),
                        // Grown view: re-evaluate with the old memo so
                        // untouched components replay.
                        Some((memo, false)) => {
                            seed.memos.push((id, memo));
                            seed.active.push(id);
                        }
                        None => seed.active.push(id),
                    }
                }
                *slot = Some(seed);
            }
        }
        per_shard.into_iter().map(std::sync::Mutex::new).collect()
    };
    let seeds_ref = &seeds;
    let collect_memos = warm.is_some();
    let plan_ref = plan;
    let index_ref = index;
    // One grounding shared read-only by every shard, exactly like the
    // round-based executor.
    let scorer = matcher.global_scorer(dataset);
    let scorer_ref: &(dyn GlobalScorer + Send + Sync) = scorer.as_ref();
    // `memo_capacity` bounds the run's total memoized probe entries, so
    // each shard's private pool gets an equal slice of it.
    let per_shard_config = MmpConfig {
        memo_capacity: if mmp_config.memo_capacity == usize::MAX {
            usize::MAX
        } else {
            (mmp_config.memo_capacity / plan.shards.len().max(1)).max(1)
        },
        ..*mmp_config
    };
    let per_shard_config = &per_shard_config;
    // A warm run adopts the previous fixpoint's store and re-checks
    // every carried message's promotion in the first reduce.
    let mut store = match warm.as_deref_mut() {
        Some(warm) => std::mem::take(&mut warm.store),
        None => MessageStore::new(),
    };
    let mut dirty_messages: Vec<Pair> = store.roots();
    let mut coordinator_stats = RunStats::default();
    let (global, outcomes, epochs, crossed) = run_epochs(
        plan.shards.len(),
        evidence,
        |shard| {
            let mut driver = MmpDriver::for_members(
                dataset,
                cover,
                index_ref,
                &plan_ref.shards[shard],
                evidence,
                per_shard_config,
            );
            driver.defer_promotions();
            driver.enable_trace();
            if let Some(seed) = seeds_ref[shard].lock().expect("seed lock").take() {
                driver.seed_worklist(&seed.active);
                for (id, memo) in seed.memos {
                    driver.seed_memo(id, memo);
                }
            }
            MmpWorker {
                driver,
                matcher,
                scorer: scorer_ref,
                collect_memos,
            }
        },
        |global, responses| {
            let fence = global.advance_epoch();
            // Fold direct matches; remember which are new for dirty
            // marking.
            let mut batch = PairSet::new();
            for done in &responses {
                for &p in &done.delta {
                    if global.insert_positive(p) {
                        batch.insert(p);
                    }
                }
            }
            // Merge the shards' maximal messages into the one store the
            // closure invariant lives in.
            for done in responses {
                for message in done.messages {
                    if message.iter().any(|p| global.negative.contains(*p)) {
                        continue;
                    }
                    if let Some(root) = store.add_message(&message) {
                        dirty_messages.push(root);
                    }
                }
            }
            mark_dirty_around(&batch, scorer_ref, &mut store, &mut dirty_messages);
            promote_dirty(
                &mut store,
                scorer_ref,
                global,
                &mut dirty_messages,
                &mut coordinator_stats,
            );
            global.delta_since(fence).to_vec()
        },
    );
    let mut outcomes = outcomes;
    if let Some(warm) = warm {
        warm.store = store;
        for outcome in &mut outcomes {
            warm.bank.absorb(std::mem::take(&mut outcome.memos));
        }
    }
    assemble(
        start,
        plan,
        coordinator_stats,
        global,
        outcomes,
        epochs,
        crossed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::framework::{mmp_with_order, smp_with_order};
    use em_core::testing::paper_example;

    fn config(shards: usize, policy: SplitPolicy) -> ShardConfig {
        ShardConfig { shards, policy }
    }

    // Engine-hook shims with the deprecated wrappers' historical shape.
    fn run_shard_smp(
        matcher: &(dyn Matcher + Sync),
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
        config: &ShardConfig,
    ) -> (MatchOutput, ShardReport) {
        let index = DependencyIndex::build(dataset, cover);
        let plan = ShardPlan::build(
            &index,
            config.shards,
            &estimate_costs(dataset, cover),
            config.policy,
        );
        shard_smp_planned(matcher, dataset, cover, &index, &plan, evidence)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_shard_mmp(
        matcher: &(dyn ProbabilisticMatcher + Sync),
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
        mmp_config: &MmpConfig,
        config: &ShardConfig,
    ) -> (MatchOutput, ShardReport) {
        let index = DependencyIndex::build(dataset, cover);
        let plan = ShardPlan::build(
            &index,
            config.shards,
            &estimate_costs(dataset, cover),
            config.policy,
        );
        shard_mmp_planned(
            matcher, dataset, cover, &index, &plan, evidence, mmp_config, None,
        )
    }

    fn smp(
        matcher: &dyn Matcher,
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
    ) -> MatchOutput {
        smp_with_order(matcher, dataset, cover, evidence, None)
    }

    fn mmp(
        matcher: &dyn ProbabilisticMatcher,
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
        config: &MmpConfig,
    ) -> MatchOutput {
        mmp_with_order(matcher, dataset, cover, evidence, config, None)
    }

    #[test]
    fn shard_smp_equals_sequential_fixpoint() {
        let (ds, cover, matcher, _) = paper_example();
        let sequential = smp(&matcher, &ds, &cover, &Evidence::none());
        for policy in [SplitPolicy::Pin, SplitPolicy::Split] {
            for shards in [1, 2, 3, 5] {
                let (out, report) = run_shard_smp(
                    &matcher,
                    &ds,
                    &cover,
                    &Evidence::none(),
                    &config(shards, policy),
                );
                assert_eq!(out.matches, sequential.matches, "shards={shards}");
                assert_eq!(report.shards, shards);
                assert!(report.epochs >= 2, "work epoch + confirming epoch");
                let evals: u64 = report.per_shard.iter().map(|s| s.evaluations).sum();
                assert_eq!(evals, out.stats.neighborhoods_processed);
            }
        }
    }

    #[test]
    fn shard_mmp_equals_sequential_fixpoint() {
        let (ds, cover, matcher, expected) = paper_example();
        let sequential = mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
        );
        assert_eq!(sequential.matches, expected);
        for policy in [SplitPolicy::Pin, SplitPolicy::Split] {
            for shards in [1, 2, 4] {
                let (out, report) = run_shard_mmp(
                    &matcher,
                    &ds,
                    &cover,
                    &Evidence::none(),
                    &MmpConfig::default(),
                    &config(shards, policy),
                );
                assert_eq!(out.matches, expected, "shards={shards} policy={policy:?}");
                assert_eq!(out.stats.rounds, report.epochs);
                assert!(report.makespan <= report.total_work + Duration::from_nanos(1));
            }
        }
    }

    #[test]
    fn shard_mmp_full_recompute_arm_matches_too() {
        let (ds, cover, matcher, expected) = paper_example();
        let mmp_config = MmpConfig {
            incremental: false,
            ..Default::default()
        };
        let (out, _) = run_shard_mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &mmp_config,
            &config(3, SplitPolicy::Split),
        );
        assert_eq!(out.matches, expected);
    }

    #[test]
    fn report_accounts_for_every_neighborhood_and_unit() {
        let (ds, cover, matcher, _) = paper_example();
        let (out, report) = run_shard_mmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
            &config(2, SplitPolicy::Split),
        );
        assert_eq!(
            report
                .per_shard
                .iter()
                .map(|s| s.neighborhoods)
                .sum::<usize>(),
            cover.len()
        );
        assert_eq!(report.neighborhood_costs.len(), cover.len());
        // Every neighborhood was measured at least once.
        assert_eq!(report.measured.len(), cover.len());
        assert!(report.est_skew >= 1.0 - 1e-9);
        assert!(report.busy_skew >= 1.0 - 1e-9);
        assert!(report.speedup >= 1.0 - 1e-9);
        assert!(out.stats.promotions > 0, "the paper example promotes");
    }

    #[test]
    fn replan_from_measured_costs_is_valid_and_byte_identical() {
        let (ds, cover, matcher, expected) = paper_example();
        let index = DependencyIndex::build(&ds, &cover);
        let plan = ShardPlan::build(&index, 2, &estimate_costs(&ds, &cover), SplitPolicy::Split);
        let (out, report) = shard_mmp_planned(
            &matcher,
            &ds,
            &cover,
            &index,
            &plan,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
        );
        assert_eq!(out.matches, expected);

        let replanned = plan.replan_from(&index, &report);
        assert_eq!(replanned.shards.len(), plan.shards.len());
        assert_eq!(replanned.policy, plan.policy);
        // The balancer's cost slice is now the measured busy times.
        for &(id, busy) in &report.measured {
            assert_eq!(replanned.costs[id.index()], (busy.as_nanos() as u64).max(1));
        }
        // Still a partition, and the fixpoint does not depend on the plan.
        let mut seen: Vec<NeighborhoodId> = replanned.shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), cover.len());
        let (again, report2) = shard_mmp_planned(
            &matcher,
            &ds,
            &cover,
            &index,
            &replanned,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
        );
        assert_eq!(again.matches, expected);
        assert_eq!(report2.shards, 2);
    }

    #[test]
    fn initial_evidence_flows_through_the_sharded_run() {
        let (ds, cover, matcher, _) = paper_example();
        // Feed the sequential SMP fixpoint back in as evidence: the
        // sharded run must reproduce the sequential MMP-on-evidence
        // fixpoint.
        let smp_out = smp(&matcher, &ds, &cover, &Evidence::none());
        let evidence = Evidence::positive(smp_out.matches.clone());
        let sequential = mmp(&matcher, &ds, &cover, &evidence, &MmpConfig::default());
        let (sharded, _) = run_shard_mmp(
            &matcher,
            &ds,
            &cover,
            &evidence,
            &MmpConfig::default(),
            &config(2, SplitPolicy::Split),
        );
        assert_eq!(sharded.matches, sequential.matches);
        assert!(smp_out.matches.is_subset(&sharded.matches));
    }
}
