//! # em-parallel — parallel execution and grid simulation (§6.3)
//!
//! The framework parallelizes naturally: within a round, neighborhood
//! evaluations are independent given the evidence the round was fenced
//! on. [`executor`] implements the paper's round-based scheme over
//! worker threads (NO-MP, SMP, and MMP variants) as a delta-driven
//! scheduler — per-round epoch fences on the accumulating evidence, a
//! `DependencyIndex` routing each delta pair to the neighborhoods that
//! can use it, and incremental probe replay for MMP — with
//! per-neighborhood cost tracing; [`grid`] replays a trace onto `m`
//! simulated machines with random assignment and per-round job overhead
//! — reproducing Table 1's observation that 30 machines yield ~11×, not
//! 30×.

#![warn(missing_docs)]

pub mod executor;
pub mod grid;

pub use executor::{
    execute_mmp, execute_no_mp, execute_smp, EvalRecord, ParallelConfig, RoundTrace,
};
#[allow(deprecated)]
pub use executor::{parallel_mmp, parallel_no_mp, parallel_smp};
pub use grid::{simulate, Assignment, GridParams, GridReport};
