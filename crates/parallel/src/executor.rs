//! Round-based parallel execution of the framework (§6.3), delta-driven.
//!
//! The paper's parallel scheme: "run it in rounds. All neighborhoods are
//! marked active at the beginning. In each round, EM is run on all the
//! active neighborhoods in parallel, then the new evidence from the runs
//! is collected, and used to obtain active neighborhoods for the next
//! round." Workers never see each other's in-flight matches — which is
//! exactly what makes the result deterministic and equal to the
//! sequential fixpoint (the consistency theorem says the fixpoint does
//! not depend on evaluation order).
//!
//! The per-round isolation is enforced with **epoch fences** on the
//! accumulating [`Evidence`] rather than whole-set snapshots: the reduce
//! step fences the epoch, folds every worker's new matches in, and routes
//! only `delta_since(fence)` through the [`DependencyIndex`] — each delta
//! pair activates exactly the neighborhoods containing both endpoints and
//! is appended to their cached local evidence. Re-running a neighborhood
//! therefore costs O(|its delta|) bookkeeping instead of re-restricting a
//! clone of the full `M+`, and MMP workers re-probe only the conditioned
//! probes their delta can have changed (see
//! [`em_core::framework::compute_maximal_incremental`]).
//!
//! Work distribution uses a crossbeam channel as a shared work queue, so
//! large neighborhoods do not straggle a statically partitioned worker.

use crossbeam::channel;
use em_core::cover::{Cover, NeighborhoodId};
use em_core::framework::{
    compute_maximal, compute_maximal_incremental, mark_dirty_around, promote_dirty,
    DependencyIndex, MemoPool, MessageStore, MmpConfig, ProbeMemo, RunStats,
};
use em_core::{Dataset, Evidence, MatchOutput, Matcher, Pair, PairSet, ProbabilisticMatcher};
use std::time::{Duration, Instant};

/// Parallel executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads per round.
    pub workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
        }
    }
}

/// Cost record of one neighborhood evaluation within a round.
#[derive(Debug, Clone, Copy)]
pub struct EvalRecord {
    /// Which neighborhood.
    pub neighborhood: NeighborhoodId,
    /// Wall time of the matcher call(s) for this neighborhood.
    pub cost: Duration,
}

/// Trace of a parallel run: per-round evaluation costs, for the grid
/// simulator.
#[derive(Debug, Clone, Default)]
pub struct RoundTrace {
    /// One entry per round.
    pub rounds: Vec<Vec<EvalRecord>>,
}

impl RoundTrace {
    /// Total matcher work across all rounds.
    pub fn total_work(&self) -> Duration {
        self.rounds
            .iter()
            .flat_map(|r| r.iter())
            .map(|e| e.cost)
            .sum()
    }

    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// One round: evaluate `active` neighborhoods in parallel against frozen
/// per-neighborhood evidence. Returns per-neighborhood outputs.
fn run_round<R: Send>(
    workers: usize,
    active: &[NeighborhoodId],
    work: impl Fn(NeighborhoodId) -> R + Sync,
) -> Vec<(NeighborhoodId, R, Duration)> {
    let (job_tx, job_rx) = channel::unbounded::<NeighborhoodId>();
    for &id in active {
        job_tx.send(id).expect("queue open");
    }
    drop(job_tx);
    let (result_tx, result_rx) = channel::unbounded();
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            let work = &work;
            scope.spawn(move || {
                while let Ok(id) = job_rx.recv() {
                    let start = Instant::now();
                    let out = work(id);
                    result_tx
                        .send((id, out, start.elapsed()))
                        .expect("reducer alive");
                }
            });
        }
        drop(result_tx);
    });
    let mut results: Vec<(NeighborhoodId, R, Duration)> = result_rx.into_iter().collect();
    // Deterministic reduce order regardless of thread scheduling.
    results.sort_by_key(|(id, _, _)| *id);
    results
}

/// Per-neighborhood scheduler state shared by the parallel schemes:
/// cached local evidence plus the dirty pairs routed since the
/// neighborhood's last evaluation.
struct DeltaState {
    local: Vec<Option<Evidence>>,
    pending: Vec<PairSet>,
}

impl DeltaState {
    fn new(n: usize) -> Self {
        Self {
            local: vec![None; n],
            pending: vec![PairSet::new(); n],
        }
    }

    /// Apply each active neighborhood's pending delta to its cached local
    /// evidence (first visits restrict lazily in the worker). When
    /// `collect` is set, the drained dirty sets are returned indexed by
    /// neighborhood — MMP's probe invalidation needs them; SMP just
    /// applies and discards.
    fn begin_round(&mut self, active: &[NeighborhoodId], collect: bool) -> Vec<PairSet> {
        let mut round_dirty: Vec<PairSet> = if collect {
            vec![PairSet::new(); self.pending.len()]
        } else {
            Vec::new()
        };
        for &id in active {
            let dirty = std::mem::take(&mut self.pending[id.index()]);
            if let Some(ev) = &mut self.local[id.index()] {
                for p in dirty.iter() {
                    ev.insert_positive(p);
                }
            }
            if collect {
                round_dirty[id.index()] = dirty;
            }
        }
        round_dirty
    }

    /// Cached local evidence of `id`, if it has been evaluated before.
    /// Workers borrow this read-only; first visits compute the
    /// restriction themselves and return it for caching.
    fn cached(&self, id: NeighborhoodId) -> Option<&Evidence> {
        self.local[id.index()].as_ref()
    }

    /// First-visit restriction of the accumulated `found` to the view.
    fn restricted(view: &em_core::View<'_>, found: &Evidence) -> Evidence {
        Evidence::untracked(
            view.restrict(&found.positive),
            view.restrict(&found.negative),
        )
    }

    /// Route one delta pair: record it in the pending set of every
    /// neighborhood containing both endpoints and report them as active.
    fn route(&mut self, index: &DependencyIndex, pair: Pair, activate: &mut Vec<NeighborhoodId>) {
        index.for_each_neighborhood(pair, |id| {
            self.pending[id.index()].insert(pair);
            activate.push(id);
        });
    }
}

fn sorted_active(mut next: Vec<NeighborhoodId>) -> Vec<NeighborhoodId> {
    next.sort_unstable();
    next.dedup();
    next
}

/// Parallel SMP: the round-based scheme with simple messages.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate) with `Backend::Parallel`; `execute_smp` is the engine hook"
)]
pub fn parallel_smp(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &ParallelConfig,
) -> (MatchOutput, RoundTrace) {
    execute_smp(matcher, dataset, cover, None, evidence, config)
}

/// The parallel SMP engine. `index` is the cover's [`DependencyIndex`]
/// when the caller (a session) already owns it; `None` builds one for
/// this run — what the deprecated [`parallel_smp`] wrapper always did.
pub fn execute_smp(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    index: Option<&DependencyIndex>,
    evidence: &Evidence,
    config: &ParallelConfig,
) -> (MatchOutput, RoundTrace) {
    let start = Instant::now();
    let built;
    let index = match index {
        Some(shared) => shared,
        None => {
            built = DependencyIndex::build(dataset, cover);
            &built
        }
    };
    let mut stats = RunStats::default();
    let mut trace = RoundTrace::default();
    let mut found = Evidence::from_parts(evidence.positive.clone(), evidence.negative.clone());
    let mut state = DeltaState::new(cover.len());
    let mut active: Vec<NeighborhoodId> = cover.ids().collect();

    while !active.is_empty() {
        stats.rounds += 1;
        state.begin_round(&active, false);
        let found_ref = &found;
        let state_ref = &state;
        let results = run_round(config.workers, &active, |id| {
            let view = cover.view(dataset, id);
            let computed = match state_ref.cached(id) {
                Some(_) => None,
                None => Some(DeltaState::restricted(&view, found_ref)),
            };
            let local: &Evidence = computed
                .as_ref()
                .or_else(|| state_ref.cached(id))
                .expect("cached or computed");
            let matches = matcher.match_view(&view, local);
            (matches, computed)
        });

        let fence = found.advance_epoch();
        let mut record = Vec::with_capacity(results.len());
        let mut new_matches = PairSet::new();
        for (id, (matches, computed_local), cost) in results {
            stats.matcher_calls += 1;
            stats.neighborhoods_processed += 1;
            record.push(EvalRecord {
                neighborhood: id,
                cost,
            });
            if let Some(local) = computed_local {
                state.local[id.index()] = Some(local);
            }
            for p in matches.iter() {
                if !found.positive.contains(p) {
                    new_matches.insert(p);
                }
            }
        }
        trace.rounds.push(record);

        if new_matches.is_empty() {
            break;
        }
        found.union_positive(&new_matches);
        let delta: Vec<Pair> = found.delta_since(fence).to_vec();
        stats.messages_sent += delta.len() as u64;
        let mut next: Vec<NeighborhoodId> = Vec::new();
        for p in delta {
            state.route(index, p, &mut next);
        }
        active = sorted_active(next);
    }

    let mut matches = found.into_positive();
    for p in evidence.negative.iter() {
        matches.remove(p);
    }
    let rounds = stats.rounds;
    stats.finalize(start.elapsed(), rounds);
    (MatchOutput { matches, stats }, trace)
}

/// Parallel MMP: rounds compute both matches and maximal messages;
/// merging and promotion happen in the reduce step. With
/// [`MmpConfig::incremental`], workers re-probe only the conditioned
/// probes their round delta can have changed and replay the rest from
/// the per-neighborhood [`ProbeMemo`] carried across rounds.
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate) with `Backend::Parallel`; `execute_mmp` is the engine hook"
)]
pub fn parallel_mmp(
    matcher: &(dyn ProbabilisticMatcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    mmp_config: &MmpConfig,
    config: &ParallelConfig,
) -> (MatchOutput, RoundTrace) {
    execute_mmp(matcher, dataset, cover, None, evidence, mmp_config, config)
}

/// The parallel MMP engine (see [`execute_smp`] for the `index`
/// contract).
#[allow(clippy::too_many_arguments)]
pub fn execute_mmp(
    matcher: &(dyn ProbabilisticMatcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    index: Option<&DependencyIndex>,
    evidence: &Evidence,
    mmp_config: &MmpConfig,
    config: &ParallelConfig,
) -> (MatchOutput, RoundTrace) {
    let start = Instant::now();
    let scorer = matcher.global_scorer(dataset);
    let built;
    let index = match index {
        Some(shared) => shared,
        None => {
            built = DependencyIndex::build(dataset, cover);
            &built
        }
    };
    let mut stats = RunStats::default();
    let mut trace = RoundTrace::default();
    let mut found = Evidence::from_parts(evidence.positive.clone(), evidence.negative.clone());
    let mut store = MessageStore::new();
    let mut dirty_messages: Vec<Pair> = Vec::new();
    let mut state = DeltaState::new(cover.len());
    let mut memos = MemoPool::new(cover.len(), mmp_config.memo_capacity);
    let mut active: Vec<NeighborhoodId> = cover.ids().collect();

    while !active.is_empty() {
        stats.rounds += 1;
        let round_dirty = state.begin_round(&active, mmp_config.incremental);
        let found_ref = &found;
        let state_ref = &state;
        let memos_ref = &memos;
        let round_dirty_ref = &round_dirty;
        let scorer_ref = scorer.as_ref();
        let results = run_round(config.workers, &active, |id| {
            let view = cover.view(dataset, id);
            let computed = match state_ref.cached(id) {
                Some(_) => None,
                None => Some(DeltaState::restricted(&view, found_ref)),
            };
            let local: &Evidence = computed
                .as_ref()
                .or_else(|| state_ref.cached(id))
                .expect("cached or computed");
            let mut local_stats = RunStats::default();
            let base = matcher.match_view(&view, local);
            local_stats.matcher_calls += 1;
            let (messages, memo) = if mmp_config.incremental {
                // The shared memo slice is read-only across workers; the
                // clone is this evaluation's private working copy, whose
                // entries move into the returned memo.
                compute_maximal_incremental(
                    matcher,
                    &view,
                    local,
                    &base,
                    &round_dirty_ref[id.index()],
                    scorer_ref,
                    memos_ref.get(id).clone(),
                    mmp_config,
                    &mut local_stats,
                )
            } else {
                (
                    compute_maximal(matcher, &view, local, &base, mmp_config, &mut local_stats),
                    ProbeMemo::new(),
                )
            };
            (base, messages, memo, computed, local_stats)
        });

        let fence = found.advance_epoch();
        let mut record = Vec::with_capacity(results.len());
        let mut new_matches = PairSet::new();
        for (id, (base, messages, memo, computed_local, local_stats), cost) in results {
            stats.merge(&local_stats);
            stats.neighborhoods_processed += 1;
            record.push(EvalRecord {
                neighborhood: id,
                cost,
            });
            memos.put(id, memo, &mut stats);
            if let Some(local) = computed_local {
                state.local[id.index()] = Some(local);
            }
            for p in base.iter() {
                if !found.positive.contains(p) {
                    new_matches.insert(p);
                }
            }
            stats.maximal_messages_created += messages.len() as u64;
            for message in &messages {
                if message.iter().any(|p| evidence.negative.contains(*p)) {
                    continue;
                }
                if let Some(root) = store.add_message(message) {
                    dirty_messages.push(root);
                }
            }
        }
        trace.rounds.push(record);
        found.union_positive(&new_matches);
        mark_dirty_around(
            &new_matches,
            scorer.as_ref(),
            &mut store,
            &mut dirty_messages,
        );

        // Promotion sweep (sequential reduce step); promoted pairs land
        // in this round's epoch delta through the tracked mutator.
        promote_dirty(
            &mut store,
            scorer.as_ref(),
            &mut found,
            &mut dirty_messages,
            &mut stats,
        );

        let delta: Vec<Pair> = found.delta_since(fence).to_vec();
        if delta.is_empty() {
            break;
        }
        stats.messages_sent += delta.len() as u64;
        let mut next: Vec<NeighborhoodId> = Vec::new();
        for p in delta {
            state.route(index, p, &mut next);
        }
        active = sorted_active(next);
    }

    let mut matches = found.into_positive();
    for p in evidence.negative.iter() {
        matches.remove(p);
    }
    let rounds = stats.rounds;
    stats.finalize(start.elapsed(), rounds);
    (MatchOutput { matches, stats }, trace)
}

/// Parallel NO-MP: a single round over all neighborhoods (the natural
/// grid baseline for Table 1).
#[deprecated(
    since = "0.1.0",
    note = "use the `em::Pipeline` front door (umbrella crate) with `Backend::Parallel`; `execute_no_mp` is the engine hook"
)]
pub fn parallel_no_mp(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &ParallelConfig,
) -> (MatchOutput, RoundTrace) {
    execute_no_mp(matcher, dataset, cover, evidence, config)
}

/// The parallel NO-MP engine (no dependency index: nothing is routed).
pub fn execute_no_mp(
    matcher: &(dyn Matcher + Sync),
    dataset: &Dataset,
    cover: &Cover,
    evidence: &Evidence,
    config: &ParallelConfig,
) -> (MatchOutput, RoundTrace) {
    let start = Instant::now();
    let mut stats = RunStats::default();
    let active: Vec<NeighborhoodId> = cover.ids().collect();
    let results = run_round(config.workers, &active, |id| {
        let view = cover.view(dataset, id);
        let local = Evidence::untracked(
            view.restrict(&evidence.positive),
            view.restrict(&evidence.negative),
        );
        matcher.match_view(&view, &local)
    });
    let mut found = evidence.positive.clone();
    let mut record = Vec::with_capacity(results.len());
    for (id, matches, cost) in results {
        stats.matcher_calls += 1;
        stats.neighborhoods_processed += 1;
        record.push(EvalRecord {
            neighborhood: id,
            cost,
        });
        found.union_with(&matches);
    }
    for p in evidence.negative.iter() {
        found.remove(p);
    }
    stats.finalize(start.elapsed(), 1);
    (
        MatchOutput {
            matches: found,
            stats,
        },
        RoundTrace {
            rounds: vec![record],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::framework::{mmp_with_order, smp_with_order};
    use em_core::testing::paper_example;

    // Engine-hook shims with the wrappers' historical shape (no index).
    fn run_psmp(
        matcher: &(dyn Matcher + Sync),
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
        config: &ParallelConfig,
    ) -> (MatchOutput, RoundTrace) {
        execute_smp(matcher, dataset, cover, None, evidence, config)
    }

    fn run_pmmp(
        matcher: &(dyn ProbabilisticMatcher + Sync),
        dataset: &Dataset,
        cover: &Cover,
        evidence: &Evidence,
        mmp_config: &MmpConfig,
        config: &ParallelConfig,
    ) -> (MatchOutput, RoundTrace) {
        execute_mmp(matcher, dataset, cover, None, evidence, mmp_config, config)
    }

    #[test]
    fn parallel_smp_equals_sequential_fixpoint() {
        let (ds, cover, matcher, _) = paper_example();
        let sequential = smp_with_order(&matcher, &ds, &cover, &Evidence::none(), None);
        for workers in [1, 2, 4] {
            let (parallel, trace) = run_psmp(
                &matcher,
                &ds,
                &cover,
                &Evidence::none(),
                &ParallelConfig { workers },
            );
            assert_eq!(parallel.matches, sequential.matches, "workers={workers}");
            assert!(!trace.is_empty());
            assert_eq!(parallel.stats.rounds as usize, trace.len());
        }
    }

    #[test]
    fn parallel_mmp_equals_sequential_fixpoint() {
        let (ds, cover, matcher, expected) = paper_example();
        let sequential = mmp_with_order(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
            None,
        );
        assert_eq!(sequential.matches, expected);
        for workers in [1, 3] {
            let (parallel, _) = run_pmmp(
                &matcher,
                &ds,
                &cover,
                &Evidence::none(),
                &MmpConfig::default(),
                &ParallelConfig { workers },
            );
            assert_eq!(parallel.matches, expected, "workers={workers}");
        }
    }

    #[test]
    fn parallel_mmp_incremental_matches_full_recompute() {
        let (ds, cover, matcher, expected) = paper_example();
        let config = ParallelConfig { workers: 3 };
        let full_cfg = MmpConfig {
            incremental: false,
            ..Default::default()
        };
        let (full, _) = run_pmmp(&matcher, &ds, &cover, &Evidence::none(), &full_cfg, &config);
        let (incr, _) = run_pmmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
            &config,
        );
        assert_eq!(full.matches, expected);
        assert_eq!(incr.matches, expected);
        assert!(incr.stats.conditioned_probes <= full.stats.conditioned_probes);
        assert_eq!(
            incr.stats.conditioned_probes + incr.stats.probes_replayed,
            full.stats.conditioned_probes,
            "every probe is either issued or replayed"
        );
    }

    #[test]
    fn parallel_no_mp_is_single_round() {
        let (ds, cover, matcher, _) = paper_example();
        let (out, trace) = execute_no_mp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &ParallelConfig { workers: 2 },
        );
        assert_eq!(trace.len(), 1);
        assert_eq!(out.matches.len(), 1);
    }

    #[test]
    fn cached_matcher_is_shared_read_only_across_workers() {
        // The memoizing wrapper is Sync: one instance serves every worker
        // of every round by reference; a second run replays entirely from
        // the shared memo without new inference.
        let (ds, cover, matcher, expected) = paper_example();
        let cached = em_core::CachedMatcher::new(matcher);
        let config = ParallelConfig { workers: 4 };
        let (out, _) = run_pmmp(
            &cached,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
            &config,
        );
        assert_eq!(out.matches, expected);
        let before = cached.stats();
        let (replay, _) = run_pmmp(
            &cached,
            &ds,
            &cover,
            &Evidence::none(),
            &MmpConfig::default(),
            &config,
        );
        assert_eq!(replay.matches, expected);
        let after = cached.stats();
        assert!(after.hits > before.hits, "replay run hits the shared cache");
        assert_eq!(
            after.misses, before.misses,
            "replay run performs no new inference"
        );
    }

    #[test]
    fn parallel_smp_with_cache_matches_uncached() {
        let (ds, cover, matcher, _) = paper_example();
        let cached = em_core::CachedMatcher::new(matcher.clone());
        let config = ParallelConfig { workers: 3 };
        let (with_cache, _) = run_psmp(&cached, &ds, &cover, &Evidence::none(), &config);
        let (without, _) = run_psmp(&matcher, &ds, &cover, &Evidence::none(), &config);
        assert_eq!(with_cache.matches, without.matches);
    }

    #[test]
    fn trace_records_every_evaluation() {
        let (ds, cover, matcher, _) = paper_example();
        let (out, trace) = run_psmp(
            &matcher,
            &ds,
            &cover,
            &Evidence::none(),
            &ParallelConfig { workers: 2 },
        );
        let recorded: u64 = trace.rounds.iter().map(|r| r.len() as u64).sum();
        assert_eq!(recorded, out.stats.neighborhoods_processed);
        // First round touches every neighborhood.
        assert_eq!(trace.rounds[0].len(), cover.len());
    }
}
