//! Grid simulator for Table 1.
//!
//! The paper ran DBLP-BIG on a 30-machine Hadoop grid and observed an
//! ~11× speedup — far from 30× because of (a) per-round job setup
//! overhead and (b) statistical skew from randomly assigning
//! neighborhoods to machines ("some nodes get multiple bigger than
//! average neighborhoods"). Both effects are structural, not
//! Hadoop-specific, so they can be simulated faithfully: replay the
//! measured per-neighborhood costs of a real (threaded) run onto `m`
//! virtual machines with random assignment per round; the round's wall
//! time is the maximum machine load plus the setup overhead.

use crate::executor::RoundTrace;
use em_core::properties::SplitMix64;
use std::time::Duration;

/// How neighborhoods are placed onto virtual machines within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignment {
    /// Uniform random placement — the paper's setting ("neighborhoods
    /// are randomly assigned to nodes"), and the source of its reported
    /// skew.
    #[default]
    Random,
    /// Longest-processing-time greedy: neighborhoods sorted by
    /// descending cost (ties by id), each placed on the currently
    /// least-loaded machine. The balancing discipline `em-shard` uses
    /// for components; simulating it here is the validation path
    /// between the simulator and real shard runs.
    Lpt,
}

/// Grid simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GridParams {
    /// Number of virtual machines.
    pub machines: usize,
    /// Map/Reduce job setup overhead charged once per round.
    pub per_round_overhead: Duration,
    /// Assignment RNG seed (used by [`Assignment::Random`] only).
    pub seed: u64,
    /// Placement policy.
    pub assignment: Assignment,
}

impl Default for GridParams {
    fn default() -> Self {
        Self {
            machines: 30,
            // The paper's rounds are minutes long; Hadoop-era job setup
            // was tens of seconds.
            per_round_overhead: Duration::from_secs(20),
            seed: 0x6121D,
            assignment: Assignment::Random,
        }
    }
}

/// Result of a grid simulation.
#[derive(Debug, Clone, Copy)]
pub struct GridReport {
    /// Number of rounds replayed.
    pub rounds: usize,
    /// Simulated wall-clock time on the grid.
    pub makespan: Duration,
    /// Total matcher work (= single-machine time, no overhead).
    pub total_work: Duration,
    /// `total_work / makespan`.
    pub speedup: f64,
    /// Mean over rounds of `max machine load / mean machine load`
    /// (1.0 = perfectly balanced).
    pub mean_skew: f64,
}

/// Replay a trace onto a simulated grid.
pub fn simulate(trace: &RoundTrace, params: &GridParams) -> GridReport {
    assert!(params.machines > 0, "at least one machine");
    let mut rng = SplitMix64::new(params.seed);
    let mut makespan = Duration::ZERO;
    let mut skew_sum = 0.0;
    let mut skew_rounds = 0usize;
    for round in &trace.rounds {
        if round.is_empty() {
            continue;
        }
        let mut loads = vec![Duration::ZERO; params.machines];
        match params.assignment {
            Assignment::Random => {
                for eval in round {
                    // Random assignment, as in the paper ("neighborhoods
                    // are randomly assigned to nodes").
                    let machine = rng.below(params.machines);
                    loads[machine] += eval.cost;
                }
            }
            Assignment::Lpt => {
                let mut order: Vec<&crate::executor::EvalRecord> = round.iter().collect();
                order.sort_by_key(|e| (std::cmp::Reverse(e.cost), e.neighborhood));
                for eval in order {
                    let machine = loads
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, load)| (*load, i))
                        .map(|(i, _)| i)
                        .expect("at least one machine");
                    loads[machine] += eval.cost;
                }
            }
        }
        let max = loads.iter().copied().max().unwrap_or(Duration::ZERO);
        let total: Duration = loads.iter().copied().sum();
        let mean = total / params.machines as u32;
        if mean > Duration::ZERO {
            skew_sum += max.as_secs_f64() / mean.as_secs_f64();
            skew_rounds += 1;
        }
        makespan += max + params.per_round_overhead;
    }
    let total_work = trace.total_work();
    GridReport {
        rounds: trace.rounds.len(),
        makespan,
        total_work,
        speedup: if makespan > Duration::ZERO {
            total_work.as_secs_f64() / makespan.as_secs_f64()
        } else {
            1.0
        },
        mean_skew: if skew_rounds > 0 {
            skew_sum / skew_rounds as f64
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::EvalRecord;
    use em_core::cover::NeighborhoodId;

    fn trace(rounds: Vec<Vec<u64>>) -> RoundTrace {
        RoundTrace {
            rounds: rounds
                .into_iter()
                .map(|costs| {
                    costs
                        .into_iter()
                        .enumerate()
                        .map(|(i, ms)| EvalRecord {
                            neighborhood: NeighborhoodId(i as u32),
                            cost: Duration::from_millis(ms),
                        })
                        .collect()
                })
                .collect(),
        }
    }

    #[test]
    fn single_machine_makespan_is_total_plus_overhead() {
        let t = trace(vec![vec![10, 20, 30]]);
        let report = simulate(
            &t,
            &GridParams {
                machines: 1,
                per_round_overhead: Duration::from_millis(5),
                seed: 1,
                assignment: Assignment::Random,
            },
        );
        assert_eq!(report.makespan, Duration::from_millis(65));
        assert_eq!(report.total_work, Duration::from_millis(60));
        assert!((report.mean_skew - 1.0).abs() < 1e-9);
    }

    #[test]
    fn many_machines_reduce_makespan_imperfectly() {
        // 600 equal neighborhoods over 30 machines: near-perfect split,
        // but skew keeps speedup below machine count.
        let t = trace(vec![(0..600).map(|_| 10).collect()]);
        let report = simulate(
            &t,
            &GridParams {
                machines: 30,
                per_round_overhead: Duration::ZERO,
                seed: 2,
                assignment: Assignment::Random,
            },
        );
        assert!(report.speedup > 10.0, "speedup {}", report.speedup);
        assert!(report.speedup < 30.0, "skew must cost something");
        assert!(report.mean_skew > 1.0);
    }

    #[test]
    fn overhead_penalizes_many_rounds() {
        let one_round = trace(vec![vec![10, 10, 10, 10]]);
        let four_rounds = trace(vec![vec![10], vec![10], vec![10], vec![10]]);
        let params = GridParams {
            machines: 4,
            per_round_overhead: Duration::from_millis(100),
            seed: 3,
            assignment: Assignment::Random,
        };
        let a = simulate(&one_round, &params);
        let b = simulate(&four_rounds, &params);
        assert!(b.makespan > a.makespan);
        assert_eq!(b.rounds, 4);
    }

    #[test]
    fn lpt_balances_no_worse_than_random() {
        // Mixed costs over many machines: the greedy balancer's makespan
        // is within 4/3 of optimal (Graham), so it beats a random
        // placement on any skew-prone trace.
        let t = trace(vec![(0..200).map(|i| (i % 23) + 1).collect()]);
        let base = GridParams {
            machines: 10,
            per_round_overhead: Duration::ZERO,
            seed: 5,
            assignment: Assignment::Random,
        };
        let random = simulate(&t, &base);
        let lpt = simulate(
            &t,
            &GridParams {
                assignment: Assignment::Lpt,
                ..base
            },
        );
        assert!(
            lpt.makespan <= random.makespan,
            "LPT {:?} vs random {:?}",
            lpt.makespan,
            random.makespan
        );
        assert!(lpt.mean_skew <= random.mean_skew);
        assert!(lpt.mean_skew >= 1.0 - 1e-9);
        // LPT lower bound: makespan at least total / machines.
        assert!(lpt.makespan * 10 >= lpt.total_work);
    }

    #[test]
    fn lpt_is_deterministic_and_seed_independent() {
        let t = trace(vec![(0..50).map(|i| (i * 7) % 13 + 1).collect()]);
        let a = simulate(
            &t,
            &GridParams {
                machines: 7,
                per_round_overhead: Duration::ZERO,
                seed: 1,
                assignment: Assignment::Lpt,
            },
        );
        let b = simulate(
            &t,
            &GridParams {
                machines: 7,
                per_round_overhead: Duration::ZERO,
                seed: 999,
                assignment: Assignment::Lpt,
            },
        );
        assert_eq!(a.makespan, b.makespan, "seed must not matter for LPT");
        assert!((a.mean_skew - b.mean_skew).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = trace(vec![(0..100).map(|i| i % 17 + 1).collect()]);
        let params = GridParams::default();
        let a = simulate(&t, &params);
        let b = simulate(&t, &params);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let t = trace(vec![vec![1]]);
        let _ = simulate(
            &t,
            &GridParams {
                machines: 0,
                per_round_overhead: Duration::ZERO,
                seed: 0,
                assignment: Assignment::Random,
            },
        );
    }
}
